"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file only lets
``pip install -e .`` fall back to the legacy editable-install path when
PEP 660 editable wheels cannot be built (offline machines without the
``wheel`` distribution).
"""

from setuptools import setup

setup()
