"""Sampling utilities reproducing the paper's evaluation methodology.

The paper evaluates precision on samples sized for a 95% confidence level
("we sampled and labeled 384 correspondences", "1,447 attribute-value
pairs, corresponding to 400 products").  The oracle can evaluate
everything exhaustively, but the sampled estimates are also reproduced so
the methodology itself is exercised and its sampling error can be
inspected.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence, Tuple, TypeVar

__all__ = [
    "z_value_for_confidence",
    "sample_size_for_proportion",
    "confidence_interval",
    "deterministic_sample",
]

T = TypeVar("T")

#: Two-sided z values for the confidence levels used in practice.
_Z_TABLE = {
    0.80: 1.2816,
    0.90: 1.6449,
    0.95: 1.9600,
    0.98: 2.3263,
    0.99: 2.5758,
}


def z_value_for_confidence(confidence: float) -> float:
    """The two-sided z value for a confidence level.

    Supports the standard confidence levels (80/90/95/98/99%); other
    values raise because interpolating z values silently would be
    misleading.
    """
    try:
        return _Z_TABLE[round(confidence, 2)]
    except KeyError:
        raise ValueError(
            f"unsupported confidence level {confidence!r}; "
            f"supported: {sorted(_Z_TABLE)}"
        ) from None


def sample_size_for_proportion(
    confidence: float = 0.95,
    margin_of_error: float = 0.05,
    population: int = 0,
    proportion: float = 0.5,
) -> int:
    """Sample size needed to estimate a proportion (interval estimation).

    With the defaults (95% confidence, 5% margin, worst-case proportion
    0.5) this returns 385 for an infinite population — the paper's "384
    correspondences ... 95% confidence level" sample size (the difference
    of one comes from rounding conventions).  Passing ``population``
    applies the finite-population correction.

    Examples
    --------
    >>> sample_size_for_proportion(0.95, 0.05)
    385
    """
    if not 0.0 < margin_of_error < 1.0:
        raise ValueError(f"margin_of_error must be in (0, 1), got {margin_of_error}")
    if not 0.0 < proportion < 1.0:
        raise ValueError(f"proportion must be in (0, 1), got {proportion}")
    z = z_value_for_confidence(confidence)
    base = (z * z * proportion * (1.0 - proportion)) / (margin_of_error * margin_of_error)
    if population and population > 0:
        base = base / (1.0 + (base - 1.0) / population)
    return int(math.ceil(base))


def confidence_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for a proportion.

    Returns ``(low, high)`` clipped to [0, 1].

    Raises
    ------
    ValueError
        If ``trials`` is zero or ``successes`` exceeds ``trials``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes ({successes}) must be within [0, {trials}]")
    proportion = successes / trials
    z = z_value_for_confidence(confidence)
    half_width = z * math.sqrt(proportion * (1.0 - proportion) / trials)
    return (max(0.0, proportion - half_width), min(1.0, proportion + half_width))


def deterministic_sample(items: Sequence[T], size: int, seed: int = 0) -> List[T]:
    """A reproducible uniform sample without replacement.

    Returns all items when ``size`` is at least the population size.
    """
    if size < 0:
        raise ValueError(f"sample size must be non-negative, got {size}")
    if size >= len(items):
        return list(items)
    rng = random.Random(seed)
    return rng.sample(list(items), size)
