"""The evaluation oracle: ground-truth-based stand-in for the paper's labellers.

Paper Section 5.1 describes a manual procedure: find the manufacturer page
of the synthesized product and check each synthesized attribute-value pair
against the manufacturer specification; a product is correct only when all
of its synthesized pairs are.  The synthetic corpus's
:class:`~repro.corpus.ground_truth.GroundTruth` knows the true product
behind every offer, so the oracle applies the same judgement exactly and
exhaustively (and the sampled variant of the methodology is reproduced in
:mod:`repro.evaluation.sampling`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.corpus.ground_truth import GroundTruth
from repro.matching.correspondence import ScoredCandidate
from repro.model.products import Product
from repro.model.taxonomy import Taxonomy
from repro.text.normalize import (
    canonical_number,
    normalize_attribute_name,
    normalize_value,
    strip_units,
)

__all__ = ["ProductEvaluation", "SynthesisEvaluation", "EvaluationOracle"]


@dataclass
class ProductEvaluation:
    """Per-product judgement of a synthesized product."""

    product_id: str
    category_id: str
    true_product_id: Optional[str]
    num_attributes: int
    num_correct_attributes: int
    num_recallable_attributes: int
    num_recalled_attributes: int
    num_source_offers: int

    @property
    def attribute_precision(self) -> float:
        """Fraction of synthesized attributes judged correct."""
        if self.num_attributes == 0:
            return 0.0
        return self.num_correct_attributes / self.num_attributes

    @property
    def is_correct_product(self) -> bool:
        """The paper's strict product correctness: every attribute correct."""
        return self.num_attributes > 0 and self.num_correct_attributes == self.num_attributes

    @property
    def attribute_recall(self) -> float:
        """Fraction of recallable (page-evidenced) attributes synthesized."""
        if self.num_recallable_attributes == 0:
            return 0.0
        return self.num_recalled_attributes / self.num_recallable_attributes


@dataclass
class SynthesisEvaluation:
    """Aggregate judgement over a set of synthesized products."""

    product_evaluations: List[ProductEvaluation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.product_evaluations)

    @property
    def num_products(self) -> int:
        """Number of products evaluated."""
        return len(self.product_evaluations)

    @property
    def num_attributes(self) -> int:
        """Total synthesized attribute-value pairs evaluated."""
        return sum(evaluation.num_attributes for evaluation in self.product_evaluations)

    @property
    def attribute_precision(self) -> float:
        """Correct attribute-value pairs / all synthesized attribute-value pairs."""
        total = self.num_attributes
        if total == 0:
            return 0.0
        correct = sum(e.num_correct_attributes for e in self.product_evaluations)
        return correct / total

    @property
    def product_precision(self) -> float:
        """Products with every attribute correct / all products (strict)."""
        if not self.product_evaluations:
            return 0.0
        correct = sum(1 for e in self.product_evaluations if e.is_correct_product)
        return correct / len(self.product_evaluations)

    @property
    def attribute_recall(self) -> float:
        """Micro-averaged attribute recall over all evaluated products."""
        recallable = sum(e.num_recallable_attributes for e in self.product_evaluations)
        if recallable == 0:
            return 0.0
        recalled = sum(e.num_recalled_attributes for e in self.product_evaluations)
        return recalled / recallable

    @property
    def average_attributes_per_product(self) -> float:
        """Mean number of synthesized attributes per product."""
        if not self.product_evaluations:
            return 0.0
        return self.num_attributes / len(self.product_evaluations)

    def filter(self, predicate) -> "SynthesisEvaluation":
        """A new evaluation containing only products matching ``predicate``."""
        return SynthesisEvaluation(
            [evaluation for evaluation in self.product_evaluations if predicate(evaluation)]
        )


class EvaluationOracle:
    """Judge synthesized products and correspondences against ground truth."""

    def __init__(
        self,
        ground_truth: GroundTruth,
        taxonomy: Optional[Taxonomy] = None,
        offer_merchants: Optional[Dict[str, str]] = None,
    ) -> None:
        self._truth = ground_truth
        self._taxonomy = taxonomy
        self._offer_merchants: Dict[str, str] = dict(offer_merchants or {})

    # -- value comparison -------------------------------------------------------

    @staticmethod
    def values_agree(synthesized: str, truth: str) -> bool:
        """Whether a synthesized value agrees with the true value.

        The comparison is deliberately tolerant of formatting differences
        (units, spacing, casing) because the paper's human labellers judged
        semantic agreement, not string equality.
        """
        if normalize_value(synthesized) == normalize_value(truth):
            return True
        if strip_units(synthesized) == strip_units(truth):
            return True
        number_a = canonical_number(synthesized)
        number_b = canonical_number(truth)
        if number_a is not None and number_b is not None:
            return abs(number_a - number_b) < 1e-9
        tokens_a = set(normalize_value(synthesized).split())
        tokens_b = set(normalize_value(truth).split())
        if not tokens_a or not tokens_b:
            return False
        # Merchants abbreviate textual values ("Serial ATA-300" -> "ATA-300",
        # "Intel Core i5" -> "Core i5"); a human labeller checking against the
        # manufacturer page would accept these, so a non-empty token subset
        # counts as agreement.
        return tokens_a <= tokens_b or tokens_b <= tokens_a

    # -- product synthesis evaluation ----------------------------------------------

    def _true_product_for_cluster(self, product: Product) -> Optional[str]:
        votes: Counter = Counter()
        for offer_id in product.source_offer_ids:
            true_product_id = self._truth.offer_to_product.get(offer_id)
            if true_product_id is not None:
                votes[true_product_id] += 1
        if not votes:
            return None
        return votes.most_common(1)[0][0]

    def _recallable_attributes(self, product: Product) -> Set[str]:
        """Catalog attributes evidenced on the source offers' landing pages.

        This mirrors the paper's recall ground truth: the labellers
        manually integrated the attributes visible on the offers' pages.
        """
        recallable: Set[str] = set()
        for offer_id in product.source_offer_ids:
            page_spec = self._truth.offer_page_specs.get(offer_id)
            if page_spec is None:
                continue
            category_id = self._truth.offer_true_category.get(offer_id, product.category_id)
            merchant_id = self._merchant_of_offer(offer_id)
            for pair in page_spec:
                catalog_attribute = self._truth.catalog_attribute_for_alias(
                    merchant_id, category_id, pair.name
                )
                if catalog_attribute is not None:
                    recallable.add(normalize_attribute_name(catalog_attribute))
        return recallable

    def _merchant_of_offer(self, offer_id: str) -> str:
        # Offer ids do not encode the merchant; the ground-truth alias map is
        # keyed by merchant, so the oracle needs the offer -> merchant map
        # (supplied at construction or via set_offer_merchants).
        return self._offer_merchants.get(offer_id, "")

    def set_offer_merchants(self, offer_merchants: Dict[str, str]) -> None:
        """Provide (or extend) the ``offer_id -> merchant_id`` map needed for recall."""
        self._offer_merchants.update(offer_merchants)

    def evaluate_product(self, product: Product) -> ProductEvaluation:
        """Judge one synthesized product."""
        true_product_id = self._true_product_for_cluster(product)
        true_product = (
            self._truth.true_products.get(true_product_id) if true_product_id else None
        )

        num_correct = 0
        for pair in product.specification:
            if true_product is None:
                continue
            truth_value = true_product.get(pair.name)
            if truth_value is not None and self.values_agree(pair.value, truth_value):
                num_correct += 1

        recallable = self._recallable_attributes(product)
        synthesized_names = {
            normalize_attribute_name(name) for name in product.attribute_names()
        }
        recalled = len(recallable & synthesized_names)

        return ProductEvaluation(
            product_id=product.product_id,
            category_id=product.category_id,
            true_product_id=true_product_id,
            num_attributes=product.num_attributes(),
            num_correct_attributes=num_correct,
            num_recallable_attributes=len(recallable),
            num_recalled_attributes=recalled,
            num_source_offers=product.num_source_offers(),
        )

    def evaluate_products(self, products: Iterable[Product]) -> SynthesisEvaluation:
        """Judge a batch of synthesized products."""
        return SynthesisEvaluation([self.evaluate_product(product) for product in products])

    def evaluate_by_top_level(
        self, products: Iterable[Product]
    ) -> Dict[str, SynthesisEvaluation]:
        """Aggregate evaluation per top-level category (paper Table 3).

        Requires the oracle to have been constructed with a taxonomy.
        """
        if self._taxonomy is None:
            raise RuntimeError("a taxonomy is required for per-top-level evaluation")
        grouped: Dict[str, List[ProductEvaluation]] = {}
        for product in products:
            top_level = self._taxonomy.top_level_of(product.category_id).category_id
            grouped.setdefault(top_level, []).append(self.evaluate_product(product))
        return {key: SynthesisEvaluation(values) for key, values in grouped.items()}

    # -- correspondence evaluation ------------------------------------------------------

    def correspondence_is_correct(self, candidate: ScoredCandidate) -> bool:
        """Whether a scored candidate correspondence is correct."""
        tuple_ = candidate.candidate
        return self._truth.is_correct_correspondence(
            tuple_.catalog_attribute,
            tuple_.offer_attribute,
            tuple_.merchant_id,
            tuple_.category_id,
        )

    def correspondence_labels(
        self, candidates: Sequence[ScoredCandidate], exclude_identity: bool = True
    ) -> List[Tuple[ScoredCandidate, bool]]:
        """Label scored candidates, optionally excluding name-identity tuples.

        The paper excludes name-identity correspondences from the
        evaluation because they seed the training set (Section 5.2).
        """
        labelled: List[Tuple[ScoredCandidate, bool]] = []
        for candidate in candidates:
            if exclude_identity and candidate.is_name_identity():
                continue
            labelled.append((candidate, self.correspondence_is_correct(candidate)))
        return labelled
