"""Evaluation methodology of paper Section 5.

The paper's evaluation relies on manual labelling against manufacturer
sites (for product synthesis quality) and manual labelling of sampled
correspondences (for schema reconciliation quality).  The synthetic corpus
records complete ground truth, so the :class:`~repro.evaluation.oracle.EvaluationOracle`
plays the role of the human labellers:

* **attribute precision** — fraction of synthesized attribute-value pairs
  that agree with the true product specification;
* **product precision** — fraction of synthesized products whose *every*
  attribute is correct (the paper's strict notion);
* **attribute recall** — fraction of the catalog attributes evidenced on
  the source offers' landing pages that made it into the synthesized
  product;
* **correspondence precision / coverage** — precision of scored candidate
  correspondences above a threshold θ, as a function of the number of
  correspondences retained (paper Section 5.2 and Appendix B's relative
  recall argument).
"""

from repro.evaluation.coverage import (
    PrecisionCoveragePoint,
    precision_at_coverage,
    precision_coverage_curve,
    relative_recall,
)
from repro.evaluation.oracle import EvaluationOracle, ProductEvaluation, SynthesisEvaluation
from repro.evaluation.sampling import confidence_interval, sample_size_for_proportion
from repro.evaluation.report import format_table, format_curve

__all__ = [
    "PrecisionCoveragePoint",
    "precision_at_coverage",
    "precision_coverage_curve",
    "relative_recall",
    "EvaluationOracle",
    "ProductEvaluation",
    "SynthesisEvaluation",
    "confidence_interval",
    "sample_size_for_proportion",
    "format_table",
    "format_curve",
]
