"""Precision-vs-coverage evaluation of schema matchers (paper Section 5.2).

Every matcher emits scored candidate correspondences.  For a threshold θ,
*coverage* is the number of correspondences with score greater than θ and
*precision* is the fraction of those that are correct.  Sweeping θ yields
the curves of Figures 6-9.  Paper Appendix B shows that at equal
precision, higher coverage implies higher recall relative to the other
algorithm — :func:`relative_recall` implements that computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.matching.correspondence import ScoredCandidate

__all__ = [
    "PrecisionCoveragePoint",
    "precision_coverage_curve",
    "precision_at_coverage",
    "coverage_at_precision",
    "relative_recall",
]


@dataclass(frozen=True)
class PrecisionCoveragePoint:
    """One point of a precision-vs-coverage curve."""

    threshold: float
    coverage: int
    precision: float


def _sorted_labels(
    candidates: Sequence[ScoredCandidate],
    is_correct: Callable[[ScoredCandidate], bool],
) -> List[Tuple[float, bool]]:
    labelled = [(candidate.score, is_correct(candidate)) for candidate in candidates]
    labelled.sort(key=lambda item: -item[0])
    return labelled


def precision_coverage_curve(
    candidates: Sequence[ScoredCandidate],
    is_correct: Callable[[ScoredCandidate], bool],
    num_points: int = 25,
) -> List[PrecisionCoveragePoint]:
    """The precision-vs-coverage curve of a matcher's scored output.

    Parameters
    ----------
    candidates:
        Scored candidates (name-identity candidates should already be
        excluded by the caller, mirroring the paper's methodology).
    is_correct:
        Ground-truth judgement for one candidate.
    num_points:
        Number of evenly spaced coverage points to report.

    Returns
    -------
    list of PrecisionCoveragePoint
        Ordered by increasing coverage.
    """
    if num_points < 1:
        raise ValueError(f"num_points must be >= 1, got {num_points}")
    labelled = _sorted_labels(candidates, is_correct)
    if not labelled:
        return []

    total = len(labelled)
    cumulative_correct = 0
    cumulative_precision: List[float] = []
    for index, (_, correct) in enumerate(labelled, start=1):
        if correct:
            cumulative_correct += 1
        cumulative_precision.append(cumulative_correct / index)

    step = max(1, total // num_points)
    points: List[PrecisionCoveragePoint] = []
    for coverage in range(step, total + 1, step):
        score_at = labelled[coverage - 1][0]
        points.append(
            PrecisionCoveragePoint(
                threshold=score_at,
                coverage=coverage,
                precision=cumulative_precision[coverage - 1],
            )
        )
    if points and points[-1].coverage != total:
        points.append(
            PrecisionCoveragePoint(
                threshold=labelled[-1][0],
                coverage=total,
                precision=cumulative_precision[-1],
            )
        )
    return points


def precision_at_coverage(
    candidates: Sequence[ScoredCandidate],
    is_correct: Callable[[ScoredCandidate], bool],
    coverage: int,
) -> float:
    """Precision of the ``coverage`` highest-scoring candidates.

    When fewer candidates are available than requested, the precision over
    all of them is returned.
    """
    if coverage < 1:
        raise ValueError(f"coverage must be >= 1, got {coverage}")
    labelled = _sorted_labels(candidates, is_correct)
    if not labelled:
        return 0.0
    top = labelled[: min(coverage, len(labelled))]
    return sum(1 for _, correct in top if correct) / len(top)


def coverage_at_precision(
    candidates: Sequence[ScoredCandidate],
    is_correct: Callable[[ScoredCandidate], bool],
    precision: float,
) -> int:
    """The largest coverage at which the matcher still achieves ``precision``."""
    if not 0.0 <= precision <= 1.0:
        raise ValueError(f"precision must be within [0, 1], got {precision}")
    labelled = _sorted_labels(candidates, is_correct)
    best_coverage = 0
    correct = 0
    for index, (_, is_right) in enumerate(labelled, start=1):
        if is_right:
            correct += 1
        if correct / index >= precision:
            best_coverage = index
    return best_coverage


def relative_recall(
    candidates_a: Sequence[ScoredCandidate],
    candidates_b: Sequence[ScoredCandidate],
    is_correct: Callable[[ScoredCandidate], bool],
    precision: float,
) -> Optional[float]:
    """Recall of matcher A relative to matcher B at a common precision level.

    Appendix B: at precision ``p`` the number of correct correspondences
    retrieved by a matcher is ``coverage * p``; dividing A's by B's cancels
    the unknown total number of correct correspondences.  Returns ``None``
    when B achieves zero coverage at the requested precision.
    """
    coverage_a = coverage_at_precision(candidates_a, is_correct, precision)
    coverage_b = coverage_at_precision(candidates_b, is_correct, precision)
    if coverage_b == 0:
        return None
    return coverage_a / coverage_b
