"""Plain-text rendering of experiment tables and curves.

The experiment drivers print their results in the same shape as the
paper's tables and figures; these helpers keep the formatting consistent
and easy to diff across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Union

from repro.evaluation.coverage import PrecisionCoveragePoint

__all__ = ["format_table", "format_curve", "format_kv"]

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        """Pad one row's cells to the computed column widths."""
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_curve(
    curves: Mapping[str, Sequence[PrecisionCoveragePoint]], title: str = ""
) -> str:
    """Render one or more precision-vs-coverage curves as a text table."""
    headers = ["series", "coverage", "precision", "threshold"]
    rows: List[List[Cell]] = []
    for name, points in curves.items():
        for point in points:
            rows.append([name, point.coverage, point.precision, point.threshold])
    return format_table(headers, rows, title=title)


def format_kv(values: Mapping[str, Cell], title: str = "") -> str:
    """Render a mapping as an aligned key/value listing."""
    width = max((len(key) for key in values), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for key, value in values.items():
        lines.append(f"{key.ljust(width)}  {_format_cell(value)}")
    return "\n".join(lines)
