"""The end-to-end Run-Time Offer Processing Pipeline (paper Figure 4).

:class:`ProductSynthesisPipeline` chains category classification, web-page
attribute extraction, schema reconciliation, key-attribute clustering and
value fusion to turn unmatched offers into new structured products.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.extraction.extractor import ExtractionResult, WebPageAttributeExtractor
from repro.matching.correspondence import CorrespondenceSet
from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.model.products import Product
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer, OfferCluster
from repro.synthesis.fusion import CentroidValueFusion, fuse_cluster
from repro.synthesis.reconciliation import ReconciliationStats, SchemaReconciler

__all__ = [
    "SynthesisResult",
    "ProductSynthesisPipeline",
    "stable_product_id",
    "build_product_from_cluster",
]


def stable_product_id(category_id: str, cluster_key: str) -> str:
    """A stable, collision-free identifier for a synthesized product.

    Derived from the cluster identity (category + clustering key), so the
    same cluster — whether it was built in one monolithic ``synthesize()``
    call or grew across several engine micro-batches — always yields the
    same product id, and clusters from different batches can never
    collide.  (The previous ``synth-{index:06d}`` scheme restarted at 1 on
    every call, so two batches produced colliding ids.)
    """
    digest = hashlib.sha1(f"{category_id}|{cluster_key}".encode("utf-8")).hexdigest()
    return f"synth-{digest[:12]}"


def build_product_from_cluster(
    cluster: OfferCluster,
    attribute_names: Sequence[str],
    fusion: CentroidValueFusion,
) -> Optional[Product]:
    """Fuse one cluster into a product, or ``None`` when nothing survives.

    Shared by the one-shot pipeline and the streaming engine so both
    construct byte-identical products for the same cluster.
    """
    specification = fuse_cluster(cluster, attribute_names, fusion=fusion)
    if len(specification) == 0:
        return None
    # The shortest title tends to be the cleanest merchant phrasing.
    titles = [offer.title for offer in cluster.offers if offer.title]
    title = min(titles, key=len) if titles else ""
    return Product(
        product_id=stable_product_id(cluster.category_id, cluster.key),
        category_id=cluster.category_id,
        title=title,
        specification=specification,
        source_offer_ids=tuple(cluster.offer_ids()),
    )


@dataclass
class SynthesisResult:
    """The output of one pipeline run."""

    products: List[Product]
    clusters: List[OfferCluster]
    reconciliation_stats: ReconciliationStats
    extraction_stats: Optional[ExtractionResult] = None
    #: offer_id -> category assigned by the classifier (or carried in).
    assigned_categories: Dict[str, str] = field(default_factory=dict)

    def num_products(self) -> int:
        """Number of synthesized products."""
        return len(self.products)

    def num_attributes(self) -> int:
        """Total number of synthesized attribute-value pairs."""
        return sum(product.num_attributes() for product in self.products)

    def average_attributes_per_product(self) -> float:
        """Mean number of attributes per synthesized product."""
        if not self.products:
            return 0.0
        return self.num_attributes() / len(self.products)

    def products_by_category(self) -> Dict[str, List[Product]]:
        """Synthesized products grouped by leaf category."""
        grouped: Dict[str, List[Product]] = {}
        for product in self.products:
            grouped.setdefault(product.category_id, []).append(product)
        return grouped


class ProductSynthesisPipeline:
    """Synthesize new catalog products from unmatched merchant offers.

    Parameters
    ----------
    catalog:
        The product catalog (schemas, taxonomy; synthesized products are
        *not* automatically added to it).
    correspondences:
        The attribute correspondences produced by the Offline Learning
        phase.
    extractor:
        Web-page attribute extractor; optional when the offers already
        carry extracted specifications.
    category_classifier:
        Title classifier used for offers without a category; optional when
        every offer already has ``category_id`` set.
    clusterer:
        Offer clustering strategy (defaults to key-attribute clustering).
    fusion:
        Value fusion strategy (defaults to centroid voting).
    min_cluster_size:
        Minimum number of offers required for a cluster to yield a product.
    """

    def __init__(
        self,
        catalog: Catalog,
        correspondences: CorrespondenceSet,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_classifier: Optional[TitleCategoryClassifier] = None,
        clusterer: Optional[KeyAttributeClusterer] = None,
        fusion: Optional[CentroidValueFusion] = None,
        min_cluster_size: int = 1,
    ) -> None:
        self.catalog = catalog
        self.correspondences = correspondences
        self.extractor = extractor
        self.category_classifier = category_classifier
        self.clusterer = clusterer or KeyAttributeClusterer(
            catalog, min_cluster_size=min_cluster_size
        )
        self.fusion = fusion or CentroidValueFusion()
        self.reconciler = SchemaReconciler(correspondences)

    # -- pipeline stages -------------------------------------------------------

    def _assign_categories(self, offers: Sequence[Offer]) -> List[Offer]:
        needs_classification = [offer for offer in offers if offer.category_id is None]
        if not needs_classification:
            return list(offers)
        if self.category_classifier is None or not self.category_classifier.is_trained:
            raise ValueError(
                "offers without a category require a trained category classifier"
            )
        return self.category_classifier.assign_categories(list(offers))

    def _extract_specifications(
        self, offers: Sequence[Offer]
    ) -> "tuple[List[Offer], Optional[ExtractionResult]]":
        if self.extractor is None:
            return list(offers), None
        missing = [offer for offer in offers if len(offer.specification) == 0]
        if not missing:
            return list(offers), None
        enriched, stats = self.extractor.extract_offers(list(offers))
        return enriched, stats

    # -- main entry point ----------------------------------------------------------

    def synthesize(self, offers: Sequence[Offer]) -> SynthesisResult:
        """Run the full pipeline over a batch of unmatched offers."""
        categorised = self._assign_categories(offers)
        extracted, extraction_stats = self._extract_specifications(categorised)
        reconciled, reconciliation_stats = self.reconciler.reconcile_offers(extracted)
        clusters = self.clusterer.cluster(reconciled)

        products: List[Product] = []
        for cluster in clusters:
            product = build_product_from_cluster(
                cluster, self.attribute_names_for(cluster), self.fusion
            )
            if product is not None:
                products.append(product)

        assigned = {
            offer.offer_id: offer.category_id
            for offer in categorised
            if offer.category_id is not None
        }
        return SynthesisResult(
            products=products,
            clusters=clusters,
            reconciliation_stats=reconciliation_stats,
            extraction_stats=extraction_stats,
            assigned_categories=assigned,
        )

    # -- helpers ---------------------------------------------------------------------

    def attribute_names_for(self, cluster: OfferCluster) -> List[str]:
        """The catalog attributes to fuse for a cluster.

        The category schema when one exists; otherwise the attribute names
        observed across the cluster's offers, in first-seen order.
        """
        if self.catalog.has_schema(cluster.category_id):
            return self.catalog.schema_for(cluster.category_id).attribute_names()
        return self._observed_names(cluster)

    @staticmethod
    def _observed_names(cluster: OfferCluster) -> List[str]:
        names: List[str] = []
        seen = set()
        for offer in cluster.offers:
            for name in offer.attribute_names():
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return names
