"""Value Fusion (paper Section 4 and Appendix A).

Given a cluster of reconciled offers, fusion picks one representative
value per catalog attribute:

* :class:`MajorityValueFusion` — plain majority voting over exact
  (normalised) values; the baseline the appendix starts from.
* :class:`CentroidValueFusion` — the paper's generalisation of majority
  voting to the term level: each candidate value becomes a binary term
  vector, the centroid of all vectors is computed, and the value closest
  to the centroid (Euclidean distance) is chosen.  The appendix's
  "Microsoft Windows Vista" example is reproduced verbatim in the tests.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.attributes import Specification
from repro.model.offers import Offer
from repro.synthesis.clustering import OfferCluster
from repro.text.normalize import normalize_value
from repro.text.tokenize import tokenize_value

__all__ = ["MajorityValueFusion", "CentroidValueFusion", "fuse_cluster"]


class MajorityValueFusion:
    """Pick the most frequent (normalised) value; ties break deterministically."""

    def select(self, values: Sequence[str]) -> Optional[str]:
        """The majority value of ``values`` (original casing of the first winner)."""
        if not values:
            return None
        counts: Counter = Counter()
        originals: Dict[str, str] = {}
        for value in values:
            normalised = normalize_value(value)
            if not normalised:
                continue
            counts[normalised] += 1
            originals.setdefault(normalised, value)
        if not counts:
            return None
        best = max(counts.items(), key=lambda item: (item[1], -len(item[0]), item[0]))
        return originals[best[0]]


class CentroidValueFusion:
    """Term-level generalised majority voting (paper Appendix A).

    Each candidate value is converted into a binary vector over the union
    of terms appearing in any candidate; the representative value is the
    one closest (Euclidean distance) to the centroid of all vectors.  Ties
    are broken towards the value containing more terms, then
    lexicographically, so fusion is deterministic.
    """

    def select(self, values: Sequence[str]) -> Optional[str]:
        """The centroid-nearest value of ``values``."""
        if not values:
            return None
        tokenised: List[Tuple[str, List[str]]] = []
        vocabulary: List[str] = []
        seen_terms = set()
        for value in values:
            tokens = tokenize_value(value)
            if not tokens:
                continue
            tokenised.append((value, tokens))
            for token in tokens:
                if token not in seen_terms:
                    seen_terms.add(token)
                    vocabulary.append(token)
        if not tokenised:
            return None
        if len(tokenised) == 1:
            return tokenised[0][0]

        index_of = {term: position for position, term in enumerate(vocabulary)}
        vectors: List[Tuple[str, List[float]]] = []
        for value, tokens in tokenised:
            vector = [0.0] * len(vocabulary)
            for token in tokens:
                vector[index_of[token]] = 1.0
            vectors.append((value, vector))

        centroid = [
            sum(vector[position] for _, vector in vectors) / len(vectors)
            for position in range(len(vocabulary))
        ]

        def distance(vector: List[float]) -> float:
            return math.sqrt(
                sum((component - centroid[position]) ** 2 for position, component in enumerate(vector))
            )

        ranked = sorted(
            vectors,
            key=lambda item: (distance(item[1]), -sum(item[1]), normalize_value(item[0])),
        )
        return ranked[0][0]


def fuse_cluster(
    cluster: OfferCluster,
    attribute_names: Iterable[str],
    fusion: Optional[CentroidValueFusion] = None,
) -> Specification:
    """Fuse a cluster of reconciled offers into one product specification.

    Parameters
    ----------
    cluster:
        The offer cluster (offers must already be schema-reconciled, so
        their attribute names are catalog names).
    attribute_names:
        The catalog attributes to consider (the category schema).
    fusion:
        The value-selection strategy; defaults to
        :class:`CentroidValueFusion`.
    """
    strategy = fusion or CentroidValueFusion()
    fused = Specification()
    for attribute_name in attribute_names:
        values: List[str] = []
        for offer in cluster.offers:
            values.extend(offer.specification.get_all(attribute_name))
        representative = strategy.select(values)
        if representative is not None:
            fused.add(attribute_name, representative)
    return fused
