"""Value Fusion (paper Section 4 and Appendix A).

Given a cluster of reconciled offers, fusion picks one representative
value per catalog attribute:

* :class:`MajorityValueFusion` — plain majority voting over exact
  (normalised) values; the baseline the appendix starts from.
* :class:`CentroidValueFusion` — the paper's generalisation of majority
  voting to the term level: each candidate value becomes a binary term
  vector, the centroid of all vectors is computed, and the value closest
  to the centroid (Euclidean distance) is chosen.  The appendix's
  "Microsoft Windows Vista" example is reproduced verbatim in the tests.
"""

from __future__ import annotations

import math
import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.attributes import Specification
from repro.synthesis.clustering import OfferCluster
from repro.text.memo import cached_normalize_value, cached_tokenize_value

__all__ = [
    "MajorityValueFusion",
    "CentroidValueFusion",
    "MemoizedValueFusion",
    "fuse_cluster",
]


class MajorityValueFusion:
    """Pick the most frequent (normalised) value; ties break deterministically."""

    def select(self, values: Sequence[str]) -> Optional[str]:
        """The majority value of ``values`` (original casing of the first winner)."""
        if not values:
            return None
        counts: Counter = Counter()
        originals: Dict[str, str] = {}
        for value in values:
            normalised = cached_normalize_value(value)
            if not normalised:
                continue
            counts[normalised] += 1
            originals.setdefault(normalised, value)
        if not counts:
            return None
        best = max(counts.items(), key=lambda item: (item[1], -len(item[0]), item[0]))
        return originals[best[0]]


class CentroidValueFusion:
    """Term-level generalised majority voting (paper Appendix A).

    Each candidate value is converted into a binary vector over the union
    of terms appearing in any candidate; the representative value is the
    one closest (Euclidean distance) to the centroid of all vectors.  Ties
    are broken towards the value containing more terms, then
    lexicographically, so fusion is deterministic.
    """

    def select(self, values: Sequence[str]) -> Optional[str]:
        """The centroid-nearest value of ``values``."""
        if not values:
            return None
        tokenised: List[Tuple[str, Sequence[str]]] = []
        vocabulary: List[str] = []
        seen_terms = set()
        for value in values:
            tokens = cached_tokenize_value(value)
            if not tokens:
                continue
            tokenised.append((value, tokens))
            for token in tokens:
                if token not in seen_terms:
                    seen_terms.add(token)
                    vocabulary.append(token)
        if not tokenised:
            return None
        if len(tokenised) == 1:
            return tokenised[0][0]

        index_of = {term: position for position, term in enumerate(vocabulary)}
        vectors: List[Tuple[str, List[float]]] = []
        for value, tokens in tokenised:
            vector = [0.0] * len(vocabulary)
            for token in tokens:
                vector[index_of[token]] = 1.0
            vectors.append((value, vector))

        centroid = [
            sum(vector[position] for _, vector in vectors) / len(vectors)
            for position in range(len(vocabulary))
        ]

        def distance(vector: List[float]) -> float:
            """Euclidean distance from the cluster centroid."""
            return math.sqrt(
                sum(
                    (component - centroid[position]) ** 2
                    for position, component in enumerate(vector)
                )
            )

        ranked = sorted(
            vectors,
            key=lambda item: (distance(item[1]), -sum(item[1]), cached_normalize_value(item[0])),
        )
        return ranked[0][0]


class MemoizedValueFusion:
    """Cache ``select`` results of a base fusion strategy.

    When the run-time engine re-fuses a cluster that grew by one offer,
    attributes the new offer does *not* carry see exactly the same
    candidate-value list as before — the memo turns those re-selections
    into a dictionary lookup.  Selection is a pure function of the value
    list, so caching is transparent: outputs are identical with or
    without the wrapper.

    The cache is a bounded FIFO (insertion-ordered dict); fusion value
    lists are small, so even the full cache stays modest in memory.  A
    lock guards the cache, so one instance can be shared by thread-pool
    shard workers; pickling (process-pool payloads) drops the cache and
    recreates the lock on the other side.
    """

    def __init__(
        self,
        base: Optional[CentroidValueFusion] = None,
        maxsize: int = 1 << 16,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._base = base or CentroidValueFusion()
        self._maxsize = maxsize
        self._cache: "Dict[Tuple[str, ...], Optional[str]]" = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @property
    def base(self) -> CentroidValueFusion:
        """The wrapped fusion strategy."""
        return self._base

    def select(self, values: Sequence[str]) -> Optional[str]:
        """The base strategy's selection, cached on the exact value tuple."""
        key = tuple(values)
        with self._lock:
            if key in self._cache:
                self.hits += 1
                return self._cache[key]
            self.misses += 1
        selected = self._base.select(values)
        with self._lock:
            if len(self._cache) >= self._maxsize:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = selected
        return selected

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def fuse_cluster(
    cluster: OfferCluster,
    attribute_names: Iterable[str],
    fusion: Optional[CentroidValueFusion] = None,
) -> Specification:
    """Fuse a cluster of reconciled offers into one product specification.

    Parameters
    ----------
    cluster:
        The offer cluster (offers must already be schema-reconciled, so
        their attribute names are catalog names).
    attribute_names:
        The catalog attributes to consider (the category schema).
    fusion:
        The value-selection strategy; defaults to
        :class:`CentroidValueFusion`.
    """
    strategy = fusion or CentroidValueFusion()
    fused = Specification()
    for attribute_name in attribute_names:
        values: List[str] = []
        for offer in cluster.offers:
            values.extend(offer.specification.get_all(attribute_name))
        representative = strategy.select(values)
        if representative is not None:
            fused.add(attribute_name, representative)
    return fused
