"""Run-Time Offer Processing Pipeline (paper Section 4, Figure 4 right half).

Given incoming offers that could not be matched to any existing catalog
product, the pipeline

1. assigns each offer to a catalog category from its title
   (:mod:`repro.synthesis.category_classifier`);
2. extracts the offer specification from the merchant landing page
   (:mod:`repro.extraction`);
3. translates merchant attribute names into catalog attribute names and
   drops unmapped pairs (:mod:`repro.synthesis.reconciliation`);
4. clusters reconciled offers by their key attributes (MPN/UPC) so that
   each cluster corresponds to one product
   (:mod:`repro.synthesis.clustering`);
5. fuses each cluster into a single product specification with term-level
   generalised majority voting (:mod:`repro.synthesis.fusion`).

:class:`~repro.synthesis.pipeline.ProductSynthesisPipeline` wires the five
steps together.
"""

from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer, OfferCluster, TitleClusterer
from repro.synthesis.fusion import CentroidValueFusion, MajorityValueFusion
from repro.synthesis.pipeline import ProductSynthesisPipeline, SynthesisResult
from repro.synthesis.reconciliation import SchemaReconciler

__all__ = [
    "TitleCategoryClassifier",
    "KeyAttributeClusterer",
    "TitleClusterer",
    "OfferCluster",
    "CentroidValueFusion",
    "MajorityValueFusion",
    "ProductSynthesisPipeline",
    "SynthesisResult",
    "SchemaReconciler",
]
