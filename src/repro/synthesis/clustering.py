"""Clustering reconciled offers into product clusters (paper Section 4).

"The Clustering component first extracts the key attributes (Model Part
Number or universal identifier UPC) for each offer.  Then, offers that
have the same key are clustered together, leading to clusters that have a
one-to-one correspondence to a product instance."

Because the key attributes arrive through schema reconciliation, an offer
whose merchant calls the MPN "Mfr. Part #" and another whose merchant
calls it "MPN" end up with the same reconciled attribute name and can be
compared directly.  The paper notes other clustering strategies could be
plugged in; :class:`TitleClusterer` is provided as the ablation
alternative (token-overlap clustering on offer titles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.text.memo import cached_normalize_key_value, cached_tokenize_title
from repro.text.setsim import jaccard_coefficient

__all__ = ["OfferCluster", "KeyAttributeClusterer", "TitleClusterer"]

#: Key attributes tried in priority order when the schema does not declare
#: its own key attributes.
DEFAULT_KEY_ATTRIBUTES: Tuple[str, ...] = ("Model Part Number", "UPC")


@dataclass
class OfferCluster:
    """A group of offers believed to describe the same product."""

    category_id: str
    key: str
    offers: List[Offer] = field(default_factory=list)

    def offer_ids(self) -> List[str]:
        """Ids of the offers in the cluster."""
        return [offer.offer_id for offer in self.offers]

    def size(self) -> int:
        """Number of offers in the cluster."""
        return len(self.offers)


class KeyAttributeClusterer:
    """Group offers by the normalised value of their key attribute.

    Parameters
    ----------
    catalog:
        Supplies per-category schemas (and their key attributes).
    key_attributes:
        Fallback key attributes when a category schema declares none.
    min_cluster_size:
        Clusters with fewer offers than this are dropped (1 keeps all).
    """

    def __init__(
        self,
        catalog: Catalog,
        key_attributes: Sequence[str] = DEFAULT_KEY_ATTRIBUTES,
        min_cluster_size: int = 1,
    ) -> None:
        if min_cluster_size < 1:
            raise ValueError(f"min_cluster_size must be >= 1, got {min_cluster_size}")
        self._catalog = catalog
        self._key_attributes = tuple(key_attributes)
        self._min_cluster_size = min_cluster_size

    @property
    def min_cluster_size(self) -> int:
        """Smallest cluster size that yields a product."""
        return self._min_cluster_size

    def _keys_for_category(self, category_id: str) -> Tuple[str, ...]:
        if self._catalog.has_schema(category_id):
            declared = self._catalog.schema_for(category_id).key_attribute_names()
            if declared:
                return tuple(declared)
        return self._key_attributes

    def cluster_key(self, offer: Offer) -> Optional[str]:
        """The clustering key of an offer, or ``None`` when it has no key value."""
        if offer.category_id is None:
            return None
        for key_attribute in self._keys_for_category(offer.category_id):
            value = offer.get(key_attribute)
            if value:
                normalised = cached_normalize_key_value(value)
                if normalised:
                    return f"{key_attribute}:{normalised}"
        return None

    def cluster(self, offers: Iterable[Offer]) -> List[OfferCluster]:
        """Group offers into clusters; offers without a key are dropped.

        Clusters never span categories: the cluster key includes the
        category so that two products in different categories with the same
        UPC-like string do not collapse.
        """
        clusters: Dict[Tuple[str, str], OfferCluster] = {}
        for offer in offers:
            if offer.category_id is None:
                continue
            key = self.cluster_key(offer)
            if key is None:
                continue
            cluster_id = (offer.category_id, key)
            cluster = clusters.get(cluster_id)
            if cluster is None:
                cluster = OfferCluster(category_id=offer.category_id, key=key)
                clusters[cluster_id] = cluster
            cluster.offers.append(offer)
        return [
            cluster
            for cluster in clusters.values()
            if cluster.size() >= self._min_cluster_size
        ]


class TitleClusterer:
    """Ablation alternative: greedy token-overlap clustering on offer titles.

    Offers are compared by the Jaccard similarity of their title token
    sets; an offer joins the first existing cluster within its category
    whose representative title is similar enough, otherwise it starts a new
    cluster.  Quadratic in the worst case but adequate at corpus scale, and
    deliberately simple — it exists to quantify how much the key-attribute
    strategy (enabled by schema reconciliation) matters.
    """

    def __init__(self, similarity_threshold: float = 0.6) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1], got {similarity_threshold}"
            )
        self._threshold = similarity_threshold

    def cluster(self, offers: Iterable[Offer]) -> List[OfferCluster]:
        """Greedy clustering by title similarity within each category."""
        clusters: List[OfferCluster] = []
        representatives: List[frozenset] = []
        for offer in offers:
            if offer.category_id is None:
                continue
            tokens = frozenset(cached_tokenize_title(offer.title))
            placed = False
            for cluster, representative in zip(clusters, representatives):
                if cluster.category_id != offer.category_id:
                    continue
                if jaccard_coefficient(tokens, representative) >= self._threshold:
                    cluster.offers.append(offer)
                    placed = True
                    break
            if not placed:
                cluster = OfferCluster(
                    category_id=offer.category_id,
                    key=f"title:{offer.offer_id}",
                    offers=[offer],
                )
                clusters.append(cluster)
                representatives.append(tokens)
        return clusters
