"""Schema Reconciliation (paper Section 4).

"Let o be an offer for category C and merchant M, and ⟨A, v⟩ be one of the
attribute-value pairs extracted from the merchant's Web page.  If
⟨B, A, M, C⟩ is an attribute correspondence produced by the Attribute
Correspondence Creation component during the Offline Learning phase, then
the Schema Reconciliation component outputs a pair ⟨B, v⟩.  Otherwise, the
pair ⟨A, v⟩ is discarded."

Discarding unmapped pairs is what filters out both merchant junk
attributes and the noise introduced by the simple web-page extractor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.matching.correspondence import CorrespondenceSet
from repro.model.attributes import Specification
from repro.model.offers import Offer

__all__ = ["ReconciliationStats", "SchemaReconciler"]


@dataclass
class ReconciliationStats:
    """Bookkeeping of one reconciliation run."""

    offers_processed: int = 0
    pairs_seen: int = 0
    pairs_mapped: int = 0
    pairs_discarded: int = 0

    def mapping_rate(self) -> float:
        """Fraction of extracted pairs that survived reconciliation."""
        if self.pairs_seen == 0:
            return 0.0
        return self.pairs_mapped / self.pairs_seen


class SchemaReconciler:
    """Apply learned attribute correspondences to offer specifications."""

    def __init__(self, correspondences: CorrespondenceSet) -> None:
        self._correspondences = correspondences

    def reconcile_specification(
        self, specification: Specification, merchant_id: str, category_id: str
    ) -> Tuple[Specification, int, int]:
        """Translate one specification.

        Returns the reconciled specification plus the number of mapped and
        discarded pairs.
        """
        reconciled = Specification()
        mapped = 0
        discarded = 0
        for pair in specification:
            catalog_attribute = self._correspondences.translate(
                merchant_id, category_id, pair.name
            )
            if catalog_attribute is None:
                discarded += 1
                continue
            reconciled.add(catalog_attribute, pair.value)
            mapped += 1
        return reconciled, mapped, discarded

    def reconcile_offer(self, offer: Offer) -> Offer:
        """Return a copy of ``offer`` with its specification reconciled.

        Offers without an assigned category cannot be reconciled and come
        back with an empty specification (they carry no usable evidence).
        """
        if offer.category_id is None:
            return offer.with_specification(Specification())
        reconciled, _, _ = self.reconcile_specification(
            offer.specification, offer.merchant_id, offer.category_id
        )
        return offer.with_specification(reconciled)

    def reconcile_offers(
        self, offers: Iterable[Offer]
    ) -> Tuple[List[Offer], ReconciliationStats]:
        """Reconcile a batch of offers, returning stats alongside."""
        stats = ReconciliationStats()
        reconciled_offers: List[Offer] = []
        for offer in offers:
            stats.offers_processed += 1
            stats.pairs_seen += len(offer.specification)
            if offer.category_id is None:
                reconciled_offers.append(offer.with_specification(Specification()))
                stats.pairs_discarded += len(offer.specification)
                continue
            reconciled, mapped, discarded = self.reconcile_specification(
                offer.specification, offer.merchant_id, offer.category_id
            )
            stats.pairs_mapped += mapped
            stats.pairs_discarded += discarded
            reconciled_offers.append(offer.with_specification(reconciled))
        return reconciled_offers, stats
