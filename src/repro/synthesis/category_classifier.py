"""Title-based category classification of incoming offers.

Paper Section 2: "To determine the category for a given offer, we use a
simple classifier, which given the title of the offer, returns its
category C under the catalog taxonomy."  The paper omits the classifier's
details and notes the pipeline is resilient to its errors; we use a
multinomial Naive Bayes over title unigrams and bigrams, trained from the
titles of historically matched offers (whose category is known through
their matched product) plus the catalog products' own titles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.learning.naive_bayes import MultinomialNaiveBayes
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.memo import cached_tokenize_title
from repro.text.tokenize import sliding_ngrams

__all__ = ["TitleCategoryClassifier"]


class TitleCategoryClassifier:
    """Assign catalog categories to offers from their titles.

    Parameters
    ----------
    use_bigrams:
        Include title bigrams ("hard drive", "digital camera") as features
        in addition to unigrams.
    """

    def __init__(self, use_bigrams: bool = True) -> None:
        self.use_bigrams = use_bigrams
        self._model: Optional[MultinomialNaiveBayes] = None

    # -- features -----------------------------------------------------------

    def _features(self, title: str) -> List[str]:
        tokens = cached_tokenize_title(title)
        features = list(tokens)
        if self.use_bigrams:
            features.extend(sliding_ngrams(tokens, 2))
        return features

    def routing_features(self, title: str) -> List[str]:
        """The exact feature sequence :meth:`classify` scores for a title.

        Public so cluster coordinators can build cheap routing hints over
        the same feature space the real classifier uses.
        """
        return self._features(title)

    def routing_hints(self) -> Dict[str, str]:
        """feature -> dominant category, for cheap coordinator routing.

        A one-dict-lookup approximation of :meth:`classify`: the class
        where each feature was observed most often during training.  Used
        by hint-routing cluster coordinators, which only need a *guess*
        (misroutes are reconciled node-side), never by the engine itself.

        Raises
        ------
        RuntimeError
            If the classifier has not been trained.
        """
        if self._model is None:
            raise RuntimeError("category classifier has not been trained")
        return self._model.dominant_class_by_token()

    # -- training -------------------------------------------------------------

    def train_from_history(
        self,
        catalog: Catalog,
        historical_offers: Iterable[Offer],
        matches: MatchStore,
    ) -> "TitleCategoryClassifier":
        """Train from historically matched offers and catalog product titles.

        The category label of a historical offer is the category of its
        matched product — no manual labels are needed, in line with the
        paper's scalability requirements.
        """
        model = MultinomialNaiveBayes()
        num_documents = 0
        for offer in historical_offers:
            product_id = matches.product_for_offer(offer.offer_id)
            if product_id is None or not catalog.has_product(product_id):
                continue
            category_id = catalog.product(product_id).category_id
            model.update(category_id, self._features(offer.title))
            num_documents += 1
        for product in catalog.products():
            if product.title:
                model.update(product.category_id, self._features(product.title))
                num_documents += 1
        if num_documents == 0:
            raise ValueError(
                "no training documents: need matched offers or titled catalog products"
            )
        model.fit_finalize()
        self._model = model
        return self

    # -- inference ----------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        """Whether the classifier has been trained."""
        return self._model is not None

    def classify(self, title: str) -> str:
        """The most likely catalog category for an offer title.

        Raises
        ------
        RuntimeError
            If the classifier has not been trained.
        """
        if self._model is None:
            raise RuntimeError("category classifier has not been trained")
        return self._model.predict(self._features(title))

    def classify_with_confidence(self, title: str) -> Tuple[str, float]:
        """The most likely category and its posterior probability."""
        if self._model is None:
            raise RuntimeError("category classifier has not been trained")
        return self._model.predict_with_confidence(self._features(title))

    def assign_categories(self, offers: Sequence[Offer]) -> List[Offer]:
        """Return copies of ``offers`` with ``category_id`` filled in.

        Offers that already carry a category keep it (the feed may provide
        a trusted category).
        """
        assigned: List[Offer] = []
        for offer in offers:
            if offer.category_id is not None:
                assigned.append(offer)
            else:
                assigned.append(offer.with_category(self.classify(offer.title)))
        return assigned

    def accuracy(
        self, offers: Sequence[Offer], true_categories: Dict[str, str]
    ) -> float:
        """Classification accuracy against a ``offer_id -> category`` map."""
        evaluated = 0
        correct = 0
        for offer in offers:
            truth = true_categories.get(offer.offer_id)
            if truth is None:
                continue
            evaluated += 1
            if self.classify(offer.title) == truth:
                correct += 1
        if evaluated == 0:
            return 0.0
        return correct / evaluated
