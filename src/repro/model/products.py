"""Catalog products.

A product is ``p = (C, {<A1, v1>, ..., <An, vn>})`` (paper Section 2): a
leaf category plus a specification whose attribute names come from the
category schema.  Synthesized products additionally record which offers
they were fused from, which the evaluation harness uses to compute
attribute recall per offer-set size (paper Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.model.attributes import Specification

__all__ = ["Product", "product_fingerprint"]


@dataclass
class Product:
    """A structured product instance in (or synthesized for) the catalog.

    Attributes
    ----------
    product_id:
        Stable unique identifier.
    category_id:
        Leaf category the product belongs to.
    title:
        Short display title of the product.
    specification:
        Attribute-value pairs conforming to the category schema.
    source_offer_ids:
        For synthesized products: the offers in the cluster the product was
        fused from.  Empty for pre-existing catalog products.
    """

    product_id: str
    category_id: str
    title: str = ""
    specification: Specification = field(default_factory=Specification)
    source_offer_ids: Tuple[str, ...] = ()

    def attribute_names(self) -> List[str]:
        """Distinct attribute names present in the specification."""
        return self.specification.attribute_names()

    def get(self, attribute_name: str, default: Optional[str] = None) -> Optional[str]:
        """The (first) value of ``attribute_name``, or ``default``."""
        return self.specification.get(attribute_name, default)

    def num_attributes(self) -> int:
        """Number of attribute-value pairs in the specification."""
        return len(self.specification)

    def num_source_offers(self) -> int:
        """Number of offers this product was synthesized from."""
        return len(self.source_offer_ids)

    def with_specification(self, specification: Specification) -> "Product":
        """A copy of this product carrying a different specification."""
        return Product(
            product_id=self.product_id,
            category_id=self.category_id,
            title=self.title,
            specification=specification,
            source_offer_ids=self.source_offer_ids,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Product(id={self.product_id!r}, category={self.category_id!r}, "
            f"attrs={self.num_attributes()})"
        )


def product_fingerprint(products: List["Product"]) -> List[Tuple[object, ...]]:
    """Byte-comparable serialisation of a product list.

    The single definition of what "byte-identical products" means across
    the runtime benchmarks and the test suite: every field of every
    product, in order.  Two product lists are byte-identical exactly
    when their (sorted) fingerprints compare equal.
    """
    return [
        (
            product.product_id,
            product.category_id,
            product.title,
            tuple(pair.as_tuple() for pair in product.specification),
            product.source_offer_ids,
        )
        for product in products
    ]
