"""The product catalog: taxonomy, schemas, products and merchants.

The catalog is the "master" structured database of the Product Search
Engine.  It bundles the taxonomy, the per-category schemas, the existing
product instances and the registered merchants so that both phases of the
pipeline (offline learning and run-time synthesis) operate on a single
coherent object.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from repro.model.merchants import Merchant
from repro.model.products import Product
from repro.model.schema import CategorySchema
from repro.model.taxonomy import Taxonomy

__all__ = ["Catalog"]


class Catalog:
    """A product catalog with taxonomy, per-category schemas and products.

    Examples
    --------
    >>> taxonomy = Taxonomy()
    >>> _ = taxonomy.add_category("computing", "Computing")
    >>> _ = taxonomy.add_category("computing.hdd", "Hard Drives", parent_id="computing")
    >>> catalog = Catalog(taxonomy)
    >>> schema = CategorySchema("computing.hdd")
    >>> catalog.register_schema(schema)
    >>> catalog.schema_for("computing.hdd") is schema
    True
    """

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        self._schemas: Dict[str, CategorySchema] = {}
        self._products: Dict[str, Product] = {}
        self._products_by_category: Dict[str, List[str]] = {}
        self._merchants: Dict[str, Merchant] = {}

    # -- schemas ----------------------------------------------------------

    def register_schema(self, schema: CategorySchema) -> None:
        """Attach a schema to its category.

        Raises
        ------
        KeyError
            If the category does not exist in the taxonomy.
        ValueError
            If the category already has a schema.
        """
        self.taxonomy.get(schema.category_id)
        if schema.category_id in self._schemas:
            raise ValueError(f"category {schema.category_id!r} already has a schema")
        self._schemas[schema.category_id] = schema

    def schema_for(self, category_id: str) -> CategorySchema:
        """The schema of a category.

        Raises
        ------
        KeyError
            If the category has no registered schema.
        """
        try:
            return self._schemas[category_id]
        except KeyError:
            raise KeyError(f"no schema registered for category {category_id!r}") from None

    def has_schema(self, category_id: str) -> bool:
        """Whether the category has a registered schema."""
        return category_id in self._schemas

    def schemas(self) -> List[CategorySchema]:
        """All registered schemas."""
        return list(self._schemas.values())

    # -- merchants --------------------------------------------------------

    def register_merchant(self, merchant: Merchant) -> None:
        """Register a merchant (idempotent for identical ids)."""
        existing = self._merchants.get(merchant.merchant_id)
        if existing is not None and existing != merchant:
            raise ValueError(f"merchant id {merchant.merchant_id!r} already registered")
        self._merchants[merchant.merchant_id] = merchant

    def merchant(self, merchant_id: str) -> Merchant:
        """The merchant with the given id.

        Raises
        ------
        KeyError
            If the merchant is unknown.
        """
        try:
            return self._merchants[merchant_id]
        except KeyError:
            raise KeyError(f"unknown merchant id: {merchant_id!r}") from None

    def merchants(self) -> List[Merchant]:
        """All registered merchants."""
        return list(self._merchants.values())

    # -- products ---------------------------------------------------------

    def add_product(self, product: Product) -> None:
        """Add a product instance to the catalog.

        Raises
        ------
        ValueError
            If the product id already exists.
        KeyError
            If the product's category is not in the taxonomy.
        """
        if product.product_id in self._products:
            raise ValueError(f"duplicate product id: {product.product_id!r}")
        self.taxonomy.get(product.category_id)
        self._products[product.product_id] = product
        self._products_by_category.setdefault(product.category_id, []).append(
            product.product_id
        )

    def add_products(self, products: Iterable[Product]) -> None:
        """Add several products."""
        for product in products:
            self.add_product(product)

    def product(self, product_id: str) -> Product:
        """The product with the given id.

        Raises
        ------
        KeyError
            If the product is unknown.
        """
        try:
            return self._products[product_id]
        except KeyError:
            raise KeyError(f"unknown product id: {product_id!r}") from None

    def has_product(self, product_id: str) -> bool:
        """Whether a product with this id exists."""
        return product_id in self._products

    def products(self) -> List[Product]:
        """All products in the catalog."""
        return list(self._products.values())

    def products_in_category(self, category_id: str) -> List[Product]:
        """All products of a given leaf category."""
        return [
            self._products[product_id]
            for product_id in self._products_by_category.get(category_id, [])
        ]

    def num_products(self) -> int:
        """Total number of products."""
        return len(self._products)

    def __len__(self) -> int:
        return len(self._products)

    def __iter__(self) -> Iterator[Product]:
        return iter(self._products.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Catalog(categories={len(self.taxonomy)}, schemas={len(self._schemas)}, "
            f"products={len(self._products)}, merchants={len(self._merchants)})"
        )
