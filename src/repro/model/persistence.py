"""JSON persistence for catalogs, correspondences and synthesized products.

A production deployment needs to store the catalog, the learned attribute
correspondences and each batch of synthesized products durably.  This
module provides a plain-JSON representation for those artefacts — no
external database required, and the files are diff-able, which is handy for
tracking how the catalog evolves across synthesis runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.matching.correspondence import AttributeCorrespondence, CorrespondenceSet
from repro.model.attributes import Specification
from repro.model.catalog import Catalog
from repro.model.merchants import Merchant
from repro.model.offers import Offer
from repro.model.products import Product
from repro.model.schema import AttributeKind, CategorySchema
from repro.model.taxonomy import Taxonomy

__all__ = [
    "catalog_to_dict",
    "catalog_from_dict",
    "save_catalog",
    "load_catalog",
    "correspondences_to_dict",
    "correspondences_from_dict",
    "save_correspondences",
    "load_correspondences",
    "products_to_dicts",
    "products_from_dicts",
    "product_to_dict",
    "product_from_dict",
    "offer_to_dict",
    "offer_from_dict",
    "offers_to_dicts",
    "offers_from_dicts",
]

PathLike = Union[str, Path]

#: Format marker written into every file so future readers can migrate.
_FORMAT_VERSION = 1


# --- products ----------------------------------------------------------------


def product_to_dict(product: Product) -> Dict:
    """Serialise one product to a JSON-compatible dict."""
    return {
        "product_id": product.product_id,
        "category_id": product.category_id,
        "title": product.title,
        "specification": [pair.as_tuple() for pair in product.specification],
        "source_offer_ids": list(product.source_offer_ids),
    }


def product_from_dict(payload: Dict) -> Product:
    """Deserialise one product previously produced by :func:`product_to_dict`."""
    return Product(
        product_id=payload["product_id"],
        category_id=payload["category_id"],
        title=payload.get("title", ""),
        specification=Specification(payload.get("specification", [])),
        source_offer_ids=tuple(payload.get("source_offer_ids", [])),
    )


# Backwards-compatible aliases (the public names are new).
_product_to_dict = product_to_dict
_product_from_dict = product_from_dict


def products_to_dicts(products: List[Product]) -> List[Dict]:
    """Serialise a list of products to JSON-compatible dicts."""
    return [_product_to_dict(product) for product in products]


def products_from_dicts(payloads: List[Dict]) -> List[Product]:
    """Deserialise products previously produced by :func:`products_to_dicts`."""
    return [_product_from_dict(payload) for payload in payloads]


# --- offers ------------------------------------------------------------------


def offer_to_dict(offer: Offer) -> Dict:
    """Serialise one offer to a JSON-compatible dict.

    Every field round-trips exactly (including the reconciled
    specification), which is what lets the durable runtime catalog store
    rebuild clusters whose fused products are byte-identical to the
    in-memory originals.
    """
    payload: Dict = {
        "offer_id": offer.offer_id,
        "merchant_id": offer.merchant_id,
        "title": offer.title,
        "price": offer.price,
        "url": offer.url,
        "feed_category": offer.feed_category,
        "specification": [pair.as_tuple() for pair in offer.specification],
    }
    if offer.image_url is not None:
        payload["image_url"] = offer.image_url
    if offer.category_id is not None:
        payload["category_id"] = offer.category_id
    return payload


def offer_from_dict(payload: Dict) -> Offer:
    """Deserialise one offer previously produced by :func:`offer_to_dict`."""
    return Offer(
        offer_id=payload["offer_id"],
        merchant_id=payload["merchant_id"],
        title=payload.get("title", ""),
        price=payload.get("price", 0.0),
        url=payload.get("url", ""),
        image_url=payload.get("image_url"),
        feed_category=payload.get("feed_category", ""),
        category_id=payload.get("category_id"),
        specification=Specification(payload.get("specification", [])),
    )


def offers_to_dicts(offers: List[Offer]) -> List[Dict]:
    """Serialise a list of offers to JSON-compatible dicts."""
    return [offer_to_dict(offer) for offer in offers]


def offers_from_dicts(payloads: List[Dict]) -> List[Offer]:
    """Deserialise offers previously produced by :func:`offers_to_dicts`."""
    return [offer_from_dict(payload) for payload in payloads]


# --- catalog -----------------------------------------------------------------


def catalog_to_dict(catalog: Catalog) -> Dict:
    """Serialise a catalog (taxonomy, schemas, merchants, products)."""
    return {
        "format_version": _FORMAT_VERSION,
        "categories": [
            {
                "category_id": category.category_id,
                "name": category.name,
                "parent_id": category.parent_id,
            }
            for category in catalog.taxonomy.categories()
        ],
        "schemas": [
            {
                "category_id": schema.category_id,
                "attributes": [
                    {
                        "name": definition.name,
                        "kind": definition.kind.value,
                        "is_key": definition.is_key,
                        "unit": definition.unit,
                    }
                    for definition in schema.definitions()
                ],
            }
            for schema in catalog.schemas()
        ],
        "merchants": [
            {
                "merchant_id": merchant.merchant_id,
                "name": merchant.name,
                "homepage": merchant.homepage,
            }
            for merchant in catalog.merchants()
        ],
        "products": products_to_dicts(catalog.products()),
    }


def catalog_from_dict(payload: Dict) -> Catalog:
    """Rebuild a catalog from :func:`catalog_to_dict` output.

    Raises
    ------
    ValueError
        If the payload declares an unsupported format version.
    """
    version = payload.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported catalog format version: {version}")

    taxonomy = Taxonomy()
    # Parents must be added before children; categories are stored in
    # insertion order which already satisfies that, but sort defensively so
    # hand-edited files also load.
    pending = list(payload.get("categories", []))
    added: set = set()
    while pending:
        progressed = False
        remaining = []
        for entry in pending:
            parent = entry.get("parent_id")
            if parent is None or parent in added:
                taxonomy.add_category(entry["category_id"], entry["name"], parent_id=parent)
                added.add(entry["category_id"])
                progressed = True
            else:
                remaining.append(entry)
        if not progressed:
            missing = sorted(entry["category_id"] for entry in remaining)
            raise ValueError(f"categories with unresolvable parents: {missing}")
        pending = remaining

    catalog = Catalog(taxonomy)
    for schema_payload in payload.get("schemas", []):
        schema = CategorySchema(schema_payload["category_id"])
        for attribute in schema_payload.get("attributes", []):
            schema.add_attribute(
                attribute["name"],
                kind=AttributeKind(attribute.get("kind", AttributeKind.TEXT.value)),
                is_key=attribute.get("is_key", False),
                unit=attribute.get("unit"),
            )
        catalog.register_schema(schema)
    for merchant_payload in payload.get("merchants", []):
        catalog.register_merchant(
            Merchant(
                merchant_id=merchant_payload["merchant_id"],
                name=merchant_payload["name"],
                homepage=merchant_payload.get("homepage"),
            )
        )
    for product_payload in payload.get("products", []):
        catalog.add_product(_product_from_dict(product_payload))
    return catalog


def save_catalog(catalog: Catalog, path: PathLike) -> None:
    """Write a catalog to a JSON file."""
    Path(path).write_text(json.dumps(catalog_to_dict(catalog), indent=2), encoding="utf-8")


def load_catalog(path: PathLike) -> Catalog:
    """Read a catalog from a JSON file written by :func:`save_catalog`."""
    return catalog_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


# --- correspondences ------------------------------------------------------------


def correspondences_to_dict(correspondences: CorrespondenceSet) -> Dict:
    """Serialise learned attribute correspondences."""
    return {
        "format_version": _FORMAT_VERSION,
        "correspondences": [
            {
                "catalog_attribute": correspondence.catalog_attribute,
                "offer_attribute": correspondence.offer_attribute,
                "merchant_id": correspondence.merchant_id,
                "category_id": correspondence.category_id,
                "score": correspondence.score,
            }
            for correspondence in correspondences
        ],
    }


def correspondences_from_dict(payload: Dict) -> CorrespondenceSet:
    """Rebuild a correspondence set from :func:`correspondences_to_dict` output."""
    version = payload.get("format_version", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported correspondences format version: {version}")
    return CorrespondenceSet(
        AttributeCorrespondence(
            catalog_attribute=entry["catalog_attribute"],
            offer_attribute=entry["offer_attribute"],
            merchant_id=entry["merchant_id"],
            category_id=entry["category_id"],
            score=entry.get("score", 1.0),
        )
        for entry in payload.get("correspondences", [])
    )


def save_correspondences(correspondences: CorrespondenceSet, path: PathLike) -> None:
    """Write learned correspondences to a JSON file."""
    Path(path).write_text(
        json.dumps(correspondences_to_dict(correspondences), indent=2), encoding="utf-8"
    )


def load_correspondences(path: PathLike) -> CorrespondenceSet:
    """Read correspondences from a JSON file written by :func:`save_correspondences`."""
    return correspondences_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
