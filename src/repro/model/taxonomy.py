"""Product taxonomy: a tree of categories.

The catalog taxonomy of a Product Search Engine has thousands of
categories organised under a handful of top-level departments
("Computing", "Cameras", ...).  Products and offers always attach to a
*leaf* category; evaluation tables in the paper aggregate results by
*top-level* category (paper Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = ["Category", "Taxonomy"]


@dataclass(frozen=True)
class Category:
    """A node in the catalog taxonomy.

    Attributes
    ----------
    category_id:
        Stable unique identifier (e.g. ``"computing.storage.hard-drives"``).
    name:
        Human-readable name (e.g. ``"Hard Drives"``).
    parent_id:
        Identifier of the parent category, ``None`` for top-level nodes.
    """

    category_id: str
    name: str
    parent_id: Optional[str] = None

    def is_top_level(self) -> bool:
        """Whether this category has no parent."""
        return self.parent_id is None


class Taxonomy:
    """A tree of :class:`Category` nodes with id-based lookups.

    The tree is built incrementally (:meth:`add_category`); parents must be
    added before their children so that the structure is always a valid
    forest.

    Examples
    --------
    >>> taxonomy = Taxonomy()
    >>> _ = taxonomy.add_category("computing", "Computing")
    >>> _ = taxonomy.add_category("computing.hard-drives", "Hard Drives", parent_id="computing")
    >>> taxonomy.top_level_of("computing.hard-drives").name
    'Computing'
    """

    def __init__(self) -> None:
        self._categories: Dict[str, Category] = {}
        self._children: Dict[str, List[str]] = {}

    # -- construction -----------------------------------------------------

    def add_category(
        self, category_id: str, name: str, parent_id: Optional[str] = None
    ) -> Category:
        """Add a category node and return it.

        Raises
        ------
        ValueError
            If the id already exists or the parent is unknown.
        """
        if category_id in self._categories:
            raise ValueError(f"duplicate category id: {category_id!r}")
        if parent_id is not None and parent_id not in self._categories:
            raise ValueError(
                f"unknown parent {parent_id!r} for category {category_id!r}"
            )
        category = Category(category_id=category_id, name=name, parent_id=parent_id)
        self._categories[category_id] = category
        self._children.setdefault(category_id, [])
        if parent_id is not None:
            self._children.setdefault(parent_id, []).append(category_id)
        return category

    # -- lookup -----------------------------------------------------------

    def get(self, category_id: str) -> Category:
        """The category with the given id.

        Raises
        ------
        KeyError
            If the category does not exist.
        """
        try:
            return self._categories[category_id]
        except KeyError:
            raise KeyError(f"unknown category id: {category_id!r}") from None

    def __contains__(self, category_id: str) -> bool:
        return category_id in self._categories

    def __len__(self) -> int:
        return len(self._categories)

    def __iter__(self) -> Iterator[Category]:
        return iter(self._categories.values())

    def categories(self) -> List[Category]:
        """All categories, in insertion order."""
        return list(self._categories.values())

    def top_level_categories(self) -> List[Category]:
        """Categories without a parent."""
        return [category for category in self._categories.values() if category.is_top_level()]

    def children_of(self, category_id: str) -> List[Category]:
        """Direct children of a category."""
        self.get(category_id)
        return [self._categories[child] for child in self._children.get(category_id, [])]

    def leaves(self) -> List[Category]:
        """Categories with no children (products/offers attach here)."""
        return [
            category
            for category_id, category in self._categories.items()
            if not self._children.get(category_id)
        ]

    def leaf_ids(self) -> List[str]:
        """Ids of all leaf categories."""
        return [category.category_id for category in self.leaves()]

    def ancestors_of(self, category_id: str) -> List[Category]:
        """Ancestors from direct parent up to the top-level category."""
        ancestors: List[Category] = []
        current = self.get(category_id)
        while current.parent_id is not None:
            current = self.get(current.parent_id)
            ancestors.append(current)
        return ancestors

    def top_level_of(self, category_id: str) -> Category:
        """The top-level (root) ancestor of a category (itself if top-level)."""
        current = self.get(category_id)
        while current.parent_id is not None:
            current = self.get(current.parent_id)
        return current

    def descendants_of(self, category_id: str) -> List[Category]:
        """All descendants (children, grandchildren, ...) of a category."""
        self.get(category_id)
        descendants: List[Category] = []
        frontier = list(self._children.get(category_id, []))
        while frontier:
            child_id = frontier.pop()
            child = self._categories[child_id]
            descendants.append(child)
            frontier.extend(self._children.get(child_id, []))
        return descendants

    def subtree_leaf_ids(self, category_id: str) -> List[str]:
        """Leaf-category ids in the subtree rooted at ``category_id``.

        Used by the Figure 7/8 experiments, which restrict correspondence
        generation to the Computing subtree.
        """
        root = self.get(category_id)
        if not self._children.get(category_id):
            return [root.category_id]
        return [
            category.category_id
            for category in self.descendants_of(category_id)
            if not self._children.get(category.category_id)
        ]
