"""Catalog category schemas.

Every leaf category in the catalog taxonomy has a schema: the set of
attributes a product of that category may carry ("Resolution", "Size",
... for Digital Cameras).  The schema also flags *key attributes* —
Model Part Number and universal identifiers (UPC/EAN/GTIN) — which the
clustering component uses to group offers into product clusters
(paper Section 4, "Clustering").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.text.normalize import normalize_attribute_name

__all__ = ["AttributeKind", "AttributeDefinition", "CategorySchema"]


class AttributeKind(enum.Enum):
    """Broad value type of a catalog attribute.

    The kind drives synthetic value generation and lets the value-fusion
    ablations distinguish single-token numeric attributes from multi-token
    textual ones.
    """

    TEXT = "text"
    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    IDENTIFIER = "identifier"


@dataclass(frozen=True)
class AttributeDefinition:
    """Definition of one attribute in a category schema.

    Attributes
    ----------
    name:
        Canonical catalog attribute name (e.g. ``"Capacity"``).
    kind:
        Broad value type, see :class:`AttributeKind`.
    is_key:
        Whether the attribute identifies the product (MPN/UPC/EAN).
    unit:
        Optional canonical measurement unit (``"GB"``, ``"rpm"``) used by
        the corpus generator when rendering values.
    """

    name: str
    kind: AttributeKind = AttributeKind.TEXT
    is_key: bool = False
    unit: Optional[str] = None

    def normalized_name(self) -> str:
        """Canonicalised attribute name."""
        return normalize_attribute_name(self.name)


class CategorySchema:
    """The set of attribute definitions for one catalog category.

    Examples
    --------
    >>> schema = CategorySchema("computing.hard-drives")
    >>> schema.add_attribute("Model Part Number", AttributeKind.IDENTIFIER, is_key=True)
    >>> schema.add_attribute("Capacity", AttributeKind.NUMERIC, unit="GB")
    >>> schema.is_key_attribute("model part number")
    True
    """

    def __init__(
        self,
        category_id: str,
        attributes: Iterable[AttributeDefinition] = (),
    ) -> None:
        self.category_id = category_id
        self._attributes: Dict[str, AttributeDefinition] = {}
        for definition in attributes:
            self._register(definition)

    def _register(self, definition: AttributeDefinition) -> None:
        key = definition.normalized_name()
        if key in self._attributes:
            raise ValueError(
                f"duplicate attribute {definition.name!r} in schema "
                f"for category {self.category_id!r}"
            )
        self._attributes[key] = definition

    # -- construction -----------------------------------------------------

    def add_attribute(
        self,
        name: str,
        kind: AttributeKind = AttributeKind.TEXT,
        is_key: bool = False,
        unit: Optional[str] = None,
    ) -> AttributeDefinition:
        """Add an attribute definition and return it."""
        definition = AttributeDefinition(name=name, kind=kind, is_key=is_key, unit=unit)
        self._register(definition)
        return definition

    # -- lookup -----------------------------------------------------------

    def attribute_names(self) -> List[str]:
        """Canonical attribute names, in insertion order."""
        return [definition.name for definition in self._attributes.values()]

    def definitions(self) -> List[AttributeDefinition]:
        """All attribute definitions, in insertion order."""
        return list(self._attributes.values())

    def get(self, name: str) -> Optional[AttributeDefinition]:
        """The definition of attribute ``name``, or ``None``."""
        return self._attributes.get(normalize_attribute_name(name))

    def has_attribute(self, name: str) -> bool:
        """Whether the schema defines attribute ``name``."""
        return self.get(name) is not None

    def key_attributes(self) -> List[AttributeDefinition]:
        """Attributes flagged as product keys (MPN / UPC / EAN)."""
        return [definition for definition in self._attributes.values() if definition.is_key]

    def key_attribute_names(self) -> List[str]:
        """Names of the key attributes."""
        return [definition.name for definition in self.key_attributes()]

    def is_key_attribute(self, name: str) -> bool:
        """Whether ``name`` refers to a key attribute."""
        definition = self.get(name)
        return definition is not None and definition.is_key

    def non_key_attribute_names(self) -> List[str]:
        """Names of the non-key attributes."""
        return [
            definition.name
            for definition in self._attributes.values()
            if not definition.is_key
        ]

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[AttributeDefinition]:
        return iter(self._attributes.values())

    def __contains__(self, name: str) -> bool:
        return self.has_attribute(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CategorySchema(category_id={self.category_id!r}, "
            f"attributes={len(self._attributes)})"
        )
