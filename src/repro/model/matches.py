"""Historical offer-to-product matches.

Paper Section 3.1: "The business model of Product Search Engines implies
the existence of a wealth of historical information about merchant offers
associated ('matched') to catalog products."  These associations — coming
from universal identifiers, manual curation or automated matchers — are the
key ingredient of the paper's schema-reconciliation approach: value
distributions are computed only over matched offers and products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set

__all__ = ["OfferProductMatch", "MatchStore"]


@dataclass(frozen=True)
class OfferProductMatch:
    """An association between one offer and one catalog product.

    Attributes
    ----------
    offer_id, product_id:
        The matched pair.
    method:
        How the association was obtained (``"upc"``, ``"manual"``,
        ``"title-matcher"``, ``"synthetic"``); informational only.
    confidence:
        Optional confidence score in [0, 1] reported by the matcher.
    """

    offer_id: str
    product_id: str
    method: str = "unknown"
    confidence: float = 1.0


class MatchStore:
    """An indexed collection of historical offer-to-product matches.

    Provides the lookups the Offline Learning phase needs: products matched
    by a set of offers, offers matched to a set of products, and the subset
    of offers that do have a historical match (the rest flow into the
    run-time synthesis pipeline as "new product" candidates).

    Examples
    --------
    >>> store = MatchStore()
    >>> store.add(OfferProductMatch("offer-1", "prod-9"))
    >>> store.product_for_offer("offer-1")
    'prod-9'
    """

    def __init__(self, matches: Iterable[OfferProductMatch] = ()) -> None:
        self._matches: List[OfferProductMatch] = []
        self._by_offer: Dict[str, OfferProductMatch] = {}
        self._by_product: Dict[str, List[OfferProductMatch]] = {}
        for match in matches:
            self.add(match)

    # -- construction -----------------------------------------------------

    def add(self, match: OfferProductMatch) -> None:
        """Add a match; an offer may be matched to at most one product.

        Raises
        ------
        ValueError
            If the offer is already matched to a *different* product.
        """
        existing = self._by_offer.get(match.offer_id)
        if existing is not None:
            if existing.product_id != match.product_id:
                raise ValueError(
                    f"offer {match.offer_id!r} already matched to "
                    f"{existing.product_id!r}, cannot also match {match.product_id!r}"
                )
            return
        self._matches.append(match)
        self._by_offer[match.offer_id] = match
        self._by_product.setdefault(match.product_id, []).append(match)

    # -- lookup -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[OfferProductMatch]:
        return iter(self._matches)

    def __contains__(self, offer_id: str) -> bool:
        return offer_id in self._by_offer

    def matches(self) -> List[OfferProductMatch]:
        """All matches, in insertion order."""
        return list(self._matches)

    def is_matched(self, offer_id: str) -> bool:
        """Whether the offer has a historical match."""
        return offer_id in self._by_offer

    def product_for_offer(self, offer_id: str) -> Optional[str]:
        """The product an offer is matched to, or ``None``."""
        match = self._by_offer.get(offer_id)
        return match.product_id if match else None

    def offers_for_product(self, product_id: str) -> List[str]:
        """All offers matched to a product."""
        return [match.offer_id for match in self._by_product.get(product_id, [])]

    def matched_offer_ids(self) -> Set[str]:
        """Ids of all offers that have a match."""
        return set(self._by_offer.keys())

    def matched_product_ids(self) -> Set[str]:
        """Ids of all products that have at least one matched offer."""
        return set(self._by_product.keys())

    def unmatched(self, offer_ids: Iterable[str]) -> List[str]:
        """The subset of ``offer_ids`` without a historical match.

        These are the offers the run-time pipeline synthesizes new products
        from.
        """
        return [offer_id for offer_id in offer_ids if offer_id not in self._by_offer]
