"""Core data model of the product-synthesis reproduction.

The entities follow the problem formulation in Section 2 of the paper:

* a :class:`~repro.model.taxonomy.Taxonomy` of :class:`~repro.model.taxonomy.Category`
  nodes, each leaf category carrying a :class:`~repro.model.schema.CategorySchema`;
* :class:`~repro.model.products.Product` — ``p = (C, {<A1, v1>, ..., <An, vn>})``;
* :class:`~repro.model.offers.Offer` —
  ``o = (M, price, image, C, URL, title, {<A1, v1>, ...})``;
* a :class:`~repro.model.catalog.Catalog` holding products, the taxonomy and
  the per-category schemas;
* :class:`~repro.model.matches.OfferProductMatch` — the historical
  offer-to-product associations that the offline learning phase exploits.
"""

from repro.model.attributes import AttributeValue, Specification
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore, OfferProductMatch
from repro.model.merchants import Merchant
from repro.model.offers import Offer
from repro.model.products import Product
from repro.model.schema import AttributeDefinition, AttributeKind, CategorySchema
from repro.model.taxonomy import Category, Taxonomy

__all__ = [
    "AttributeValue",
    "Specification",
    "Catalog",
    "MatchStore",
    "OfferProductMatch",
    "Merchant",
    "Offer",
    "Product",
    "AttributeDefinition",
    "AttributeKind",
    "CategorySchema",
    "Category",
    "Taxonomy",
]
