"""Attribute-value pairs and specifications.

Both products and offers are described by *specifications*: ordered
collections of attribute-value pairs.  An offer specification uses the
merchant's own attribute vocabulary; a product specification uses the
catalog schema of its category.  The same container type serves both
(paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.text.normalize import normalize_attribute_name, normalize_value

__all__ = ["AttributeValue", "Specification"]


@dataclass(frozen=True)
class AttributeValue:
    """A single ⟨attribute, value⟩ pair.

    Attributes
    ----------
    name:
        Attribute name exactly as provided (catalog schema name or merchant
        vocabulary).
    value:
        Attribute value as a string; numeric values keep their original
        formatting (``"500 GB"``) because format variation is part of the
        problem the pipeline solves.
    """

    name: str
    value: str

    def normalized_name(self) -> str:
        """The attribute name canonicalised for identity comparison."""
        return normalize_attribute_name(self.name)

    def normalized_value(self) -> str:
        """The value canonicalised for loose comparison."""
        return normalize_value(self.value)

    def as_tuple(self) -> Tuple[str, str]:
        """The pair as a plain ``(name, value)`` tuple."""
        return (self.name, self.value)

    def __str__(self) -> str:
        return f"{self.name} = {self.value}"


class Specification:
    """An ordered multi-map of attribute-value pairs.

    A specification may legitimately contain several values for the same
    attribute name (merchant pages are messy); most accessors therefore
    distinguish between the *first* value (:meth:`get`) and *all* values
    (:meth:`get_all`).

    Examples
    --------
    >>> spec = Specification([("Brand", "Hitachi"), ("Capacity", "500 GB")])
    >>> spec.get("Brand")
    'Hitachi'
    >>> len(spec)
    2
    """

    __slots__ = ("_pairs",)

    def __init__(
        self,
        pairs: Iterable[object] = (),
    ) -> None:
        self._pairs: List[AttributeValue] = []
        for pair in pairs:
            if isinstance(pair, AttributeValue):
                self._pairs.append(pair)
            else:
                name, value = pair  # type: ignore[misc]
                self._pairs.append(AttributeValue(str(name), str(value)))

    # -- construction -----------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "Specification":
        """Build a specification from a plain dict (one value per name)."""
        return cls(list(mapping.items()))

    def add(self, name: str, value: str) -> None:
        """Append an attribute-value pair."""
        self._pairs.append(AttributeValue(name, value))

    def extend(self, pairs: Iterable[AttributeValue]) -> None:
        """Append several attribute-value pairs."""
        for pair in pairs:
            self._pairs.append(pair)

    # -- lookup -----------------------------------------------------------

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value for ``name`` (case/punctuation-insensitive)."""
        wanted = normalize_attribute_name(name)
        for pair in self._pairs:
            if pair.normalized_name() == wanted:
                return pair.value
        return default

    def get_all(self, name: str) -> List[str]:
        """All values recorded for ``name``."""
        wanted = normalize_attribute_name(name)
        return [pair.value for pair in self._pairs if pair.normalized_name() == wanted]

    def has(self, name: str) -> bool:
        """Whether the specification contains attribute ``name``."""
        return self.get(name) is not None

    def attribute_names(self) -> List[str]:
        """Distinct attribute names in first-seen order."""
        seen = set()
        names: List[str] = []
        for pair in self._pairs:
            key = pair.normalized_name()
            if key not in seen:
                seen.add(key)
                names.append(pair.name)
        return names

    def pairs(self) -> List[AttributeValue]:
        """A copy of the underlying attribute-value pair list."""
        return list(self._pairs)

    def as_dict(self) -> Dict[str, str]:
        """First value per attribute name, as a plain dict."""
        result: Dict[str, str] = {}
        for pair in self._pairs:
            result.setdefault(pair.name, pair.value)
        return result

    # -- transformation ---------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "Specification":
        """Return a new specification with attribute names translated.

        Pairs whose (normalised) name is absent from ``mapping`` are
        dropped — this mirrors the behaviour of schema reconciliation,
        which discards attribute-value pairs without a learned
        correspondence.
        """
        normalized_mapping = {
            normalize_attribute_name(source): target for source, target in mapping.items()
        }
        renamed = Specification()
        for pair in self._pairs:
            target = normalized_mapping.get(pair.normalized_name())
            if target is not None:
                renamed.add(target, pair.value)
        return renamed

    def filter_names(self, names: Iterable[str]) -> "Specification":
        """Return a new specification keeping only the listed attribute names."""
        allowed = {normalize_attribute_name(name) for name in names}
        return Specification(
            [pair for pair in self._pairs if pair.normalized_name() in allowed]
        )

    # -- dunder -----------------------------------------------------------

    def __iter__(self) -> Iterator[AttributeValue]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Specification):
            return NotImplemented
        return self._pairs == other._pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(str(pair) for pair in self._pairs[:4])
        suffix = ", ..." if len(self._pairs) > 4 else ""
        return f"Specification([{preview}{suffix}])"
