"""Merchants: the sellers who supply offer feeds to the Product Search Engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["Merchant"]


@dataclass(frozen=True)
class Merchant:
    """A merchant selling products through the Product Search Engine.

    Attributes
    ----------
    merchant_id:
        Stable unique identifier (e.g. ``"merchant-0042"``).
    name:
        Display name (e.g. ``"Microwarehouse"``).
    homepage:
        Root URL of the merchant site; landing-page URLs in offers point
        below this root.
    """

    merchant_id: str
    name: str
    homepage: Optional[str] = None

    def __str__(self) -> str:
        return self.name
