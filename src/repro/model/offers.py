"""Merchant offers.

An offer is ``o = (M, price, image, C, URL, title, {<A1, v1>, ...})``
(paper Section 2).  Offer feeds usually carry only title, price, URL and a
feed category; the offer *specification* is filled in later by the
Web-page Attribute Extraction component from the merchant landing page.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.model.attributes import Specification

__all__ = ["Offer"]


@dataclass
class Offer:
    """An offer provided by a merchant through its feed.

    Attributes
    ----------
    offer_id:
        Stable unique identifier.
    merchant_id:
        The merchant selling the product.
    title:
        Short free-text sentence describing the product
        (e.g. ``"HP 400GB 10K 3.5 DP NSAS HDD"``).
    price:
        Offer price in the feed currency.
    url:
        Landing page on the merchant site where the product can be bought.
    image_url:
        Product image, when the feed provides one.
    feed_category:
        Category string under the *merchant's* taxonomy
        (e.g. ``"Computing|Storage|Hard Drives"``); may be empty.
    category_id:
        Category under the *catalog* taxonomy, assigned by the category
        classifier (or provided by the corpus generator).
    specification:
        Attribute-value pairs describing the product, in the merchant's own
        vocabulary.  Usually populated by the web-page attribute extractor.
    """

    offer_id: str
    merchant_id: str
    title: str
    price: float = 0.0
    url: str = ""
    image_url: Optional[str] = None
    feed_category: str = ""
    category_id: Optional[str] = None
    specification: Specification = field(default_factory=Specification)

    def attribute_names(self) -> List[str]:
        """Distinct attribute names in the offer specification."""
        return self.specification.attribute_names()

    def get(self, attribute_name: str, default: Optional[str] = None) -> Optional[str]:
        """The (first) value of ``attribute_name``, or ``default``."""
        return self.specification.get(attribute_name, default)

    def num_attributes(self) -> int:
        """Number of attribute-value pairs in the offer specification."""
        return len(self.specification)

    def with_specification(self, specification: Specification) -> "Offer":
        """A copy of this offer carrying a different specification."""
        return replace(self, specification=specification)

    def with_category(self, category_id: str) -> "Offer":
        """A copy of this offer assigned to a catalog category."""
        return replace(self, category_id=category_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Offer(id={self.offer_id!r}, merchant={self.merchant_id!r}, "
            f"title={self.title[:40]!r}, attrs={self.num_attributes()})"
        )
