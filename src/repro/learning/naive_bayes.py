"""Multinomial Naive Bayes over bags of words.

Two components of the reproduction use this classifier:

* the **category classifier** that maps an incoming offer title to a
  catalog category (paper Section 2 mentions "a simple classifier" whose
  details are omitted; a multinomial NB over title tokens is the standard
  choice and is resilient enough for the pipeline, which only requires a
  sufficient number of representative offers per product);
* the **LSD-style instance-based Naive Bayes matcher** baseline
  (paper Appendix C) reuses the same estimator with attribute names as
  classes and catalog values as training documents.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["MultinomialNaiveBayes"]


class MultinomialNaiveBayes:
    """Multinomial Naive Bayes with Laplace (add-alpha) smoothing.

    Documents are token sequences; classes are arbitrary hashable labels.

    Parameters
    ----------
    alpha:
        Additive smoothing constant (1.0 = classic Laplace smoothing).

    Examples
    --------
    >>> nb = MultinomialNaiveBayes()
    >>> nb.update("hdd", ["seagate", "barracuda", "7200", "rpm"])
    >>> nb.update("camera", ["canon", "eos", "megapixels"])
    >>> nb.fit_finalize()
    >>> nb.predict(["seagate", "7200"])
    'hdd'
    """

    def __init__(self, alpha: float = 1.0) -> None:
        if alpha <= 0:
            raise ValueError(f"smoothing constant alpha must be positive, got {alpha}")
        self.alpha = alpha
        self._token_counts: Dict[str, Counter] = defaultdict(Counter)
        self._class_token_totals: Dict[str, int] = defaultdict(int)
        self._class_document_counts: Dict[str, int] = defaultdict(int)
        self._vocabulary: set = set()
        self._total_documents = 0
        self._finalized = False

    # -- training ---------------------------------------------------------

    def update(self, label: str, tokens: Sequence[str]) -> None:
        """Add one training document for class ``label``."""
        self._finalized = False
        self._class_document_counts[label] += 1
        self._total_documents += 1
        counts = self._token_counts[label]
        for token in tokens:
            counts[token] += 1
            self._class_token_totals[label] += 1
            self._vocabulary.add(token)

    def fit(self, documents: Iterable[Tuple[str, Sequence[str]]]) -> "MultinomialNaiveBayes":
        """Train from an iterable of ``(label, tokens)`` pairs."""
        for label, tokens in documents:
            self.update(label, tokens)
        self.fit_finalize()
        return self

    def fit_finalize(self) -> None:
        """Mark training as complete.

        Calling predict before any training data was seen raises; calling
        it after :meth:`update` without :meth:`fit_finalize` is allowed (the
        flag only exists to catch obviously empty models early).
        """
        if not self._class_document_counts:
            raise RuntimeError("cannot finalise a Naive Bayes model with no training data")
        self._finalized = True

    # -- inference --------------------------------------------------------

    @property
    def classes(self) -> List[str]:
        """All class labels seen during training."""
        return list(self._class_document_counts.keys())

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens seen during training."""
        return len(self._vocabulary)

    def log_prior(self, label: str) -> float:
        """log P(class)."""
        if self._total_documents == 0:
            raise RuntimeError("model has no training data")
        return math.log(self._class_document_counts[label] / self._total_documents)

    def token_log_likelihood(self, label: str, token: str) -> float:
        """log P(token | class) with add-alpha smoothing."""
        count = self._token_counts[label].get(token, 0)
        total = self._class_token_totals[label]
        vocabulary = max(self.vocabulary_size, 1)
        return math.log((count + self.alpha) / (total + self.alpha * vocabulary))

    def token_probability(self, label: str, token: str) -> float:
        """P(token | class), smoothed."""
        return math.exp(self.token_log_likelihood(label, token))

    def log_scores(self, tokens: Sequence[str]) -> Dict[str, float]:
        """Unnormalised log posterior for every class."""
        if not self._class_document_counts:
            raise RuntimeError("model has no training data")
        scores: Dict[str, float] = {}
        for label in self._class_document_counts:
            score = self.log_prior(label)
            for token in tokens:
                score += self.token_log_likelihood(label, token)
            scores[label] = score
        return scores

    def posterior(self, tokens: Sequence[str]) -> Dict[str, float]:
        """Normalised posterior P(class | tokens) for every class."""
        log_scores = self.log_scores(tokens)
        maximum = max(log_scores.values())
        exponentials = {label: math.exp(score - maximum) for label, score in log_scores.items()}
        normaliser = sum(exponentials.values())
        return {label: value / normaliser for label, value in exponentials.items()}

    def predict(self, tokens: Sequence[str]) -> str:
        """The most probable class for a token sequence."""
        log_scores = self.log_scores(tokens)
        return max(log_scores.items(), key=lambda item: item[1])[0]

    def predict_with_confidence(self, tokens: Sequence[str]) -> Tuple[str, float]:
        """The most probable class and its posterior probability."""
        posterior = self.posterior(tokens)
        label, probability = max(posterior.items(), key=lambda item: item[1])
        return label, probability

    def dominant_class_by_token(self) -> Dict[str, str]:
        """token -> the class where the token was observed most often.

        A cheap routing-hint table: looking a token up costs one dict
        access instead of a full posterior sweep over every class.  Ties
        break on the lexicographically smallest class label, so the
        table is deterministic for any training order.
        """
        dominant: Dict[str, str] = {}
        best_count: Dict[str, int] = {}
        for label in sorted(self._token_counts):
            for token, count in self._token_counts[label].items():
                if count > best_count.get(token, 0):
                    best_count[token] = count
                    dominant[token] = label
        return dominant
