"""Binary classification metrics used by unit tests and internal validation."""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = [
    "confusion_counts",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
]


def _validate(y_true: Sequence[int], y_pred: Sequence[int]) -> None:
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"label vectors differ in length: {len(y_true)} vs {len(y_pred)}"
        )
    if len(y_true) == 0:
        raise ValueError("metrics are undefined for empty label vectors")


def confusion_counts(y_true: Sequence[int], y_pred: Sequence[int]) -> Dict[str, int]:
    """True/false positive/negative counts for binary labels.

    Returns a dict with keys ``tp``, ``fp``, ``tn``, ``fn``.
    """
    _validate(y_true, y_pred)
    counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
    for truth, prediction in zip(y_true, y_pred):
        truth_bool = bool(truth)
        prediction_bool = bool(prediction)
        if truth_bool and prediction_bool:
            counts["tp"] += 1
        elif not truth_bool and prediction_bool:
            counts["fp"] += 1
        elif truth_bool and not prediction_bool:
            counts["fn"] += 1
        else:
            counts["tn"] += 1
    return counts


def accuracy_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of correct predictions."""
    counts = confusion_counts(y_true, y_pred)
    return (counts["tp"] + counts["tn"]) / len(y_true)


def precision_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """TP / (TP + FP); defined as 0.0 when nothing was predicted positive."""
    counts = confusion_counts(y_true, y_pred)
    denominator = counts["tp"] + counts["fp"]
    if denominator == 0:
        return 0.0
    return counts["tp"] / denominator


def recall_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """TP / (TP + FN); defined as 0.0 when there are no positive labels."""
    counts = confusion_counts(y_true, y_pred)
    denominator = counts["tp"] + counts["fn"]
    if denominator == 0:
        return 0.0
    return counts["tp"] / denominator


def f1_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Harmonic mean of precision and recall (0.0 when both are 0)."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)
