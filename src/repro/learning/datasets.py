"""Containers for labelled training data.

The automated training-set construction (paper Section 3.2) produces a set
of feature vectors with binary labels; :class:`LabeledDataset` is the thin
container shuttled between that component and the logistic-regression
classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LabeledDataset"]


@dataclass
class LabeledDataset:
    """A labelled dataset of dense feature vectors.

    Attributes
    ----------
    feature_names:
        Column names, in the order used by every feature vector.
    examples:
        One feature vector per example.
    labels:
        Binary labels (0 or 1), aligned with ``examples``.
    identifiers:
        Optional opaque identifiers (e.g. the candidate tuple behind each
        example), aligned with ``examples``.
    """

    feature_names: Tuple[str, ...]
    examples: List[Sequence[float]] = field(default_factory=list)
    labels: List[int] = field(default_factory=list)
    identifiers: List[object] = field(default_factory=list)

    def add(
        self,
        features: Sequence[float],
        label: int,
        identifier: Optional[object] = None,
    ) -> None:
        """Append one labelled example.

        Raises
        ------
        ValueError
            If the feature vector length does not match ``feature_names``
            or the label is not 0/1.
        """
        if len(features) != len(self.feature_names):
            raise ValueError(
                f"expected {len(self.feature_names)} features, got {len(features)}"
            )
        if label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {label!r}")
        self.examples.append(tuple(float(value) for value in features))
        self.labels.append(int(label))
        self.identifiers.append(identifier)

    def __len__(self) -> int:
        return len(self.examples)

    def num_positive(self) -> int:
        """Number of positive (label 1) examples."""
        return sum(self.labels)

    def num_negative(self) -> int:
        """Number of negative (label 0) examples."""
        return len(self.labels) - self.num_positive()

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The dataset as ``(X, y)`` numpy arrays.

        Raises
        ------
        ValueError
            If the dataset is empty.
        """
        if not self.examples:
            raise ValueError("cannot convert an empty dataset to arrays")
        features = np.asarray(self.examples, dtype=float)
        labels = np.asarray(self.labels, dtype=float)
        return features, labels

    def is_degenerate(self) -> bool:
        """True when the dataset has fewer than two classes.

        A degenerate training set (all positives or all negatives) can
        happen for tiny corpora; callers fall back to an unweighted feature
        average in that case.
        """
        return self.num_positive() == 0 or self.num_negative() == 0
