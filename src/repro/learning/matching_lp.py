"""Maximum-weight bipartite matching.

The DUMAS baseline (paper Appendix C) averages per-duplicate similarity
matrices into one merchant-level matrix ``S_M`` and then solves a bipartite
weighted matching problem over it to obtain one-to-one attribute
correspondences.  This module provides an exact solver built on
``scipy.optimize.linear_sum_assignment`` with a deterministic greedy
fallback when scipy is unavailable.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised indirectly; scipy is installed in CI
    from scipy.optimize import linear_sum_assignment

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - fallback path
    _HAVE_SCIPY = False

__all__ = ["max_weight_bipartite_matching", "greedy_bipartite_matching"]


def _validate_matrix(weights: Sequence[Sequence[float]]) -> np.ndarray:
    if isinstance(weights, (list, tuple)) and len(weights) == 0:
        return np.zeros((0, 0))
    matrix = np.asarray(weights, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"weight matrix must be 2-dimensional, got shape {matrix.shape}")
    if matrix.size == 0:
        return matrix
    if np.isnan(matrix).any():
        raise ValueError("weight matrix contains NaN values")
    return matrix


def greedy_bipartite_matching(
    weights: Sequence[Sequence[float]], min_weight: float = 0.0
) -> List[Tuple[int, int, float]]:
    """Greedy one-to-one matching: repeatedly take the heaviest unused pair.

    Not optimal in general, but deterministic and within a factor two of
    the optimum; used as a fallback when scipy is not importable.
    """
    matrix = _validate_matrix(weights)
    if matrix.size == 0:
        return []
    candidates = [
        (float(matrix[row, column]), row, column)
        for row in range(matrix.shape[0])
        for column in range(matrix.shape[1])
        if matrix[row, column] > min_weight
    ]
    candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
    used_rows: set = set()
    used_columns: set = set()
    matching: List[Tuple[int, int, float]] = []
    for weight, row, column in candidates:
        if row in used_rows or column in used_columns:
            continue
        used_rows.add(row)
        used_columns.add(column)
        matching.append((row, column, weight))
    matching.sort(key=lambda item: (item[0], item[1]))
    return matching


def max_weight_bipartite_matching(
    weights: Sequence[Sequence[float]], min_weight: float = 0.0
) -> List[Tuple[int, int, float]]:
    """Maximum-weight one-to-one matching between rows and columns.

    Parameters
    ----------
    weights:
        Rectangular weight matrix; ``weights[i][j]`` is the benefit of
        matching row ``i`` with column ``j``.
    min_weight:
        Pairs whose weight is not strictly greater than this value are
        excluded from the returned matching (the assignment solver may
        still route through them internally).

    Returns
    -------
    list of (row, column, weight)
        Sorted by row index; each row and each column appears at most once.

    Examples
    --------
    >>> max_weight_bipartite_matching([[0.9, 0.1], [0.2, 0.8]])
    [(0, 0, 0.9), (1, 1, 0.8)]
    """
    matrix = _validate_matrix(weights)
    if matrix.size == 0:
        return []
    if not _HAVE_SCIPY:  # pragma: no cover - fallback path
        return greedy_bipartite_matching(matrix, min_weight=min_weight)

    row_indices, column_indices = linear_sum_assignment(-matrix)
    matching = [
        (int(row), int(column), float(matrix[row, column]))
        for row, column in zip(row_indices, column_indices)
        if matrix[row, column] > min_weight
    ]
    matching.sort(key=lambda item: (item[0], item[1]))
    return matching
