"""Machine-learning substrate.

The paper's attribute-correspondence classifier is a logistic regression
(Section 3.2); the LSD-style baseline uses a multinomial Naive Bayes
matcher (Appendix C); DUMAS solves a bipartite weighted matching problem
over its merchant similarity matrix (Appendix C).  All three building
blocks are implemented here from first principles on top of numpy so that
the reproduction has no opaque ML dependencies.
"""

from repro.learning.datasets import LabeledDataset
from repro.learning.logistic import LogisticRegressionClassifier
from repro.learning.matching_lp import max_weight_bipartite_matching
from repro.learning.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    precision_score,
    recall_score,
)
from repro.learning.naive_bayes import MultinomialNaiveBayes

__all__ = [
    "LabeledDataset",
    "LogisticRegressionClassifier",
    "max_weight_bipartite_matching",
    "accuracy_score",
    "confusion_counts",
    "f1_score",
    "precision_score",
    "recall_score",
    "MultinomialNaiveBayes",
]
