"""Binary logistic regression trained by batch gradient descent.

The attribute-correspondence classifier of the paper "employ[s] a
classifier that uses logistic regression" (Section 3.2) over six
distributional-similarity features.  At that dimensionality a simple,
dependency-free implementation — batch gradient descent with L2
regularisation, feature standardisation and early stopping — is both fast
and deterministic, which matters for reproducible experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.learning.datasets import LabeledDataset

__all__ = ["LogisticRegressionClassifier"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() well-behaved for extreme logits.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass
class _Standardizer:
    """Per-feature standardisation fitted on the training set."""

    mean: np.ndarray
    scale: np.ndarray

    @classmethod
    def fit(cls, features: np.ndarray) -> "_Standardizer":
        """Estimate per-feature mean and scale from the training matrix."""
        mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale = np.where(scale < 1e-12, 1.0, scale)
        return cls(mean=mean, scale=scale)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted standardisation to a feature matrix."""
        return (features - self.mean) / self.scale


class LogisticRegressionClassifier:
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size.
    l2_penalty:
        Strength of the L2 regulariser (applied to weights, not the bias).
    max_iterations:
        Upper bound on gradient-descent iterations.
    tolerance:
        Early-stopping threshold on the loss improvement per iteration.
    class_weight:
        ``"balanced"`` re-weights examples inversely to class frequency
        (useful because name-identity training sets are imbalanced),
        ``None`` leaves examples unweighted.

    Examples
    --------
    >>> import numpy as np
    >>> clf = LogisticRegressionClassifier()
    >>> X = np.array([[0.0], [0.1], [0.9], [1.0]])
    >>> y = np.array([0.0, 0.0, 1.0, 1.0])
    >>> _ = clf.fit(X, y)
    >>> bool(clf.predict_proba(np.array([[0.95]]))[0] > 0.5)
    True
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2_penalty: float = 1e-3,
        max_iterations: int = 2000,
        tolerance: float = 1e-7,
        class_weight: Optional[str] = "balanced",
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if l2_penalty < 0:
            raise ValueError(f"l2_penalty must be non-negative, got {l2_penalty}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if class_weight not in (None, "balanced"):
            raise ValueError(f"unsupported class_weight: {class_weight!r}")
        self.learning_rate = learning_rate
        self.l2_penalty = l2_penalty
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.class_weight = class_weight
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._standardizer: Optional[_Standardizer] = None
        self.n_iterations_: int = 0

    # -- training ---------------------------------------------------------

    def fit(
        self, features: np.ndarray, labels: np.ndarray
    ) -> "LogisticRegressionClassifier":
        """Fit the model on a dense feature matrix and binary label vector.

        Raises
        ------
        ValueError
            On shape mismatches, empty input or single-class labels.
        """
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-dimensional, got shape {features.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"feature rows ({features.shape[0]}) and labels ({labels.shape[0]}) differ"
            )
        if features.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        unique_labels = set(np.unique(labels).tolist())
        if not unique_labels.issubset({0.0, 1.0}):
            raise ValueError(f"labels must be binary (0/1), got {sorted(unique_labels)}")
        if len(unique_labels) < 2:
            raise ValueError("training data must contain both classes")

        self._standardizer = _Standardizer.fit(features)
        X = self._standardizer.transform(features)
        y = labels
        n_samples, n_features = X.shape

        sample_weights = np.ones(n_samples)
        if self.class_weight == "balanced":
            positive_fraction = y.mean()
            # weight(class) = n_samples / (2 * n_class)
            weight_positive = 0.5 / max(positive_fraction, 1e-12)
            weight_negative = 0.5 / max(1.0 - positive_fraction, 1e-12)
            sample_weights = np.where(y > 0.5, weight_positive, weight_negative)
        weight_total = sample_weights.sum()

        weights = np.zeros(n_features)
        bias = 0.0
        previous_loss = np.inf
        for iteration in range(1, self.max_iterations + 1):
            logits = X @ weights + bias
            probabilities = _sigmoid(logits)
            errors = probabilities - y

            gradient_w = (X.T @ (sample_weights * errors)) / weight_total
            gradient_w += self.l2_penalty * weights
            gradient_b = float((sample_weights * errors).sum() / weight_total)

            weights -= self.learning_rate * gradient_w
            bias -= self.learning_rate * gradient_b

            loss = self._loss(probabilities, y, sample_weights, weights, weight_total)
            if abs(previous_loss - loss) < self.tolerance:
                self.n_iterations_ = iteration
                break
            previous_loss = loss
        else:
            self.n_iterations_ = self.max_iterations

        self.weights = weights
        self.bias = bias
        return self

    def fit_dataset(self, dataset: LabeledDataset) -> "LogisticRegressionClassifier":
        """Fit directly from a :class:`~repro.learning.datasets.LabeledDataset`."""
        features, labels = dataset.to_arrays()
        return self.fit(features, labels)

    def _loss(
        self,
        probabilities: np.ndarray,
        labels: np.ndarray,
        sample_weights: np.ndarray,
        weights: np.ndarray,
        weight_total: float,
    ) -> float:
        eps = 1e-12
        log_likelihood = labels * np.log(probabilities + eps) + (1.0 - labels) * np.log(
            1.0 - probabilities + eps
        )
        data_term = -float((sample_weights * log_likelihood).sum() / weight_total)
        regulariser = 0.5 * self.l2_penalty * float(weights @ weights)
        return data_term + regulariser

    # -- inference --------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called successfully."""
        return self.weights is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("classifier has not been fitted yet")

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label=1) for each row of ``features``."""
        self._require_fitted()
        features = np.atleast_2d(np.asarray(features, dtype=float))
        assert self._standardizer is not None and self.weights is not None
        X = self._standardizer.transform(features)
        return _sigmoid(X @ self.weights + self.bias)

    def predict_proba_one(self, features: Sequence[float]) -> float:
        """P(label=1) for a single feature vector."""
        return float(self.predict_proba(np.asarray(features, dtype=float))[0])

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def coefficients(self) -> np.ndarray:
        """The learned weight vector (in standardised feature space)."""
        self._require_fitted()
        assert self.weights is not None
        return self.weights.copy()
