"""COMA++-style schema matchers (paper Figures 8 and 9, Appendix D).

COMA++ is a matcher-combination framework.  The configurations evaluated
in the paper are approximated with:

* **name-based** matching — the average of edit-distance similarity,
  character-trigram similarity and token-set similarity between attribute
  names;
* **instance-based** matching — the average of Jaccard term overlap and
  TF-IDF cosine similarity between the full value bags of the two
  attributes (no use of historical matches — COMA++ has no notion of
  them);
* **combined** — the average of the name and instance scores;
* the **δ candidate-selection knob** (Appendix D): per catalog attribute
  only the candidates whose score is within δ of the best candidate are
  retained.  ``delta=0.01`` reproduces COMA++'s default; ``delta=None``
  (∞) retains every pair ranked by score.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.candidates import CandidateTuple, generate_candidates
from repro.matching.correspondence import ScoredCandidate
from repro.matching.features import attribute_name_similarity
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.distributions import BagOfWords
from repro.text.setsim import cosine_similarity, jaccard_coefficient
from repro.text.normalize import normalize_attribute_name

__all__ = ["ComaConfiguration", "ComaStyleMatcher"]


class ComaConfiguration(enum.Enum):
    """Which matchers a :class:`ComaStyleMatcher` combines."""

    NAME = "name"
    INSTANCE = "instance"
    COMBINED = "combined"


class ComaStyleMatcher:
    """Name/instance/combined matcher with COMA++-style δ selection.

    Parameters
    ----------
    catalog:
        The product catalog.
    configuration:
        Which similarity signals to combine.
    delta:
        Per-catalog-attribute candidate-selection width; ``None`` means ∞
        (keep every candidate).  COMA++'s default is 0.01.
    """

    def __init__(
        self,
        catalog: Catalog,
        configuration: ComaConfiguration = ComaConfiguration.COMBINED,
        delta: Optional[float] = 0.01,
    ) -> None:
        if delta is not None and delta < 0:
            raise ValueError(f"delta must be non-negative or None, got {delta}")
        self.catalog = catalog
        self.configuration = configuration
        self.delta = delta

    # -- similarity components ------------------------------------------------------

    @staticmethod
    def name_similarity(catalog_attribute: str, offer_attribute: str) -> float:
        """Average of edit-distance, trigram and token similarities."""
        return attribute_name_similarity(catalog_attribute, offer_attribute)

    @staticmethod
    def instance_similarity(
        product_bag: Optional[BagOfWords], offer_bag: Optional[BagOfWords]
    ) -> float:
        """Average of Jaccard term overlap and TF cosine over value bags."""
        if not product_bag or not offer_bag:
            return 0.0
        jaccard = jaccard_coefficient(product_bag, offer_bag)
        cosine = cosine_similarity(product_bag.counts(), offer_bag.counts())
        return (jaccard + cosine) / 2.0

    # -- matching -----------------------------------------------------------------------

    def match(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> List[ScoredCandidate]:
        """Score candidates and apply the δ selection per catalog attribute."""
        offers = list(historical_offers)
        if extractor is not None:
            offers = [
                extractor.extract_offer(offer) if len(offer.specification) == 0 else offer
                for offer in offers
            ]
        candidates = generate_candidates(
            self.catalog, offers, matches, require_match=True, category_ids=category_ids
        )
        product_bags, offer_bags = self._build_bags(offers, matches, set(category_ids))

        scored: List[ScoredCandidate] = []
        for candidate in candidates:
            score = self._score(candidate, product_bags, offer_bags)
            scored.append(ScoredCandidate(candidate=candidate, score=score))
        return self._apply_delta(scored)

    def _score(
        self,
        candidate: CandidateTuple,
        product_bags: Dict[Tuple[str, str], BagOfWords],
        offer_bags: Dict[Tuple[str, str, str], BagOfWords],
    ) -> float:
        name_score = self.name_similarity(candidate.catalog_attribute, candidate.offer_attribute)
        if self.configuration is ComaConfiguration.NAME:
            return name_score
        product_bag = product_bags.get(
            (candidate.category_id, normalize_attribute_name(candidate.catalog_attribute))
        )
        offer_bag = offer_bags.get(
            (
                candidate.merchant_id,
                candidate.category_id,
                normalize_attribute_name(candidate.offer_attribute),
            )
        )
        instance_score = self.instance_similarity(product_bag, offer_bag)
        if self.configuration is ComaConfiguration.INSTANCE:
            return instance_score
        return (name_score + instance_score) / 2.0

    def _build_bags(
        self,
        offers: Sequence[Offer],
        matches: MatchStore,
        allowed: set,
    ) -> Tuple[Dict[Tuple[str, str], BagOfWords], Dict[Tuple[str, str, str], BagOfWords]]:
        # Product bags: all catalog products of the category (COMA++ does not
        # know about offer-to-product matches).
        product_bags: Dict[Tuple[str, str], BagOfWords] = {}
        for product in self.catalog.products():
            if allowed and product.category_id not in allowed:
                continue
            for pair in product.specification:
                key = (product.category_id, pair.normalized_name())
                product_bags.setdefault(key, BagOfWords()).add_value(pair.value)

        # Offer bags: values per (merchant, category, attribute).
        offer_bags: Dict[Tuple[str, str, str], BagOfWords] = {}
        for offer in offers:
            product_id = matches.product_for_offer(offer.offer_id)
            if product_id is None or not self.catalog.has_product(product_id):
                continue
            category_id = self.catalog.product(product_id).category_id
            if allowed and category_id not in allowed:
                continue
            for pair in offer.specification:
                key = (offer.merchant_id, category_id, pair.normalized_name())
                offer_bags.setdefault(key, BagOfWords()).add_value(pair.value)
        return product_bags, offer_bags

    # -- δ candidate selection ---------------------------------------------------------------

    def _apply_delta(self, scored: Sequence[ScoredCandidate]) -> List[ScoredCandidate]:
        if self.delta is None or math.isinf(self.delta):
            return list(scored)
        # Group by (merchant, category, catalog attribute) and keep only the
        # candidates within delta of the best score in each group.
        best: Dict[Tuple[str, str, str], float] = {}
        for item in scored:
            candidate = item.candidate
            key = (
                candidate.merchant_id,
                candidate.category_id,
                normalize_attribute_name(candidate.catalog_attribute),
            )
            if item.score > best.get(key, -math.inf):
                best[key] = item.score
        kept: List[ScoredCandidate] = []
        for item in scored:
            candidate = item.candidate
            key = (
                candidate.merchant_id,
                candidate.category_id,
                normalize_attribute_name(candidate.catalog_attribute),
            )
            if item.score >= best[key] - self.delta:
                kept.append(item)
        return kept
