"""The instance-based Naive Bayes matcher used by LSD (paper Appendix C).

For each category a multi-class Naive Bayes classifier is trained with the
catalog attribute names as classes and the catalog products' values as
training documents.  At matching time, every value ``v`` observed for a
merchant attribute ``B`` is classified; the score of the candidate
⟨A, B, M, C⟩ is the average posterior probability P(A | v) over all such
values.  Like LSD, the matcher uses learning but no distributional
similarity and no historical instance matches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.learning.naive_bayes import MultinomialNaiveBayes
from repro.matching.candidates import CandidateTuple
from repro.matching.correspondence import ScoredCandidate
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.tokenize import tokenize_value

__all__ = ["InstanceNaiveBayesMatcher"]


class InstanceNaiveBayesMatcher:
    """LSD-style instance-based Naive Bayes schema matcher."""

    def __init__(self, catalog: Catalog, alpha: float = 1.0) -> None:
        self.catalog = catalog
        self.alpha = alpha

    # -- training ------------------------------------------------------------------

    def _train_category_model(self, category_id: str) -> Optional[MultinomialNaiveBayes]:
        """Train the per-category classifier from the catalog's own products."""
        model = MultinomialNaiveBayes(alpha=self.alpha)
        num_documents = 0
        for product in self.catalog.products_in_category(category_id):
            for pair in product.specification:
                tokens = tokenize_value(pair.value)
                if not tokens:
                    continue
                model.update(pair.name, tokens)
                num_documents += 1
        if num_documents == 0:
            return None
        model.fit_finalize()
        return model

    # -- matching ----------------------------------------------------------------------

    def match(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> List[ScoredCandidate]:
        """Score every (catalog attribute, merchant attribute) pair per category."""
        offers = list(historical_offers)
        if extractor is not None:
            offers = [
                extractor.extract_offer(offer) if len(offer.specification) == 0 else offer
                for offer in offers
            ]
        allowed = set(category_ids)

        # Collect the values of every merchant attribute per (merchant, category).
        values_by_group: Dict[Tuple[str, str], Dict[str, List[str]]] = {}
        attribute_names: Dict[Tuple[str, str], Dict[str, str]] = {}
        for offer in offers:
            product_id = matches.product_for_offer(offer.offer_id)
            if product_id is None or not self.catalog.has_product(product_id):
                continue
            category_id = self.catalog.product(product_id).category_id
            if allowed and category_id not in allowed:
                continue
            group = (offer.merchant_id, category_id)
            group_values = values_by_group.setdefault(group, {})
            group_names = attribute_names.setdefault(group, {})
            for pair in offer.specification:
                key = pair.normalized_name()
                group_values.setdefault(key, []).append(pair.value)
                group_names.setdefault(key, pair.name)

        models: Dict[str, Optional[MultinomialNaiveBayes]] = {}
        scored: List[ScoredCandidate] = []
        for (merchant_id, category_id), group_values in sorted(values_by_group.items()):
            if category_id not in models:
                models[category_id] = self._train_category_model(category_id)
            model = models[category_id]
            if model is None:
                continue
            schema_attributes = self.catalog.schema_for(category_id).attribute_names()
            for normalized_offer_attribute, values in group_values.items():
                original_name = attribute_names[(merchant_id, category_id)][
                    normalized_offer_attribute
                ]
                posterior_sums: Dict[str, float] = {name: 0.0 for name in schema_attributes}
                evaluated = 0
                for value in values:
                    tokens = tokenize_value(value)
                    if not tokens:
                        continue
                    posterior = model.posterior(tokens)
                    evaluated += 1
                    for attribute_name in schema_attributes:
                        posterior_sums[attribute_name] += posterior.get(attribute_name, 0.0)
                if evaluated == 0:
                    continue
                for attribute_name in schema_attributes:
                    score = posterior_sums[attribute_name] / evaluated
                    candidate = CandidateTuple(
                        catalog_attribute=attribute_name,
                        offer_attribute=original_name,
                        merchant_id=merchant_id,
                        category_id=category_id,
                    )
                    scored.append(ScoredCandidate(candidate=candidate, score=score))
        return scored
