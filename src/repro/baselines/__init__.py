"""Baseline schema matchers the paper compares against (Section 5.2, Figures 6-9).

Every baseline consumes the same candidate space as the paper's approach
(:func:`repro.matching.candidates.generate_candidates`) and emits
:class:`~repro.matching.correspondence.ScoredCandidate` objects, so the
precision-vs-coverage evaluation treats all matchers uniformly.

* :class:`~repro.baselines.single_feature.SingleFeatureMatcher` — score a
  candidate by one raw distributional feature (JS-MC or Jaccard-MC),
  no classifier (Figure 6).
* :class:`~repro.baselines.no_history.NoHistoryMatcher` — the full
  classifier but with value bags that ignore the historical
  offer-to-product matches (Figure 7).
* :class:`~repro.baselines.dumas.DumasMatcher` — duplicate-based matching
  with SoftTFIDF similarity matrices and bipartite matching (Figure 8,
  Appendix C).
* :class:`~repro.baselines.lsd_naive_bayes.InstanceNaiveBayesMatcher` —
  the instance-based Naive Bayes matcher used by LSD (Figure 8, Appendix C).
* :class:`~repro.baselines.coma.ComaStyleMatcher` — COMA++-style name,
  instance and combined matchers with the δ candidate-selection knob
  (Figures 8 and 9, Appendix D).
"""

from repro.baselines.coma import ComaConfiguration, ComaStyleMatcher
from repro.baselines.dumas import DumasMatcher
from repro.baselines.lsd_naive_bayes import InstanceNaiveBayesMatcher
from repro.baselines.no_history import NoHistoryMatcher
from repro.baselines.single_feature import SingleFeatureMatcher

__all__ = [
    "ComaConfiguration",
    "ComaStyleMatcher",
    "DumasMatcher",
    "InstanceNaiveBayesMatcher",
    "NoHistoryMatcher",
    "SingleFeatureMatcher",
]
