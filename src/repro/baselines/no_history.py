"""The no-historical-matching baseline of Figure 7.

"The baseline uses the same similarity measures (Jaccard and JS
divergence) as our approach, but instead of considering only products that
match to offers, it takes into account all products in a given category C
and all offers associated with C."

Implementation-wise this is the full :class:`~repro.matching.learner.OfflineLearner`
with ``use_matches=False``: the candidate space, training-set construction
and classifier are identical — only the value bags change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.correspondence import ScoredCandidate
from repro.matching.learner import OfflineLearner
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer

__all__ = ["NoHistoryMatcher"]


class NoHistoryMatcher:
    """Distributional matcher whose value bags ignore instance matches."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def match(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> List[ScoredCandidate]:
        """Score every candidate tuple without match-restricted value bags."""
        learner = OfflineLearner(self.catalog, use_matches=False)
        result = learner.learn(
            historical_offers, matches, extractor=extractor, category_ids=category_ids
        )
        return result.scored_candidates
