"""Single-feature baselines of Figure 6.

The paper compares its classifier against "baselines where a single
similarity measure is used to score the candidate correspondences (thus no
classifier is needed)": JS-MC alone and Jaccard-MC alone.  Both still use
the match-aware value bags — what they lack is the combination of multiple
aggregation levels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.candidates import generate_candidates
from repro.matching.correspondence import ScoredCandidate
from repro.matching.features import FEATURE_NAMES, DistributionalFeatureExtractor
from repro.matching.grouping import MatchedValueIndex
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer

__all__ = ["SingleFeatureMatcher"]


class SingleFeatureMatcher:
    """Score candidates by one raw distributional-similarity feature.

    Parameters
    ----------
    catalog:
        The product catalog.
    feature_name:
        One of the six feature names of paper Table 1 (the paper's
        Figure 6 uses ``"JS-MC"`` and ``"Jaccard-MC"``).
    """

    def __init__(self, catalog: Catalog, feature_name: str = "JS-MC") -> None:
        if feature_name not in FEATURE_NAMES:
            raise ValueError(
                f"unknown feature {feature_name!r}; expected one of {FEATURE_NAMES}"
            )
        self.catalog = catalog
        self.feature_name = feature_name

    def match(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> List[ScoredCandidate]:
        """Score every candidate tuple by the configured feature."""
        offers = list(historical_offers)
        if extractor is not None:
            offers = [
                extractor.extract_offer(offer) if len(offer.specification) == 0 else offer
                for offer in offers
            ]
        index = MatchedValueIndex(self.catalog, offers, matches, use_matches=True)
        feature_extractor = DistributionalFeatureExtractor(index, (self.feature_name,))
        candidates = generate_candidates(
            self.catalog, offers, matches, require_match=True, category_ids=category_ids
        )
        scored: List[ScoredCandidate] = []
        for candidate in candidates:
            value = feature_extractor.extract(candidate)[0]
            scored.append(ScoredCandidate(candidate=candidate, score=value))
        return scored
