"""DUMAS-style duplicate-based schema matching (paper Appendix C).

Bilke & Naumann's DUMAS leverages known duplicate records (here: the
historical offer-to-product matches) to discover attribute
correspondences:

1. For each matched product/offer pair of merchant M in category C,
   compute an ``m x n`` similarity matrix ``S_k`` between the product's
   field values and the offer's field values using SoftTFIDF.
2. Average the matrices of all matched pairs of M (per category) into
   ``S_M``.
3. Solve a bipartite weighted matching over ``S_M``; each matched cell
   becomes a candidate correspondence scored by its averaged similarity.

Unlike the paper's approach, DUMAS is not classification-based and does
not use distributional similarity — it compares the *aligned values of
individual duplicates* rather than value distributions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.learning.matching_lp import max_weight_bipartite_matching
from repro.matching.candidates import CandidateTuple
from repro.matching.correspondence import ScoredCandidate
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.tfidf import SoftTfIdf

__all__ = ["DumasMatcher"]


class DumasMatcher:
    """Duplicate-based matcher with SoftTFIDF value similarity.

    Parameters
    ----------
    catalog:
        The product catalog.
    soft_tfidf_threshold:
        Inner Jaro-Winkler threshold of the SoftTFIDF measure.
    min_score:
        Matched cells with an averaged similarity at or below this value
        are not reported as correspondences.
    """

    def __init__(
        self,
        catalog: Catalog,
        soft_tfidf_threshold: float = 0.9,
        min_score: float = 0.0,
    ) -> None:
        self.catalog = catalog
        self.soft_tfidf_threshold = soft_tfidf_threshold
        self.min_score = min_score

    # -- public API -------------------------------------------------------------

    def match(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> List[ScoredCandidate]:
        """Produce scored correspondences for every (merchant, category) group."""
        offers = list(historical_offers)
        if extractor is not None:
            offers = [
                extractor.extract_offer(offer) if len(offer.specification) == 0 else offer
                for offer in offers
            ]
        allowed = set(category_ids)

        # Group matched (product, offer) pairs by (merchant, category).
        pairs_by_group: Dict[Tuple[str, str], List[Tuple[str, Offer]]] = {}
        corpus_values: List[str] = []
        for offer in offers:
            product_id = matches.product_for_offer(offer.offer_id)
            if product_id is None or not self.catalog.has_product(product_id):
                continue
            product = self.catalog.product(product_id)
            if allowed and product.category_id not in allowed:
                continue
            pairs_by_group.setdefault((offer.merchant_id, product.category_id), []).append(
                (product_id, offer)
            )
            corpus_values.extend(pair.value for pair in offer.specification)
            corpus_values.extend(pair.value for pair in product.specification)

        soft_tfidf = SoftTfIdf(corpus_values, threshold=self.soft_tfidf_threshold)
        similarity_cache: Dict[Tuple[str, str], float] = {}

        def cached_similarity(value_a: str, value_b: str) -> float:
            """Memoised SoftTfIdf similarity between two attribute values."""
            key = (value_a, value_b)
            cached = similarity_cache.get(key)
            if cached is None:
                cached = soft_tfidf.similarity(value_a, value_b)
                similarity_cache[key] = cached
            return cached

        scored: List[ScoredCandidate] = []
        for (merchant_id, category_id), pairs in sorted(pairs_by_group.items()):
            scored.extend(
                self._match_group(
                    merchant_id, category_id, pairs, cached_similarity
                )
            )
        return scored

    # -- per-group matching --------------------------------------------------------

    def _match_group(
        self,
        merchant_id: str,
        category_id: str,
        pairs: List[Tuple[str, Offer]],
        similarity,
    ) -> List[ScoredCandidate]:
        schema = self.catalog.schema_for(category_id)
        catalog_attributes = schema.attribute_names()
        # Merchant attribute names observed in this group (original casing kept).
        offer_attribute_names: Dict[str, str] = {}
        for _, offer in pairs:
            for pair in offer.specification:
                offer_attribute_names.setdefault(pair.normalized_name(), pair.name)
        offer_attributes = list(offer_attribute_names.values())
        if not catalog_attributes or not offer_attributes:
            return []

        accumulated = np.zeros((len(catalog_attributes), len(offer_attributes)))
        for product_id, offer in pairs:
            product = self.catalog.product(product_id)
            for row, catalog_attribute in enumerate(catalog_attributes):
                product_value = product.get(catalog_attribute)
                if not product_value:
                    continue
                for column, offer_attribute in enumerate(offer_attributes):
                    offer_value = offer.get(offer_attribute)
                    if not offer_value:
                        continue
                    accumulated[row, column] += similarity(product_value, offer_value)
        averaged = accumulated / max(len(pairs), 1)

        matching = max_weight_bipartite_matching(averaged, min_weight=self.min_score)
        scored: List[ScoredCandidate] = []
        for row, column, weight in matching:
            candidate = CandidateTuple(
                catalog_attribute=catalog_attributes[row],
                offer_attribute=offer_attributes[column],
                merchant_id=merchant_id,
                category_id=category_id,
            )
            scored.append(ScoredCandidate(candidate=candidate, score=float(weight)))
        return scored
