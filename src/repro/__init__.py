"""repro — a reproduction of "Synthesizing Products for Online Catalogs".

Nguyen, Fuxman, Paparizos, Freire and Agrawal, PVLDB 4(7), 2011.

The package implements the paper's end-to-end product-synthesis system —
offline learning of attribute correspondences from historical
offer-to-product matches, plus the run-time pipeline (web-page attribute
extraction, schema reconciliation, clustering, value fusion) — together
with every substrate it needs (a synthetic shopping corpus standing in for
the Bing Shopping data, an HTML extraction stack, ML primitives) and every
baseline the paper compares against (single-feature scorers, a no-history
variant, DUMAS, the LSD instance-based Naive Bayes matcher, and
COMA++-style matchers).

Quickstart
----------
>>> from repro import synthesize_catalog
>>> from repro.corpus import CorpusPreset
>>> outcome = synthesize_catalog(preset=CorpusPreset.TINY)
>>> outcome.evaluation.attribute_precision > 0.5
True
"""

from dataclasses import dataclass

from repro.corpus.config import CorpusConfig, CorpusPreset
from repro.corpus.generator import CorpusGenerator, SyntheticCorpus
from repro.evaluation.oracle import EvaluationOracle, SynthesisEvaluation
from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.learner import OfflineLearner, OfflineLearningResult
from repro.model import Catalog, Offer, Product
from repro.runtime import EngineSnapshot, IngestReport, SynthesisEngine
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.pipeline import ProductSynthesisPipeline, SynthesisResult

__version__ = "1.1.0"

__all__ = [
    "CorpusConfig",
    "CorpusPreset",
    "CorpusGenerator",
    "SyntheticCorpus",
    "EvaluationOracle",
    "SynthesisEvaluation",
    "WebPageAttributeExtractor",
    "OfflineLearner",
    "OfflineLearningResult",
    "Catalog",
    "Offer",
    "Product",
    "TitleCategoryClassifier",
    "ProductSynthesisPipeline",
    "SynthesisResult",
    "SynthesisEngine",
    "IngestReport",
    "EngineSnapshot",
    "SynthesisOutcome",
    "synthesize_catalog",
    "__version__",
]


@dataclass
class SynthesisOutcome:
    """Everything produced by :func:`synthesize_catalog`."""

    corpus: SyntheticCorpus
    offline: OfflineLearningResult
    synthesis: SynthesisResult
    evaluation: SynthesisEvaluation


def synthesize_catalog(
    preset: CorpusPreset = CorpusPreset.SMALL, seed: int = 2011
) -> SynthesisOutcome:
    """Run the whole reproduction end to end on a synthetic corpus.

    Generates a corpus, learns attribute correspondences from the
    historical matches, synthesizes products from the unmatched offers and
    evaluates them against the generator's ground truth.  This is the
    one-call entry point used by the quickstart example; the individual
    components are available for finer-grained use.
    """
    corpus = CorpusGenerator(preset.config(seed=seed)).generate()
    extractor = WebPageAttributeExtractor(corpus.web)

    historical, _ = extractor.extract_offers(corpus.matched_offers())
    offline = OfflineLearner(corpus.catalog).learn(historical, corpus.matches)

    classifier = TitleCategoryClassifier().train_from_history(
        corpus.catalog, historical, corpus.matches
    )
    pipeline = ProductSynthesisPipeline(
        catalog=corpus.catalog,
        correspondences=offline.correspondences,
        extractor=extractor,
        category_classifier=classifier,
    )
    synthesis = pipeline.synthesize(corpus.unmatched_offers())

    oracle = EvaluationOracle(
        corpus.ground_truth,
        taxonomy=corpus.catalog.taxonomy,
        offer_merchants={offer.offer_id: offer.merchant_id for offer in corpus.offers},
    )
    evaluation = oracle.evaluate_products(synthesis.products)
    return SynthesisOutcome(
        corpus=corpus, offline=offline, synthesis=synthesis, evaluation=evaluation
    )
