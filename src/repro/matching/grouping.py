"""Match-aware value bags at three grouping granularities.

Paper Section 3.1: the distinctive aspect of the approach is that value
distributions are computed **only from offers and products that match to
each other**, and at three levels of aggregation:

* *merchant and category* (MC): offers of merchant M in category C, and
  the catalog products matched to those offers;
* *category* (C): all offers in category C (any merchant), and the
  products matched to them;
* *merchant* (M): all offers of merchant M (any category), and the
  products matched to them.

:class:`MatchedValueIndex` materialises the value bags for all three
levels in a single pass over the historical offers, so that feature
extraction is a dictionary lookup per candidate.

Setting ``use_matches=False`` builds the "no matching" variant used as a
baseline in Figure 7: offer bags still come from the offers of the group,
but product bags come from **all** catalog products of the category
(regardless of whether they match any offer).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.model.attributes import Specification
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.distributions import BagOfWords
from repro.text.normalize import normalize_attribute_name

__all__ = ["MatchedValueIndex", "GroupKey"]

#: Keys of the three grouping levels.
GroupKey = Tuple[str, ...]

MC = "merchant-category"
C = "category"
M = "merchant"

GROUPINGS: Tuple[str, ...] = (MC, C, M)


class MatchedValueIndex:
    """Value bags for catalog and offer attributes at MC / C / M granularity.

    Parameters
    ----------
    catalog:
        The product catalog (supplies product specifications and schemas).
    offers:
        Historical offers *with extracted specifications*.
    matches:
        Historical offer-to-product matches.
    use_matches:
        When true (the paper's approach) product bags contain only the
        products matched to the group's offers.  When false (the Figure 7
        baseline) product bags contain every catalog product of the
        category/merchant group.
    """

    def __init__(
        self,
        catalog: Catalog,
        offers: Iterable[Offer],
        matches: MatchStore,
        use_matches: bool = True,
    ) -> None:
        self._catalog = catalog
        self._use_matches = use_matches
        # (grouping, group key, normalised attribute name) -> bag
        self._offer_bags: Dict[Tuple[str, GroupKey, str], BagOfWords] = {}
        self._product_bags: Dict[Tuple[str, GroupKey, str], BagOfWords] = {}
        # (grouping, group key) -> product ids contributing to the group
        self._group_products: Dict[Tuple[str, GroupKey], Set[str]] = {}
        self._num_offers_indexed = 0
        self._build(offers, matches)

    # -- construction -------------------------------------------------------

    def _build(self, offers: Iterable[Offer], matches: MatchStore) -> None:
        for offer in offers:
            product_id = matches.product_for_offer(offer.offer_id)
            if self._use_matches:
                if product_id is None or not self._catalog.has_product(product_id):
                    continue
                category_id = self._catalog.product(product_id).category_id
            else:
                # Without instance matches we still need a category for the
                # offer; fall back to the matched product's category when the
                # offer itself does not carry one so both configurations see
                # the same offers.
                category_id = offer.category_id
                if (
                    category_id is None
                    and product_id is not None
                    and self._catalog.has_product(product_id)
                ):
                    category_id = self._catalog.product(product_id).category_id
                if category_id is None:
                    continue
            self._num_offers_indexed += 1
            groups = self._groups_for(offer.merchant_id, category_id)
            self._index_offer_specification(groups, offer.specification)
            if self._use_matches and product_id is not None:
                for group in groups:
                    self._group_products.setdefault(group, set()).add(product_id)
            elif not self._use_matches:
                # The no-matching baseline pools *all* catalog products of
                # the category into the group.
                category_product_ids = [
                    product.product_id
                    for product in self._catalog.products_in_category(category_id)
                ]
                for group in groups:
                    self._group_products.setdefault(group, set()).update(category_product_ids)

        # Second pass: accumulate product-side bags per group.
        for group, product_ids in self._group_products.items():
            grouping, key = group
            for product_id in product_ids:
                product = self._catalog.product(product_id)
                self._index_product_specification(grouping, key, product.specification)

    @staticmethod
    def _groups_for(merchant_id: str, category_id: str) -> List[Tuple[str, GroupKey]]:
        return [
            (MC, (merchant_id, category_id)),
            (C, (category_id,)),
            (M, (merchant_id,)),
        ]

    def _index_offer_specification(
        self, groups: List[Tuple[str, GroupKey]], specification: Specification
    ) -> None:
        for pair in specification:
            name = pair.normalized_name()
            for grouping, key in groups:
                bag = self._offer_bags.setdefault((grouping, key, name), BagOfWords())
                bag.add_value(pair.value)

    def _index_product_specification(
        self, grouping: str, key: GroupKey, specification: Specification
    ) -> None:
        for pair in specification:
            name = pair.normalized_name()
            bag = self._product_bags.setdefault((grouping, key, name), BagOfWords())
            bag.add_value(pair.value)

    # -- lookups --------------------------------------------------------------

    @property
    def num_offers_indexed(self) -> int:
        """Number of historical offers that contributed to the index."""
        return self._num_offers_indexed

    def offer_bag(
        self, grouping: str, merchant_id: str, category_id: str, attribute: str
    ) -> Optional[BagOfWords]:
        """The offer-side value bag for an attribute at the given grouping."""
        key = self._key_for(grouping, merchant_id, category_id)
        return self._offer_bags.get((grouping, key, normalize_attribute_name(attribute)))

    def product_bag(
        self, grouping: str, merchant_id: str, category_id: str, attribute: str
    ) -> Optional[BagOfWords]:
        """The product-side value bag for an attribute at the given grouping."""
        key = self._key_for(grouping, merchant_id, category_id)
        return self._product_bags.get((grouping, key, normalize_attribute_name(attribute)))

    def matched_products_in_group(
        self, grouping: str, merchant_id: str, category_id: str
    ) -> Set[str]:
        """Ids of the products contributing to a group's product bags."""
        key = self._key_for(grouping, merchant_id, category_id)
        return set(self._group_products.get((grouping, key), set()))

    @staticmethod
    def _key_for(grouping: str, merchant_id: str, category_id: str) -> GroupKey:
        if grouping == MC:
            return (merchant_id, category_id)
        if grouping == C:
            return (category_id,)
        if grouping == M:
            return (merchant_id,)
        raise ValueError(f"unknown grouping: {grouping!r}")
