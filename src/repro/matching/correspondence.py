"""Attribute correspondences and the lookup structure used at run time."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.matching.candidates import CandidateTuple
from repro.text.memo import cached_normalize_attribute_name

__all__ = ["ScoredCandidate", "AttributeCorrespondence", "CorrespondenceSet"]


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate tuple with the score assigned by a matcher.

    All matchers in the reproduction — the paper's classifier as well as
    every baseline — emit scored candidates, so the precision-vs-coverage
    evaluation (paper Section 5.2) treats them uniformly.
    """

    candidate: CandidateTuple
    score: float

    def is_name_identity(self) -> bool:
        """Whether the underlying candidate is a name-identity tuple."""
        return self.candidate.is_name_identity()


@dataclass(frozen=True)
class AttributeCorrespondence:
    """An accepted correspondence ⟨A_p, A_o, M, C⟩ with its score."""

    catalog_attribute: str
    offer_attribute: str
    merchant_id: str
    category_id: str
    score: float = 1.0

    @classmethod
    def from_candidate(cls, candidate: CandidateTuple, score: float) -> "AttributeCorrespondence":
        """Build a correspondence from a scored candidate tuple."""
        return cls(
            catalog_attribute=candidate.catalog_attribute,
            offer_attribute=candidate.offer_attribute,
            merchant_id=candidate.merchant_id,
            category_id=candidate.category_id,
            score=score,
        )


class CorrespondenceSet:
    """Indexed set of correspondences used by schema reconciliation.

    For each (merchant, category, merchant attribute) at most one catalog
    attribute is stored — when several correspondences compete, the one
    with the highest score wins (a merchant uses one name for one meaning,
    paper Section 3.2).

    Examples
    --------
    >>> corr = AttributeCorrespondence("Capacity", "Hard Disk Size", "m1", "hdd", 0.9)
    >>> cs = CorrespondenceSet([corr])
    >>> cs.translate("m1", "hdd", "Hard Disk Size")
    'Capacity'
    """

    def __init__(self, correspondences: Iterable[AttributeCorrespondence] = ()) -> None:
        self._by_offer_attribute: Dict[Tuple[str, str, str], AttributeCorrespondence] = {}
        self._all: List[AttributeCorrespondence] = []
        for correspondence in correspondences:
            self.add(correspondence)

    # -- construction -----------------------------------------------------------

    def add(self, correspondence: AttributeCorrespondence) -> None:
        """Add a correspondence, keeping only the best one per merchant attribute."""
        key = self._key(
            correspondence.merchant_id,
            correspondence.category_id,
            correspondence.offer_attribute,
        )
        existing = self._by_offer_attribute.get(key)
        if existing is None or correspondence.score > existing.score:
            self._by_offer_attribute[key] = correspondence
        self._all.append(correspondence)

    @staticmethod
    def _key(merchant_id: str, category_id: str, offer_attribute: str) -> Tuple[str, str, str]:
        # Translation runs once per extracted pair on the hot ingest path;
        # attribute names repeat heavily, so normalisation is memoised.
        return (merchant_id, category_id, cached_normalize_attribute_name(offer_attribute))

    # -- lookups ------------------------------------------------------------------

    def translate(
        self, merchant_id: str, category_id: str, offer_attribute: str
    ) -> Optional[str]:
        """The catalog attribute an offer attribute maps to, or ``None``.

        ``None`` means the attribute-value pair should be discarded by
        schema reconciliation (paper Section 4).
        """
        correspondence = self._by_offer_attribute.get(
            self._key(merchant_id, category_id, offer_attribute)
        )
        return correspondence.catalog_attribute if correspondence else None

    def mapping_for(self, merchant_id: str, category_id: str) -> Dict[str, str]:
        """``merchant attribute -> catalog attribute`` for one merchant/category."""
        mapping: Dict[str, str] = {}
        for (m_id, c_id, _), correspondence in self._by_offer_attribute.items():
            if m_id == merchant_id and c_id == category_id:
                mapping[correspondence.offer_attribute] = correspondence.catalog_attribute
        return mapping

    def correspondences(self) -> List[AttributeCorrespondence]:
        """All accepted correspondences (after best-per-attribute resolution)."""
        return list(self._by_offer_attribute.values())

    def all_added(self) -> List[AttributeCorrespondence]:
        """Every correspondence ever added (before per-attribute resolution)."""
        return list(self._all)

    def __len__(self) -> int:
        return len(self._by_offer_attribute)

    def __iter__(self) -> Iterator[AttributeCorrespondence]:
        return iter(self._by_offer_attribute.values())
