"""The six distributional-similarity features of paper Table 1.

=============  ==================  =======================
Name           Similarity measure  Grouping
=============  ==================  =======================
JS-MC          Jensen-Shannon      Merchant and Category
JS-C           Jensen-Shannon      Category
JS-M           Jensen-Shannon      Merchant
Jaccard-MC     Jaccard             Merchant and Category
Jaccard-C      Jaccard             Category
Jaccard-M      Jaccard             Merchant
=============  ==================  =======================

JS features are reported as *similarities* (``1 - divergence``) so that
all six features point in the same direction (higher = more likely a
correspondence), which keeps the learned classifier weights easy to
interpret.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.matching.candidates import CandidateTuple
from repro.matching.grouping import C, M, MC, MatchedValueIndex
from repro.text.divergence import jensen_shannon_similarity
from repro.text.normalize import normalize_attribute_name
from repro.text.setsim import jaccard_coefficient
from repro.text.string_metrics import (
    levenshtein_similarity,
    ngram_similarity,
    token_set_similarity,
)

__all__ = [
    "FEATURE_NAMES",
    "EXTENDED_FEATURE_NAMES",
    "NAME_FEATURE",
    "DistributionalFeatureExtractor",
    "attribute_name_similarity",
]

#: Feature order used everywhere (training set columns, classifier weights).
FEATURE_NAMES: Tuple[str, ...] = (
    "JS-MC",
    "JS-C",
    "JS-M",
    "Jaccard-MC",
    "Jaccard-C",
    "Jaccard-M",
)

#: The attribute-name similarity feature implementing the paper's stated
#: future work ("We would also like to integrate other matchers with our
#: framework, notably, name matchers").  It is not part of the default
#: feature set so the headline experiments stay faithful to the paper.
NAME_FEATURE = "Name"

#: Table 1 features plus the name-matcher extension.
EXTENDED_FEATURE_NAMES: Tuple[str, ...] = FEATURE_NAMES + (NAME_FEATURE,)

_GROUPING_OF_FEATURE: Dict[str, str] = {
    "JS-MC": MC,
    "JS-C": C,
    "JS-M": M,
    "Jaccard-MC": MC,
    "Jaccard-C": C,
    "Jaccard-M": M,
}


def attribute_name_similarity(catalog_attribute: str, offer_attribute: str) -> float:
    """Linguistic similarity between two attribute names, in [0, 1].

    The average of edit-distance similarity, character-trigram similarity
    and token-set overlap — the classic name-matcher combination.  Used by
    the extended (future-work) feature set and by the COMA++-style
    baseline.
    """
    name_a = normalize_attribute_name(catalog_attribute)
    name_b = normalize_attribute_name(offer_attribute)
    return (
        levenshtein_similarity(name_a, name_b)
        + ngram_similarity(name_a, name_b, n=3)
        + token_set_similarity(catalog_attribute, offer_attribute)
    ) / 3.0


class DistributionalFeatureExtractor:
    """Compute the Table 1 feature vector for candidate tuples.

    Parameters
    ----------
    index:
        The match-aware value bags (see
        :class:`~repro.matching.grouping.MatchedValueIndex`).
    feature_names:
        Subset/order of features to compute; defaults to all six.  The
        single-feature baselines of Figure 6 pass ``("JS-MC",)`` or
        ``("Jaccard-MC",)``.
    """

    def __init__(
        self,
        index: MatchedValueIndex,
        feature_names: Sequence[str] = FEATURE_NAMES,
    ) -> None:
        unknown = [
            name
            for name in feature_names
            if name not in _GROUPING_OF_FEATURE and name != NAME_FEATURE
        ]
        if unknown:
            raise ValueError(f"unknown feature names: {unknown!r}")
        if not feature_names:
            raise ValueError("at least one feature name is required")
        self._index = index
        self._feature_names = tuple(feature_names)

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """The features computed by :meth:`extract`, in order."""
        return self._feature_names

    # -- feature computation ---------------------------------------------------

    def extract(self, candidate: CandidateTuple) -> List[float]:
        """The feature vector of one candidate tuple."""
        return [self._feature_value(name, candidate) for name in self._feature_names]

    def extract_many(self, candidates: Sequence[CandidateTuple]) -> List[List[float]]:
        """Feature vectors for a batch of candidates (same order)."""
        return [self.extract(candidate) for candidate in candidates]

    def _feature_value(self, feature_name: str, candidate: CandidateTuple) -> float:
        if feature_name == NAME_FEATURE:
            return attribute_name_similarity(
                candidate.catalog_attribute, candidate.offer_attribute
            )
        grouping = _GROUPING_OF_FEATURE[feature_name]
        product_bag = self._index.product_bag(
            grouping, candidate.merchant_id, candidate.category_id, candidate.catalog_attribute
        )
        offer_bag = self._index.offer_bag(
            grouping, candidate.merchant_id, candidate.category_id, candidate.offer_attribute
        )
        if not product_bag or not offer_bag:
            return 0.0
        if feature_name.startswith("JS"):
            return jensen_shannon_similarity(product_bag, offer_bag)
        return jaccard_coefficient(product_bag, offer_bag)
