"""The Offline Learning phase end-to-end (paper Figure 4, left half).

:class:`OfflineLearner` wires together web-page attribute extraction for
historical offers, the match-aware value index, candidate generation, the
automatically constructed training set, the logistic-regression
classifier, and finally emits the scored candidates and the accepted
:class:`~repro.matching.correspondence.CorrespondenceSet` used by schema
reconciliation at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.learning.datasets import LabeledDataset
from repro.learning.logistic import LogisticRegressionClassifier
from repro.matching.candidates import CandidateTuple, generate_candidates
from repro.matching.correspondence import (
    AttributeCorrespondence,
    CorrespondenceSet,
    ScoredCandidate,
)
from repro.matching.features import FEATURE_NAMES, DistributionalFeatureExtractor
from repro.matching.grouping import MatchedValueIndex
from repro.matching.training import build_training_set
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer

__all__ = ["OfflineLearningResult", "OfflineLearner"]


@dataclass
class OfflineLearningResult:
    """Everything produced by one offline-learning run."""

    #: Every candidate with its classifier score.
    scored_candidates: List[ScoredCandidate]
    #: Correspondences accepted at the configured threshold.
    correspondences: CorrespondenceSet
    #: The automatically constructed training set.
    training_set: LabeledDataset
    #: The trained classifier (``None`` when the training set was degenerate).
    classifier: Optional[LogisticRegressionClassifier]
    #: The value index (kept for inspection and ablations).
    index: MatchedValueIndex

    def num_candidates(self) -> int:
        """Number of candidate tuples scored."""
        return len(self.scored_candidates)

    def num_accepted(self) -> int:
        """Number of accepted correspondences."""
        return len(self.correspondences)

    def candidates_above(self, threshold: float) -> List[ScoredCandidate]:
        """Scored candidates with score strictly greater than ``threshold``."""
        return [sc for sc in self.scored_candidates if sc.score > threshold]


class OfflineLearner:
    """Learn attribute correspondences from historical offer-product matches.

    Parameters
    ----------
    catalog:
        The product catalog.
    acceptance_threshold:
        Classifier score above which a candidate becomes a correspondence.
    feature_names:
        Features to use (defaults to all six of paper Table 1); the
        single-feature baselines of Figure 6 pass a single name.
    use_matches:
        When false, value bags ignore the historical matches (the Figure 7
        baseline).
    include_identity_correspondences:
        Whether name-identity candidates are always accepted as
        correspondences (the paper's first training-set assumption).
    max_training_examples:
        Optional cap on the automatically labelled training set size.
    """

    def __init__(
        self,
        catalog: Catalog,
        acceptance_threshold: float = 0.5,
        feature_names: Sequence[str] = FEATURE_NAMES,
        use_matches: bool = True,
        include_identity_correspondences: bool = True,
        max_training_examples: Optional[int] = None,
        classifier_factory=None,
    ) -> None:
        if not 0.0 <= acceptance_threshold <= 1.0:
            raise ValueError(
                f"acceptance_threshold must be within [0, 1], got {acceptance_threshold}"
            )
        self.catalog = catalog
        self.acceptance_threshold = acceptance_threshold
        self.feature_names = tuple(feature_names)
        self.use_matches = use_matches
        self.include_identity_correspondences = include_identity_correspondences
        self.max_training_examples = max_training_examples
        self._classifier_factory = classifier_factory or LogisticRegressionClassifier

    # -- main entry point --------------------------------------------------------

    def learn(
        self,
        historical_offers: Sequence[Offer],
        matches: MatchStore,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_ids: Sequence[str] = (),
    ) -> OfflineLearningResult:
        """Run the full offline-learning phase.

        Parameters
        ----------
        historical_offers:
            Offers with historical matches.  If ``extractor`` is given and
            an offer has an empty specification, the specification is
            extracted from its landing page first.
        matches:
            The historical offer-to-product matches.
        extractor:
            Optional web-page attribute extractor used to fill in missing
            offer specifications.
        category_ids:
            Optional restriction to a subset of categories.
        """
        offers = self._ensure_specifications(historical_offers, extractor)
        index = MatchedValueIndex(
            self.catalog, offers, matches, use_matches=self.use_matches
        )
        feature_extractor = DistributionalFeatureExtractor(index, self.feature_names)
        candidates = generate_candidates(
            self.catalog, offers, matches, require_match=True, category_ids=category_ids
        )
        training_set = build_training_set(
            candidates, feature_extractor, max_examples=self.max_training_examples
        )
        classifier = self._train(training_set)
        scored = self._score_candidates(candidates, feature_extractor, classifier)
        correspondences = self._accept(scored)
        return OfflineLearningResult(
            scored_candidates=scored,
            correspondences=correspondences,
            training_set=training_set,
            classifier=classifier,
            index=index,
        )

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _ensure_specifications(
        offers: Sequence[Offer], extractor: Optional[WebPageAttributeExtractor]
    ) -> List[Offer]:
        if extractor is None:
            return list(offers)
        enriched: List[Offer] = []
        for offer in offers:
            if len(offer.specification) == 0:
                enriched.append(extractor.extract_offer(offer))
            else:
                enriched.append(offer)
        return enriched

    def _train(self, training_set: LabeledDataset) -> Optional[LogisticRegressionClassifier]:
        if len(training_set) == 0 or training_set.is_degenerate():
            return None
        classifier = self._classifier_factory()
        classifier.fit_dataset(training_set)
        return classifier

    def _score_candidates(
        self,
        candidates: Sequence[CandidateTuple],
        feature_extractor: DistributionalFeatureExtractor,
        classifier: Optional[LogisticRegressionClassifier],
    ) -> List[ScoredCandidate]:
        if not candidates:
            return []
        features = np.asarray(feature_extractor.extract_many(list(candidates)), dtype=float)
        if classifier is not None:
            scores = classifier.predict_proba(features)
        else:
            # Degenerate training set: fall back to the mean of the features,
            # which keeps the pipeline usable on tiny corpora.
            scores = features.mean(axis=1)
        return [
            ScoredCandidate(candidate=candidate, score=float(score))
            for candidate, score in zip(candidates, scores)
        ]

    def _accept(self, scored: Sequence[ScoredCandidate]) -> CorrespondenceSet:
        correspondences = CorrespondenceSet()
        for scored_candidate in scored:
            candidate = scored_candidate.candidate
            if self.include_identity_correspondences and candidate.is_name_identity():
                correspondences.add(AttributeCorrespondence.from_candidate(candidate, 1.0))
                continue
            if scored_candidate.score > self.acceptance_threshold:
                correspondences.add(
                    AttributeCorrespondence.from_candidate(candidate, scored_candidate.score)
                )
        return correspondences
