"""Candidate attribute-correspondence tuples ⟨A_p, A_o, M, C⟩.

Paper Definition 1: an attribute correspondence relates a catalog
attribute A_p of category C to an attribute A_o used by merchant M in its
offers for category C.  Candidates are the cross product of the catalog
schema attributes of C with the merchant attribute names observed in M's
(historically matched) offers for C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.model.catalog import Catalog
from repro.model.matches import MatchStore
from repro.model.offers import Offer
from repro.text.normalize import normalize_attribute_name

__all__ = ["CandidateTuple", "generate_candidates", "observed_merchant_attributes"]


@dataclass(frozen=True)
class CandidateTuple:
    """A candidate correspondence ⟨catalog attribute, offer attribute, merchant, category⟩."""

    catalog_attribute: str
    offer_attribute: str
    merchant_id: str
    category_id: str

    def is_name_identity(self) -> bool:
        """Whether the catalog and merchant attribute names are identical.

        Name-identity candidates are the seed of the automatically
        constructed training set (paper Section 3.2).
        """
        return normalize_attribute_name(self.catalog_attribute) == normalize_attribute_name(
            self.offer_attribute
        )

    def key(self) -> Tuple[str, str, str, str]:
        """A normalised identity key for deduplication."""
        return (
            normalize_attribute_name(self.catalog_attribute),
            normalize_attribute_name(self.offer_attribute),
            self.merchant_id,
            self.category_id,
        )


def observed_merchant_attributes(
    offers: Iterable[Offer],
    matches: MatchStore,
    catalog: Catalog,
    require_match: bool = True,
) -> Dict[Tuple[str, str], Dict[str, str]]:
    """Merchant attribute names observed per (merchant, category).

    Returns ``(merchant_id, category_id) -> {normalised name -> original name}``.
    The category of an offer is taken from its matched product when
    ``require_match`` is true (the offline phase), otherwise from the
    offer's own ``category_id``.
    """
    observed: Dict[Tuple[str, str], Dict[str, str]] = {}
    for offer in offers:
        category_id = None
        if require_match:
            product_id = matches.product_for_offer(offer.offer_id)
            if product_id is None or not catalog.has_product(product_id):
                continue
            category_id = catalog.product(product_id).category_id
        else:
            category_id = offer.category_id
        if category_id is None:
            continue
        key = (offer.merchant_id, category_id)
        names = observed.setdefault(key, {})
        for pair in offer.specification:
            names.setdefault(pair.normalized_name(), pair.name)
    return observed


def generate_candidates(
    catalog: Catalog,
    offers: Iterable[Offer],
    matches: MatchStore,
    require_match: bool = True,
    category_ids: Sequence[str] = (),
) -> List[CandidateTuple]:
    """Enumerate candidate tuples from historical offers.

    Parameters
    ----------
    catalog:
        Supplies the per-category schemas (the A_p side).
    offers:
        Historical offers with extracted specifications (the A_o side).
    matches:
        Historical offer-to-product matches; offers without a match are
        skipped when ``require_match`` is true.
    require_match:
        When false, offers are grouped by their own ``category_id`` instead
        of their matched product's category (used by the no-history
        baseline so that it sees the same candidate space).
    category_ids:
        Optional restriction to a subset of categories (e.g. the Computing
        subtree used in Figures 7 and 8).

    Returns
    -------
    list of CandidateTuple
        Deduplicated, in deterministic order.
    """
    allowed_categories: Set[str] = set(category_ids)
    observed = observed_merchant_attributes(
        offers, matches, catalog, require_match=require_match
    )
    candidates: List[CandidateTuple] = []
    seen: Set[Tuple[str, str, str, str]] = set()
    for (merchant_id, category_id), names in sorted(observed.items()):
        if allowed_categories and category_id not in allowed_categories:
            continue
        if not catalog.has_schema(category_id):
            continue
        schema = catalog.schema_for(category_id)
        for catalog_attribute in schema.attribute_names():
            for original_name in names.values():
                candidate = CandidateTuple(
                    catalog_attribute=catalog_attribute,
                    offer_attribute=original_name,
                    merchant_id=merchant_id,
                    category_id=category_id,
                )
                key = candidate.key()
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(candidate)
    return candidates
