"""Offline Learning: attribute-correspondence creation (paper Section 3).

This package is the paper's primary contribution.  Given the catalog,
historical offers and their offer-to-product matches, it

1. builds value bags restricted to matched offer/product pairs at three
   grouping granularities (merchant+category, category, merchant) —
   :mod:`repro.matching.grouping`;
2. enumerates candidate tuples ⟨A_p, A_o, M, C⟩ —
   :mod:`repro.matching.candidates`;
3. computes the six distributional-similarity features of paper Table 1 —
   :mod:`repro.matching.features`;
4. constructs a training set automatically from name-identity candidates —
   :mod:`repro.matching.training`;
5. trains a logistic-regression classifier and scores every candidate,
   producing :class:`~repro.matching.correspondence.AttributeCorrespondence`
   objects consumed by schema reconciliation —
   :mod:`repro.matching.learner`.
"""

from repro.matching.candidates import CandidateTuple, generate_candidates
from repro.matching.correspondence import (
    AttributeCorrespondence,
    CorrespondenceSet,
    ScoredCandidate,
)
from repro.matching.features import (
    EXTENDED_FEATURE_NAMES,
    FEATURE_NAMES,
    NAME_FEATURE,
    DistributionalFeatureExtractor,
    attribute_name_similarity,
)
from repro.matching.grouping import MatchedValueIndex
from repro.matching.learner import OfflineLearner, OfflineLearningResult
from repro.matching.training import build_training_set

__all__ = [
    "CandidateTuple",
    "generate_candidates",
    "AttributeCorrespondence",
    "CorrespondenceSet",
    "ScoredCandidate",
    "FEATURE_NAMES",
    "EXTENDED_FEATURE_NAMES",
    "NAME_FEATURE",
    "DistributionalFeatureExtractor",
    "attribute_name_similarity",
    "MatchedValueIndex",
    "OfflineLearner",
    "OfflineLearningResult",
    "build_training_set",
]
