"""Automated training-set construction (paper Section 3.2).

No manually labelled data is available at the scale of a product search
engine, so the training set is derived from *name-identity* candidate
tuples:

* ⟨A, A, M, C⟩ (merchant uses exactly the catalog attribute name)
  → positive example;
* ⟨A, B, M, C⟩ with A ≠ B, when ⟨A, A, M, C⟩ also exists
  → negative example (a merchant uses exactly one name per catalog
  attribute, so if it already uses A verbatim, B cannot also mean A).

Labels are only defined where a name identity exists; all remaining
candidates are unlabelled and are scored by the trained classifier.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.learning.datasets import LabeledDataset
from repro.matching.candidates import CandidateTuple
from repro.matching.features import DistributionalFeatureExtractor
from repro.text.normalize import normalize_attribute_name

__all__ = ["label_candidates", "build_training_set"]


def label_candidates(candidates: Sequence[CandidateTuple]) -> Dict[CandidateTuple, int]:
    """Assign automatic labels to the candidates where a name identity exists.

    Returns a mapping from candidate to label (1 or 0); candidates without
    an automatic label are absent from the mapping.
    """
    # Catalog attributes that have a name-identity candidate, per (M, C).
    identity_attributes: Dict[Tuple[str, str], Set[str]] = {}
    for candidate in candidates:
        if candidate.is_name_identity():
            key = (candidate.merchant_id, candidate.category_id)
            identity_attributes.setdefault(key, set()).add(
                normalize_attribute_name(candidate.catalog_attribute)
            )

    labels: Dict[CandidateTuple, int] = {}
    for candidate in candidates:
        key = (candidate.merchant_id, candidate.category_id)
        catalog_name = normalize_attribute_name(candidate.catalog_attribute)
        if candidate.is_name_identity():
            labels[candidate] = 1
        elif catalog_name in identity_attributes.get(key, set()):
            # The merchant already uses the exact catalog name for this
            # attribute, so a differently named attribute is a negative.
            labels[candidate] = 0
    return labels


def build_training_set(
    candidates: Sequence[CandidateTuple],
    extractor: DistributionalFeatureExtractor,
    max_examples: Optional[int] = None,
) -> LabeledDataset:
    """Build the automatically labelled training set.

    Parameters
    ----------
    candidates:
        All candidate tuples (labelled and unlabelled).
    extractor:
        Feature extractor supplying the classifier features.
    max_examples:
        Optional cap on the number of training examples (useful for quick
        experiments); positives and negatives are truncated proportionally.

    Returns
    -------
    LabeledDataset
        Feature vectors and labels; the originating candidate is stored as
        each example's identifier.
    """
    labels = label_candidates(candidates)
    labelled = [(candidate, label) for candidate, label in labels.items()]
    # Deterministic order: positives and negatives interleaved by key.
    labelled.sort(key=lambda item: item[0].key())

    if max_examples is not None and len(labelled) > max_examples:
        if max_examples < 2:
            raise ValueError(f"max_examples must be >= 2, got {max_examples}")
        positives = [item for item in labelled if item[1] == 1]
        negatives = [item for item in labelled if item[1] == 0]
        positive_share = len(positives) / len(labelled)
        keep_positive = max(1, int(round(max_examples * positive_share)))
        keep_negative = max(1, max_examples - keep_positive)
        labelled = positives[:keep_positive] + negatives[:keep_negative]

    dataset = LabeledDataset(feature_names=extractor.feature_names)
    for candidate, label in labelled:
        dataset.add(extractor.extract(candidate), label, identifier=candidate)
    return dataset
