"""Synthetic shopping-corpus substrate.

The paper's evaluation uses the Bing Shopping catalog and offer feeds
(856,781 offers, 1,143 merchants, 498 categories), which are proprietary.
This package is the faithful substitute: a deterministic, seedable
generator that produces

* a catalog taxonomy with the same four top-level departments the paper
  reports on (Computing, Cameras, Home Furnishings, Kitchen & Housewares)
  and realistic leaf categories beneath them;
* per-category schemas with key attributes (MPN/UPC) and typed attributes;
* catalog products with structured specifications;
* merchants, each with its own *dialect* — attribute-name synonyms, value
  format rewrites, assortment bias and junk attributes;
* offer feeds whose rows carry only title/price/URL/feed-category (like
  paper Figure 3);
* merchant landing pages (HTML) embedding the offer specification in a
  table, plus noise tables and non-table layouts;
* historical offer-to-product matches for the products already present in
  the catalog;
* complete ground truth (true product behind every offer, true catalog
  attribute behind every merchant alias) so that evaluation does not need
  manual labelling.

The generator's knobs reproduce the structural properties the paper's
algorithms rely on rather than any particular absolute numbers.
"""

from repro.corpus.config import CorpusConfig, CorpusPreset
from repro.corpus.generator import CorpusGenerator, SyntheticCorpus
from repro.corpus.ground_truth import GroundTruth
from repro.corpus.landing_pages import LandingPageRenderer
from repro.corpus.merchants import MerchantDialect, MerchantDialectFactory
from repro.corpus.webstore import WebStore

__all__ = [
    "CorpusConfig",
    "CorpusPreset",
    "CorpusGenerator",
    "SyntheticCorpus",
    "GroundTruth",
    "LandingPageRenderer",
    "MerchantDialect",
    "MerchantDialectFactory",
    "WebStore",
]
