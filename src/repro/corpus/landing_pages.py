"""Rendering merchant landing pages as HTML.

Each offer's landing page embeds the product specification as a
two-column table — the layout the Web-page Attribute Extraction component
targets (paper Section 4, "rows with two columns, where we consider the
first column to be the attribute name and the second column to be the
attribute value").  To make the extraction problem realistic the renderer
also emits:

* navigation, pricing and review tables that are *not* specifications
  (noise the extractor will wrongly pick up, to be filtered downstream by
  schema reconciliation);
* with probability ``missing_page_rate``, a bullet-list layout instead of a
  table, which the extractor legitimately misses (the paper notes the
  extractor "misses offers that are not formatted as tables").
"""

from __future__ import annotations

import html
import random
from typing import List, Sequence, Tuple

from repro.model.attributes import Specification
from repro.model.merchants import Merchant
from repro.model.offers import Offer

__all__ = ["LandingPageRenderer"]

_REVIEW_SNIPPETS = (
    "Great value for the money, would buy again.",
    "Arrived quickly and works as described.",
    "Stopped working after two weeks, returned it.",
    "Exactly what I was looking for.",
    "The color looks different from the photo.",
)

_NAV_LINKS = ("Home", "Electronics", "Clearance", "My Account", "Cart", "Help")


class LandingPageRenderer:
    """Render offers into merchant landing pages (HTML strings)."""

    def __init__(self, rng: random.Random, missing_page_rate: float = 0.08) -> None:
        if not 0.0 <= missing_page_rate <= 1.0:
            raise ValueError(
                f"missing_page_rate must be within [0, 1], got {missing_page_rate}"
            )
        self._rng = rng
        self._missing_page_rate = missing_page_rate

    # -- public API ---------------------------------------------------------

    def render(
        self,
        offer: Offer,
        merchant: Merchant,
        specification: Specification,
    ) -> str:
        """Render the landing page for one offer.

        The returned HTML always contains navigation and pricing noise; the
        specification is rendered as a table unless the page is sampled as a
        "non-table layout" page.
        """
        as_table = self._rng.random() >= self._missing_page_rate
        parts: List[str] = []
        parts.append("<html><head>")
        parts.append(f"<title>{html.escape(offer.title)} | {html.escape(merchant.name)}</title>")
        parts.append("</head><body>")
        parts.append(self._navigation_table())
        parts.append(f"<h1>{html.escape(offer.title)}</h1>")
        parts.append(self._pricing_table(offer))
        if as_table:
            parts.append(self._specification_table(specification))
        else:
            parts.append(self._specification_list(specification))
        parts.append(self._review_section())
        parts.append("</body></html>")
        return "\n".join(parts)

    # -- sections -----------------------------------------------------------

    def _navigation_table(self) -> str:
        cells = "".join(f"<td><a href='#'>{link}</a></td>" for link in _NAV_LINKS)
        return f"<table class='nav'><tr>{cells}</tr></table>"

    def _pricing_table(self, offer: Offer) -> str:
        # A two-column table that is *not* a product specification; the
        # extractor will pick it up and schema reconciliation must drop it.
        rows = [
            ("Our Price", f"${offer.price:,.2f}"),
            ("List Price", f"${offer.price * 1.2:,.2f}"),
            ("You Save", f"${offer.price * 0.2:,.2f}"),
        ]
        return self._two_column_table(rows, css_class="pricing")

    def _specification_table(self, specification: Specification) -> str:
        rows = [(pair.name, pair.value) for pair in specification]
        heading = "<h2>Product Specifications</h2>"
        return heading + self._two_column_table(rows, css_class="specs")

    def _specification_list(self, specification: Specification) -> str:
        items = "".join(
            f"<li>{html.escape(pair.name)}: {html.escape(pair.value)}</li>"
            for pair in specification
        )
        return f"<h2>Product Specifications</h2><ul class='specs'>{items}</ul>"

    def _review_section(self) -> str:
        count = self._rng.randint(0, 3)
        snippets = [self._rng.choice(_REVIEW_SNIPPETS) for _ in range(count)]
        items = "".join(f"<p class='review'>{html.escape(text)}</p>" for text in snippets)
        return f"<div class='reviews'><h2>Customer Reviews</h2>{items}</div>"

    @staticmethod
    def _two_column_table(rows: Sequence[Tuple[str, str]], css_class: str) -> str:
        body = "".join(
            f"<tr><td>{html.escape(str(name))}</td><td>{html.escape(str(value))}</td></tr>"
            for name, value in rows
        )
        return f"<table class='{css_class}'>{body}</table>"
