"""Merchant dialects: how each merchant renames attributes and reformats values.

The heterogeneity problem the paper addresses comes from every merchant
using its own "schema" per category (Section 2): different names for the
same attribute, different value formats, extra attributes with no catalog
counterpart, and an assortment biased towards certain brands.  A
:class:`MerchantDialect` captures all of that for one merchant, and
:class:`MerchantDialectFactory` samples dialects deterministically from
the corpus RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.corpus.config import CorpusConfig
from repro.corpus.vocabulary import ATTRIBUTE_SYNONYMS, BRANDS, JUNK_ATTRIBUTES
from repro.model.merchants import Merchant
from repro.text.normalize import normalize_attribute_name

__all__ = ["MerchantDialect", "MerchantDialectFactory"]


@dataclass
class MerchantDialect:
    """The idiosyncrasies of a single merchant.

    Attributes
    ----------
    merchant:
        The merchant this dialect belongs to.
    attribute_aliases:
        ``(category_id, catalog attribute name) -> merchant attribute name``.
        The merchant uses the same alias consistently within a category
        (paper Section 3.2 assumes "a merchant M will use exactly one name
        to refer to the catalog attribute A").
    brand_assortment:
        ``domain -> brands this merchant carries``; offers are only
        generated for products whose brand the merchant carries.
    junk_attributes:
        Merchant-specific attributes with no catalog counterpart, with the
        value pool to sample from.
    value_style:
        Formatting quirks: ``unit_style`` in {"suffix", "spaced", "none"},
        ``uppercase_values`` flag.
    """

    merchant: Merchant
    attribute_aliases: Dict[Tuple[str, str], str] = field(default_factory=dict)
    brand_assortment: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    junk_attributes: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    unit_style: str = "suffix"
    uppercase_values: bool = False

    def alias_for(self, category_id: str, catalog_attribute: str) -> str:
        """The merchant's name for a catalog attribute in a category.

        Falls back to the catalog name itself when no alias was sampled
        (e.g. for categories added after the dialect was created).
        """
        return self.attribute_aliases.get((category_id, catalog_attribute), catalog_attribute)

    def uses_identity_for(self, category_id: str, catalog_attribute: str) -> bool:
        """Whether the merchant uses the catalog attribute name verbatim."""
        alias = self.alias_for(category_id, catalog_attribute)
        return normalize_attribute_name(alias) == normalize_attribute_name(catalog_attribute)

    def carries_brand(self, domain: str, brand: str) -> bool:
        """Whether the merchant's assortment includes ``brand`` for ``domain``."""
        assortment = self.brand_assortment.get(domain)
        if assortment is None:
            return True
        return brand in assortment


class MerchantDialectFactory:
    """Deterministically samples merchant dialects from the corpus config."""

    def __init__(self, config: CorpusConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng

    def create(
        self,
        merchant: Merchant,
        category_ids_by_domain: Dict[str, List[Tuple[str, Sequence[str]]]],
    ) -> MerchantDialect:
        """Create the dialect for one merchant.

        Parameters
        ----------
        merchant:
            The merchant to create a dialect for.
        category_ids_by_domain:
            ``domain -> [(category_id, catalog attribute names), ...]`` for
            every leaf category the corpus will generate.
        """
        rng = self._rng
        dialect = MerchantDialect(
            merchant=merchant,
            unit_style=rng.choice(("suffix", "spaced", "none")),
            uppercase_values=rng.random() < 0.15,
        )

        # Assortment bias: the merchant carries a random subset of brands in
        # each domain it sells.
        for domain, brand_pool in BRANDS.items():
            keep = max(2, int(round(len(brand_pool) * self._config.merchant_assortment_bias)))
            dialect.brand_assortment[domain] = tuple(rng.sample(brand_pool, keep))

        # Attribute aliases: per (category, catalog attribute) choose either
        # the identical name (probability name_identity_probability), a
        # synonym from the bank, or a lightly decorated variant.
        for domain, categories in category_ids_by_domain.items():
            for category_id, attribute_names in categories:
                for attribute_name in attribute_names:
                    alias = self._sample_alias(attribute_name)
                    dialect.attribute_aliases[(category_id, attribute_name)] = alias

        # Junk attributes the merchant habitually lists.
        num_junk = rng.randint(2, 4)
        dialect.junk_attributes = list(rng.sample(list(JUNK_ATTRIBUTES), num_junk))
        return dialect

    def _sample_alias(self, catalog_attribute: str) -> str:
        rng = self._rng
        if rng.random() < self._config.name_identity_probability:
            return catalog_attribute
        synonyms = ATTRIBUTE_SYNONYMS.get(catalog_attribute)
        if synonyms and rng.random() < 0.85:
            return rng.choice(synonyms)
        # A decorated variant of the catalog name — still a distinct string,
        # exercising the name-based baselines' partial-overlap behaviour.
        decorations = (
            f"{catalog_attribute} (approx.)",
            f"Product {catalog_attribute}",
            f"{catalog_attribute} Info",
            f"Item {catalog_attribute}",
        )
        return rng.choice(decorations)
