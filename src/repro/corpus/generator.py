"""The synthetic shopping-corpus generator.

`CorpusGenerator.generate()` produces a :class:`SyntheticCorpus`: catalog,
merchants, offer feed, landing pages, historical matches and full ground
truth.  Generation is deterministic for a fixed :class:`CorpusConfig`.

Generation outline
------------------
1. Build the taxonomy and per-category schemas from the category
   specifications in :mod:`repro.corpus.domains`.
2. Create merchants and sample a dialect (aliases, assortment, junk
   attributes, value formatting) for each.
3. For every leaf category, generate *true products* with complete
   specifications.  A configurable fraction is withheld from the catalog —
   these "novel" products are what the run-time synthesis pipeline must
   reconstruct.
4. For every true product, generate offers from merchants whose assortment
   carries the product's brand: merchant-voiced attribute names, value
   format noise, occasional wrong values, junk attributes, a title, a feed
   row and a rendered landing page.
5. Record historical offer-to-product matches for cataloged products.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.config import CorpusConfig, CorpusPreset
from repro.corpus.domains import (
    CATEGORY_SPECS,
    TOP_LEVEL_CATEGORIES,
    AttributeSpec,
    CategorySpec,
)
from repro.corpus.ground_truth import GroundTruth
from repro.corpus.landing_pages import LandingPageRenderer
from repro.corpus.merchants import MerchantDialect, MerchantDialectFactory
from repro.corpus.vocabulary import BRANDS, MERCHANT_NAME_WORDS, MODEL_WORDS
from repro.corpus.webstore import WebStore
from repro.model.attributes import Specification
from repro.model.catalog import Catalog
from repro.model.matches import MatchStore, OfferProductMatch
from repro.model.merchants import Merchant
from repro.model.offers import Offer
from repro.model.products import Product
from repro.model.schema import CategorySchema
from repro.model.taxonomy import Taxonomy

__all__ = ["SyntheticCorpus", "CorpusGenerator"]


@dataclass
class SyntheticCorpus:
    """Everything the generator produces for one corpus."""

    config: CorpusConfig
    catalog: Catalog
    offers: List[Offer]
    matches: MatchStore
    web: WebStore
    ground_truth: GroundTruth
    dialects: Dict[str, MerchantDialect] = field(default_factory=dict)

    def offers_by_id(self) -> Dict[str, Offer]:
        """Offers indexed by id."""
        return {offer.offer_id: offer for offer in self.offers}

    def matched_offers(self) -> List[Offer]:
        """Offers with a historical offer-to-product match."""
        return [offer for offer in self.offers if self.matches.is_matched(offer.offer_id)]

    def unmatched_offers(self) -> List[Offer]:
        """Offers without a historical match (input of the run-time pipeline)."""
        return [offer for offer in self.offers if not self.matches.is_matched(offer.offer_id)]

    def summary(self) -> Dict[str, int]:
        """Headline corpus statistics."""
        return {
            "categories": len(self.catalog.taxonomy.leaves()),
            "merchants": len(self.catalog.merchants()),
            "catalog_products": self.catalog.num_products(),
            "novel_products": len(self.ground_truth.novel_product_ids),
            "offers": len(self.offers),
            "historical_matches": len(self.matches),
            "landing_pages": len(self.web),
        }


class CorpusGenerator:
    """Deterministic generator of synthetic shopping corpora."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()

    @classmethod
    def from_preset(cls, preset: CorpusPreset, seed: int = 2011) -> "CorpusGenerator":
        """Build a generator from one of the named presets."""
        return cls(preset.config(seed=seed))

    # -- top-level ----------------------------------------------------------

    def generate(self) -> SyntheticCorpus:
        """Generate a complete corpus."""
        rng = random.Random(self.config.seed)
        specs = self._selected_specs()
        taxonomy, schemas = self._build_taxonomy(specs)
        catalog = Catalog(taxonomy)
        for schema in schemas:
            catalog.register_schema(schema)

        merchants, dialects = self._build_merchants(rng, specs)
        for merchant in merchants:
            catalog.register_merchant(merchant)
        # Merchant activity follows a heavy-tailed (Zipf-like) profile: a few
        # large merchants provide most offers while the long tail of small
        # merchants contributes only a handful each.  This sparsity is a key
        # structural property of the paper's data (1,143 merchants) — it is
        # what makes per-merchant evidence weak and motivates the
        # category-level and merchant-level feature groupings.
        activity = {
            dialect.merchant.merchant_id: 1.0 / (rank ** 0.85)
            for rank, dialect in enumerate(rng.sample(dialects, len(dialects)), start=1)
        }

        ground_truth = GroundTruth()
        self._record_dialect_aliases(dialects, specs, ground_truth)

        web = WebStore()
        renderer = LandingPageRenderer(
            rng=random.Random(rng.randrange(1 << 30)),
            missing_page_rate=self.config.missing_page_rate,
        )

        offers: List[Offer] = []
        matches = MatchStore()
        product_counter = 0
        offer_counter = 0

        for spec in specs:
            num_products = max(1, int(round(self.config.products_per_category * spec.popularity)))

            # Legacy products: catalog-only entries with no offers and value
            # distributions skewed towards the older end of each value pool.
            # They reproduce the paper's observation that catalog-wide value
            # distributions differ from any single merchant's offers.
            num_legacy = int(round(num_products * self.config.legacy_product_fraction))
            for _ in range(num_legacy):
                product_counter += 1
                legacy = self._generate_product(rng, spec, product_counter, legacy=True)
                ground_truth.record_product(legacy, novel=False)
                catalog.add_product(legacy)

            for _ in range(num_products):
                product_counter += 1
                product = self._generate_product(rng, spec, product_counter)
                is_novel = rng.random() < self.config.novel_product_fraction
                ground_truth.record_product(product, novel=is_novel)
                if not is_novel:
                    catalog.add_product(product)

                product_offers, offer_counter = self._generate_offers(
                    rng=rng,
                    renderer=renderer,
                    web=web,
                    ground_truth=ground_truth,
                    product=product,
                    spec=spec,
                    dialects=dialects,
                    activity=activity,
                    offer_counter=offer_counter,
                )
                offers.extend(product_offers)

                if not is_novel:
                    for offer in product_offers:
                        if rng.random() < self.config.match_fraction:
                            matches.add(
                                OfferProductMatch(
                                    offer_id=offer.offer_id,
                                    product_id=product.product_id,
                                    method="synthetic",
                                )
                            )

        return SyntheticCorpus(
            config=self.config,
            catalog=catalog,
            offers=offers,
            matches=matches,
            web=web,
            ground_truth=ground_truth,
            dialects={dialect.merchant.merchant_id: dialect for dialect in dialects},
        )

    # -- taxonomy and schemas ------------------------------------------------

    def _selected_specs(self) -> List[CategorySpec]:
        if self.config.top_level_ids is None:
            return list(CATEGORY_SPECS)
        wanted = set(self.config.top_level_ids)
        selected = [spec for spec in CATEGORY_SPECS if spec.top_level_id in wanted]
        if not selected:
            raise ValueError(
                f"no category specs found for top-level ids {sorted(wanted)!r}"
            )
        return selected

    def _build_taxonomy(
        self, specs: Sequence[CategorySpec]
    ) -> Tuple[Taxonomy, List[CategorySchema]]:
        taxonomy = Taxonomy()
        needed_top_levels = {spec.top_level_id for spec in specs}
        for top_level_id, name in TOP_LEVEL_CATEGORIES:
            if top_level_id in needed_top_levels:
                taxonomy.add_category(top_level_id, name)
        schemas: List[CategorySchema] = []
        for spec in specs:
            taxonomy.add_category(spec.category_id, spec.name, parent_id=spec.top_level_id)
            schema = CategorySchema(spec.category_id)
            for attribute in spec.attributes:
                schema.add_attribute(
                    attribute.name,
                    kind=attribute.attribute_kind,
                    is_key=attribute.is_key,
                    unit=attribute.values.unit,
                )
            schemas.append(schema)
        return taxonomy, schemas

    # -- merchants ------------------------------------------------------------

    def _build_merchants(
        self, rng: random.Random, specs: Sequence[CategorySpec]
    ) -> Tuple[List[Merchant], List[MerchantDialect]]:
        categories_by_domain: Dict[str, List[Tuple[str, Sequence[str]]]] = {}
        for spec in specs:
            categories_by_domain.setdefault(spec.domain, []).append(
                (spec.category_id, spec.attribute_names())
            )

        factory = MerchantDialectFactory(self.config, rng)
        merchants: List[Merchant] = []
        dialects: List[MerchantDialect] = []
        used_names: set = set()
        for index in range(self.config.num_merchants):
            name = self._merchant_name(rng, used_names)
            merchant = Merchant(
                merchant_id=f"merchant-{index:04d}",
                name=name,
                homepage=f"http://www.{name.lower().replace(' ', '')}.example.com",
            )
            merchants.append(merchant)
            dialects.append(factory.create(merchant, categories_by_domain))
        return merchants, dialects

    @staticmethod
    def _merchant_name(rng: random.Random, used_names: set) -> str:
        first_pool, second_pool = MERCHANT_NAME_WORDS
        for _ in range(100):
            name = f"{rng.choice(first_pool)}{rng.choice(second_pool)}"
            if name not in used_names:
                used_names.add(name)
                return name
        # Fall back to a numbered name when the pool is exhausted.
        name = f"Merchant{len(used_names) + 1}"
        used_names.add(name)
        return name

    def _record_dialect_aliases(
        self,
        dialects: Sequence[MerchantDialect],
        specs: Sequence[CategorySpec],
        ground_truth: GroundTruth,
    ) -> None:
        for dialect in dialects:
            for spec in specs:
                for attribute in spec.attributes:
                    alias = dialect.alias_for(spec.category_id, attribute.name)
                    ground_truth.record_alias(
                        merchant_id=dialect.merchant.merchant_id,
                        category_id=spec.category_id,
                        merchant_attribute=alias,
                        catalog_attribute=attribute.name,
                    )

    # -- products --------------------------------------------------------------

    def _generate_product(
        self, rng: random.Random, spec: CategorySpec, counter: int, legacy: bool = False
    ) -> Product:
        product_id = f"product-{counter:06d}"
        values: Dict[str, str] = {}
        brand = rng.choice(BRANDS[spec.domain])
        model = self._model_name(rng, spec.domain)
        for attribute in spec.attributes:
            if rng.random() > attribute.catalog_coverage:
                continue
            values[attribute.name] = self._catalog_value(
                rng, spec, attribute, brand, model, legacy=legacy
            )
        # Brand and key attributes are always present so that products are
        # identifiable and titles can be constructed.
        values.setdefault("Model Part Number", self._mpn(rng, brand))
        specification = Specification(list(values.items()))
        title = self._product_title(spec, values, brand, model)
        return Product(
            product_id=product_id,
            category_id=spec.category_id,
            title=title,
            specification=specification,
        )

    def _catalog_value(
        self,
        rng: random.Random,
        spec: CategorySpec,
        attribute: AttributeSpec,
        brand: str,
        model: str,
        legacy: bool = False,
    ) -> str:
        space = attribute.values
        if space.kind == "brand":
            return brand
        if space.kind == "model":
            return model
        if space.kind == "mpn":
            return self._mpn(rng, brand)
        if space.kind == "upc":
            return "".join(str(rng.randint(0, 9)) for _ in range(12))
        pool = space.pool
        if legacy and len(pool) > 2:
            # Legacy (discontinued) products skew towards the older half of
            # the value pool — e.g. smaller capacities, older interfaces.
            pool = pool[: max(2, len(pool) // 2)]
        if space.kind == "categorical":
            return rng.choice(pool)
        if space.kind == "numeric":
            number = rng.choice(pool)
            return f"{number} {space.unit}" if space.unit else str(number)
        raise ValueError(f"unknown value-space kind: {space.kind!r}")

    @staticmethod
    def _mpn(rng: random.Random, brand: str) -> str:
        prefix = "".join(ch for ch in brand.upper() if ch.isalpha())[:3] or "MPN"
        digits = "".join(str(rng.randint(0, 9)) for _ in range(6))
        suffix = "".join(rng.choice("ABCDEFGHJKLMNPQRSTUVWX") for _ in range(2))
        return f"{prefix}{digits}{suffix}"

    def _model_name(self, rng: random.Random, domain: str) -> str:
        word = rng.choice(MODEL_WORDS[domain])
        number = rng.randint(100, 9999)
        return f"{word} {number}"

    @staticmethod
    def _product_title(
        spec: CategorySpec, values: Dict[str, str], brand: str, model: str
    ) -> str:
        fragments = [brand, model]
        for highlight in ("Capacity", "Screen Size", "Megapixels", "Size", "Color"):
            value = values.get(highlight)
            if value:
                fragments.append(value)
        fragments.append(spec.name.rstrip("s"))
        return " ".join(fragments)

    # -- offers ------------------------------------------------------------------

    @staticmethod
    def _weighted_sample(
        rng: random.Random,
        items: Sequence[MerchantDialect],
        weights: Sequence[float],
        k: int,
    ) -> List[MerchantDialect]:
        """Weighted sampling without replacement (Efraimidis-Spirakis keys)."""
        if k >= len(items):
            return list(items)
        keyed = [
            (rng.random() ** (1.0 / max(weight, 1e-9)), item)
            for item, weight in zip(items, weights)
        ]
        keyed.sort(key=lambda pair: -pair[0])
        return [item for _, item in keyed[:k]]

    def _generate_offers(
        self,
        rng: random.Random,
        renderer: LandingPageRenderer,
        web: WebStore,
        ground_truth: GroundTruth,
        product: Product,
        spec: CategorySpec,
        dialects: Sequence[MerchantDialect],
        activity: Dict[str, float],
        offer_counter: int,
    ) -> Tuple[List[Offer], int]:
        brand = product.get("Brand") or ""
        eligible = [
            dialect
            for dialect in dialects
            if not brand or dialect.carries_brand(spec.domain, brand)
        ]
        if not eligible:
            eligible = list(dialects)

        low, high = self.config.offers_per_product
        num_offers = rng.randint(low, high)
        num_offers = min(num_offers, len(eligible))
        weights = [activity.get(dialect.merchant.merchant_id, 1.0) for dialect in eligible]
        chosen = self._weighted_sample(rng, eligible, weights, num_offers) if num_offers else []

        offers: List[Offer] = []
        base_price = self._base_price(rng, spec)
        for dialect in chosen:
            offer_counter += 1
            offer_id = f"offer-{offer_counter:07d}"
            page_spec = self._offer_specification(rng, product, spec, dialect)
            price = round(base_price * rng.uniform(0.85, 1.2), 2)
            url = f"{dialect.merchant.homepage}/item/{offer_id}"
            title = self._offer_title(rng, product, spec)
            offer = Offer(
                offer_id=offer_id,
                merchant_id=dialect.merchant.merchant_id,
                title=title,
                price=price,
                url=url,
                feed_category=self._feed_category(rng, spec),
                category_id=None,
            )
            web.put(url, renderer.render(offer, dialect.merchant, page_spec))
            ground_truth.record_offer(
                offer_id=offer_id,
                product_id=product.product_id,
                category_id=spec.category_id,
                page_spec=page_spec,
            )
            offers.append(offer)
        return offers, offer_counter

    def _offer_specification(
        self,
        rng: random.Random,
        product: Product,
        spec: CategorySpec,
        dialect: MerchantDialect,
    ) -> Specification:
        specification = Specification()
        for attribute in spec.attributes:
            true_value = product.get(attribute.name)
            if true_value is None:
                continue
            if rng.random() > attribute.offer_coverage:
                continue
            merchant_name = dialect.alias_for(spec.category_id, attribute.name)
            value = true_value
            if rng.random() < self.config.value_error_rate and attribute.values.pool:
                value = self._catalog_value(rng, spec, attribute, true_value, true_value)
            value = self._format_value(rng, value, dialect)
            specification.add(merchant_name, value)

        junk_low, junk_high = self.config.junk_attributes_per_offer
        num_junk = rng.randint(junk_low, junk_high) if dialect.junk_attributes else 0
        num_junk = min(num_junk, len(dialect.junk_attributes))
        for name, pool in rng.sample(dialect.junk_attributes, num_junk) if num_junk else []:
            if pool:
                value = rng.choice(pool)
            else:
                value = f"{dialect.merchant.merchant_id[-4:].upper()}-{rng.randint(10000, 99999)}"
            specification.add(name, value)
        return specification

    def _format_value(self, rng: random.Random, value: str, dialect: MerchantDialect) -> str:
        formatted = value
        parts = formatted.split(" ", 1)
        is_numeric_with_unit = len(parts) == 2 and parts[0].replace(".", "", 1).isdigit()
        if is_numeric_with_unit and rng.random() < self.config.value_format_noise:
            # Unit-style rewrites only make sense for "<number> <unit>" values.
            number, unit = parts
            if dialect.unit_style == "suffix":
                formatted = f"{number}{unit}"
            elif dialect.unit_style == "none":
                formatted = number
            else:
                formatted = f"{number} {unit}"
        elif not is_numeric_with_unit and rng.random() < self.config.value_rephrase_rate:
            # Merchants rephrase/abbreviate textual values ("Serial ATA-300"
            # -> "ATA-300", "Intel Core i5" -> "Core i5"): drop a boundary
            # token while keeping the value recognisable.
            tokens = formatted.split()
            if len(tokens) >= 2:
                if rng.random() < 0.5:
                    tokens = tokens[1:]
                else:
                    tokens = tokens[:-1]
                formatted = " ".join(tokens)
        if dialect.uppercase_values:
            formatted = formatted.upper()
        return formatted

    @staticmethod
    def _base_price(rng: random.Random, spec: CategorySpec) -> float:
        price_ranges = {
            "computing": (80.0, 1500.0),
            "cameras": (60.0, 1200.0),
            "furnishings": (25.0, 400.0),
            "kitchen": (20.0, 500.0),
        }
        low, high = price_ranges.get(spec.top_level_id, (10.0, 500.0))
        return rng.uniform(low, high)

    def _offer_title(self, rng: random.Random, product: Product, spec: CategorySpec) -> str:
        # Merchants abbreviate and reorder titles; keep brand/model plus a
        # few salient specs so the category classifier has signal.
        base = product.title
        tokens = base.split()
        if len(tokens) > 4 and rng.random() < 0.4:
            tokens = tokens[: rng.randint(3, len(tokens))]
        suffix = rng.choice(("", "", " - NEW", " (OEM)", " w/ Free Shipping"))
        return " ".join(tokens) + suffix

    @staticmethod
    def _feed_category(rng: random.Random, spec: CategorySpec) -> str:
        separators = ("|", " > ", "/")
        separator = rng.choice(separators)
        path = [spec.top_level_id.title(), spec.name]
        return separator.join(path)
