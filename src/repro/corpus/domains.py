"""Category specifications for the synthetic catalog taxonomy.

Each :class:`CategorySpec` describes one leaf category: its place in the
taxonomy, the brand/model vocabulary domain it draws from, and the typed
attributes of its catalog schema together with the value space each
attribute samples from.

The four top-level departments mirror the ones reported in the paper's
Table 3 (Cameras, Computing, Home Furnishings, Kitchen & Housewares), and
the leaf categories reproduce the paper's qualitative observation that
Computing/Cameras products carry rich specifications while Furnishings and
Kitchen products carry only a handful of attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.vocabulary import COLOR_POOL, MATERIAL_POOL
from repro.model.schema import AttributeKind

__all__ = [
    "ValueSpace",
    "AttributeSpec",
    "CategorySpec",
    "TOP_LEVEL_CATEGORIES",
    "CATEGORY_SPECS",
    "specs_for_top_level",
]


@dataclass(frozen=True)
class ValueSpace:
    """How values of one attribute are sampled.

    Attributes
    ----------
    kind:
        One of ``"brand"``, ``"model"``, ``"mpn"``, ``"upc"``,
        ``"categorical"``, ``"numeric"``, ``"dimensions"``.
    pool:
        For categorical/numeric value spaces: the candidate values.
    unit:
        Canonical unit appended by the catalog rendering (``"GB"``).
    """

    kind: str
    pool: Tuple[str, ...] = ()
    unit: Optional[str] = None


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute in a category specification."""

    name: str
    values: ValueSpace
    attribute_kind: AttributeKind = AttributeKind.TEXT
    is_key: bool = False
    #: Probability that a catalog product actually has a value for this
    #: attribute (products in real catalogs have gaps too).
    catalog_coverage: float = 0.95
    #: Probability that a merchant offer exposes this attribute on its
    #: landing page.
    offer_coverage: float = 0.8


@dataclass(frozen=True)
class CategorySpec:
    """A leaf category of the synthetic taxonomy."""

    category_id: str
    name: str
    top_level_id: str
    domain: str
    attributes: Tuple[AttributeSpec, ...]
    #: Relative popularity; scales how many products the category gets.
    popularity: float = 1.0

    def attribute_names(self) -> List[str]:
        """Names of all attributes in schema order."""
        return [attribute.name for attribute in self.attributes]


#: (category_id, display name) of the four top-level departments.
TOP_LEVEL_CATEGORIES: Tuple[Tuple[str, str], ...] = (
    ("computing", "Computing"),
    ("cameras", "Cameras"),
    ("furnishings", "Home Furnishings"),
    ("kitchen", "Kitchen & Housewares"),
)


def _key_attributes() -> Tuple[AttributeSpec, ...]:
    """The key attributes shared by every category (MPN + UPC)."""
    return (
        AttributeSpec(
            name="Model Part Number",
            values=ValueSpace(kind="mpn"),
            attribute_kind=AttributeKind.IDENTIFIER,
            is_key=True,
            catalog_coverage=1.0,
            offer_coverage=0.9,
        ),
        AttributeSpec(
            name="UPC",
            values=ValueSpace(kind="upc"),
            attribute_kind=AttributeKind.IDENTIFIER,
            is_key=True,
            catalog_coverage=0.9,
            offer_coverage=0.55,
        ),
    )


def _brand_model(domain_coverage: float = 0.95) -> Tuple[AttributeSpec, ...]:
    return (
        AttributeSpec(
            name="Brand",
            values=ValueSpace(kind="brand"),
            attribute_kind=AttributeKind.CATEGORICAL,
            catalog_coverage=1.0,
            offer_coverage=domain_coverage,
        ),
        AttributeSpec(
            name="Model",
            values=ValueSpace(kind="model"),
            attribute_kind=AttributeKind.TEXT,
            catalog_coverage=1.0,
            offer_coverage=domain_coverage,
        ),
    )


def _categorical(
    name: str,
    pool: Sequence[str],
    unit: Optional[str] = None,
    offer_coverage: float = 0.75,
    catalog_coverage: float = 0.9,
) -> AttributeSpec:
    return AttributeSpec(
        name=name,
        values=ValueSpace(kind="categorical", pool=tuple(pool), unit=unit),
        attribute_kind=AttributeKind.CATEGORICAL,
        offer_coverage=offer_coverage,
        catalog_coverage=catalog_coverage,
    )


def _numeric(
    name: str,
    pool: Sequence[str],
    unit: Optional[str],
    offer_coverage: float = 0.75,
    catalog_coverage: float = 0.9,
) -> AttributeSpec:
    return AttributeSpec(
        name=name,
        values=ValueSpace(kind="numeric", pool=tuple(pool), unit=unit),
        attribute_kind=AttributeKind.NUMERIC,
        offer_coverage=offer_coverage,
        catalog_coverage=catalog_coverage,
    )


def _computing_specs() -> List[CategorySpec]:
    hard_drives = CategorySpec(
        category_id="computing.storage.hard-drives",
        name="Hard Drives",
        top_level_id="computing",
        domain="storage",
        popularity=1.4,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _numeric(
                "Capacity",
                ("80", "160", "250", "320", "400", "500", "640", "750", "1000", "1500", "2000"),
                "GB",
                offer_coverage=0.9,
            ),
            _categorical(
                "Interface",
                ("Serial ATA-300", "Serial ATA-150", "ATA-100", "ATA-133", "SCSI Ultra320", "SAS"),
            ),
            _numeric("Spindle Speed", ("5400", "7200", "10000", "15000"), "rpm"),
            _numeric("Buffer Size", ("2", "8", "16", "32", "64"), "MB"),
            _categorical("Form Factor", ('3.5"', '2.5"', '1.8"')),
            _numeric("Data Transfer Rate", ("150", "300", "600"), "MBps", offer_coverage=0.55),
        ),
    )
    laptops = CategorySpec(
        category_id="computing.laptops",
        name="Laptops",
        top_level_id="computing",
        domain="computing",
        popularity=1.5,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _numeric(
                "Screen Size",
                ("11.6", "12.1", "13.3", "14.1", "15.4", "15.6", "17.3"),
                "inches",
                offer_coverage=0.85,
            ),
            _categorical(
                "Processor Type",
                (
                    "Intel Core 2 Duo",
                    "Intel Core i3",
                    "Intel Core i5",
                    "Intel Core i7",
                    "AMD Turion",
                    "AMD Athlon X2",
                    "Intel Atom",
                ),
            ),
            _numeric(
                "Processor Speed",
                ("1.6", "1.86", "2.0", "2.26", "2.4", "2.53", "2.66", "2.8"),
                "GHz",
            ),
            _numeric("Memory", ("1", "2", "3", "4", "6", "8"), "GB", offer_coverage=0.85),
            _numeric("Hard Drive", ("160", "250", "320", "500", "640", "750"), "GB"),
            _categorical(
                "Operating System",
                (
                    "Windows 7 Home Premium",
                    "Windows 7 Professional",
                    "Windows Vista Home Basic",
                    "Windows XP Professional",
                    "Mac OS X",
                    "Linux",
                ),
            ),
            _categorical(
                "Graphics",
                (
                    "Intel GMA 4500MHD",
                    "NVIDIA GeForce 9400M",
                    "ATI Radeon HD 4570",
                    "NVIDIA GeForce GT 330M",
                    "Intel HD Graphics",
                ),
                offer_coverage=0.5,
            ),
            _numeric(
                "Weight",
                ("3.5", "4.2", "4.8", "5.4", "6.2", "7.5"),
                "lbs",
                offer_coverage=0.6,
            ),
            _numeric("Battery Life", ("3", "4", "5", "6", "8", "10"), "hours", offer_coverage=0.45),
        ),
    )
    monitors = CategorySpec(
        category_id="computing.monitors",
        name="Monitors",
        top_level_id="computing",
        domain="computing",
        popularity=1.0,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _numeric(
                "Screen Size",
                ("17", "19", "20", "22", "23", "24", "27", "30"),
                "inches",
                offer_coverage=0.9,
            ),
            _categorical(
                "Resolution",
                (
                    "1280 x 1024",
                    "1440 x 900",
                    "1680 x 1050",
                    "1920 x 1080",
                    "1920 x 1200",
                    "2560 x 1600",
                ),
            ),
            _numeric("Refresh Rate", ("60", "75", "120"), "Hz", offer_coverage=0.5),
            _categorical("Contrast Ratio", ("1000:1", "3000:1", "10000:1", "50000:1", "1000000:1")),
            _numeric("Brightness", ("250", "300", "350", "400"), "cd/m2", offer_coverage=0.55),
            _categorical(
                "Interface",
                ("VGA", "DVI", "VGA, DVI", "DVI, HDMI", "DisplayPort, DVI, HDMI"),
            ),
        ),
    )
    memory = CategorySpec(
        category_id="computing.memory",
        name="Computer Memory",
        top_level_id="computing",
        domain="computing",
        popularity=0.8,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _numeric("Capacity", ("512", "1024", "2048", "4096", "8192"), "MB", offer_coverage=0.9),
            _categorical("Memory Technology", ("DDR2 SDRAM", "DDR3 SDRAM", "DDR SDRAM", "SDRAM")),
            _numeric("Speed", ("533", "667", "800", "1066", "1333", "1600"), "MHz"),
            _categorical("Form Factor", ("DIMM 240-pin", "SODIMM 200-pin", "DIMM 184-pin")),
        ),
    )
    workstations = CategorySpec(
        category_id="computing.desktops",
        name="Desktop Computers",
        top_level_id="computing",
        domain="computing",
        popularity=1.0,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _categorical(
                "Processor Type",
                (
                    "Intel Core i5",
                    "Intel Core i7",
                    "Intel Core 2 Quad",
                    "AMD Phenom II X4",
                    "Intel Xeon",
                ),
            ),
            _numeric("Processor Speed", ("2.4", "2.66", "2.8", "3.0", "3.2", "3.4"), "GHz"),
            _numeric("Memory", ("2", "4", "6", "8", "12", "16"), "GB"),
            _numeric("Hard Drive", ("320", "500", "750", "1000", "1500", "2000"), "GB"),
            _categorical(
                "Operating System",
                (
                    "Windows 7 Home Premium",
                    "Windows 7 Professional",
                    "Windows Vista Business",
                    "Linux",
                    "No OS",
                ),
            ),
            _categorical(
                "Graphics",
                (
                    "Intel HD Graphics",
                    "NVIDIA GeForce GT 220",
                    "ATI Radeon HD 5450",
                    "NVIDIA Quadro FX 580",
                ),
                offer_coverage=0.55,
            ),
        ),
    )
    return [hard_drives, laptops, monitors, memory, workstations]


def _camera_specs() -> List[CategorySpec]:
    digital_cameras = CategorySpec(
        category_id="cameras.digital-cameras",
        name="Digital Cameras",
        top_level_id="cameras",
        domain="camera",
        popularity=1.5,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _numeric(
                "Megapixels",
                ("8", "10", "10.1", "12", "12.1", "14.1", "16", "18"),
                "MP",
                offer_coverage=0.9,
            ),
            _numeric("Optical Zoom", ("3", "4", "5", "8", "10", "12", "15", "20"), "x"),
            _categorical("Sensor Type", ("CCD", "CMOS", "Super HAD CCD", "Live MOS")),
            _numeric("LCD Size", ("2.5", "2.7", "3.0", "3.5"), "inches"),
            _categorical("ISO Rating", ("80-1600", "100-3200", "100-6400", "200-12800")),
            _categorical("Color", COLOR_POOL[:6], offer_coverage=0.65),
            _numeric(
                "Weight",
                ("4.2", "5.1", "6.3", "7.7", "9.8", "12.5"),
                "oz",
                offer_coverage=0.5,
            ),
        ),
    )
    slr_lenses = CategorySpec(
        category_id="cameras.lenses",
        name="Camera Lenses",
        top_level_id="cameras",
        domain="camera",
        popularity=0.9,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _categorical(
                "Focal Length",
                ("18-55mm", "55-200mm", "70-300mm", "50mm", "85mm", "24-70mm", "100-400mm"),
                offer_coverage=0.9,
            ),
            _categorical("Aperture", ("f/1.4", "f/1.8", "f/2.8", "f/3.5-5.6", "f/4-5.6", "f/4")),
            _categorical(
                "Lens Type",
                ("Canon EF", "Canon EF-S", "Nikon F", "Sony Alpha", "Four Thirds", "Pentax K"),
            ),
            _numeric("Weight", ("6.8", "9.2", "13.9", "21.2", "33.5"), "oz", offer_coverage=0.55),
        ),
    )
    camcorders = CategorySpec(
        category_id="cameras.camcorders",
        name="Camcorders",
        top_level_id="cameras",
        domain="camera",
        popularity=0.8,
        attributes=_key_attributes()
        + _brand_model()
        + (
            _categorical("Resolution", ("1920 x 1080", "1280 x 720", "720 x 480")),
            _numeric("Optical Zoom", ("10", "12", "20", "25", "30", "60"), "x"),
            _numeric("LCD Size", ("2.7", "3.0", "3.5"), "inches"),
            _categorical("Sensor Type", ("CMOS", "CCD", "3CCD", "Exmor R CMOS")),
            _categorical("Color", COLOR_POOL[:5], offer_coverage=0.6),
        ),
    )
    return [digital_cameras, slr_lenses, camcorders]


def _furnishing_specs() -> List[CategorySpec]:
    bedspreads = CategorySpec(
        category_id="furnishings.bedding.bedspreads",
        name="Bedspreads",
        top_level_id="furnishings",
        domain="furnishing",
        popularity=1.2,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.85,
            ),
            _categorical(
                "Size",
                ("Twin", "Full", "Queen", "King", "California King"),
                offer_coverage=0.85,
            ),
            _categorical("Color", COLOR_POOL, offer_coverage=0.8),
            _categorical("Material", MATERIAL_POOL[:9], offer_coverage=0.6),
            _categorical(
                "Pattern",
                ("Floral", "Striped", "Solid", "Paisley", "Plaid", "Geometric"),
                offer_coverage=0.4,
            ),
        ),
    )
    lighting = CategorySpec(
        category_id="furnishings.lighting",
        name="Home Lighting",
        top_level_id="furnishings",
        domain="furnishing",
        popularity=1.0,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.8,
            ),
            _categorical("Color", COLOR_POOL, offer_coverage=0.7),
            _categorical(
                "Material",
                ("Brushed Nickel", "Bronze", "Brass", "Chrome", "Wrought Iron", "Glass"),
                offer_coverage=0.55,
            ),
            _numeric("Wattage", ("40", "60", "75", "100", "150"), "W", offer_coverage=0.5),
        ),
    )
    chairs = CategorySpec(
        category_id="furnishings.chairs",
        name="Accent Chairs",
        top_level_id="furnishings",
        domain="furnishing",
        popularity=0.8,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.8,
            ),
            _categorical("Color", COLOR_POOL, offer_coverage=0.75),
            _categorical(
                "Material",
                ("Leather", "Microfiber", "Fabric", "Bonded Leather", "Velvet"),
                offer_coverage=0.6,
            ),
            _numeric("Seat Height", ("17", "18", "19", "20", "21"), "inches", offer_coverage=0.35),
        ),
    )
    return [bedspreads, lighting, chairs]


def _kitchen_specs() -> List[CategorySpec]:
    mixers = CategorySpec(
        category_id="kitchen.mixers",
        name="Stand Mixers",
        top_level_id="kitchen",
        domain="kitchen",
        popularity=1.0,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.9,
            ),
            _categorical("Color", COLOR_POOL, offer_coverage=0.75),
            _numeric(
                "Wattage",
                ("250", "300", "325", "450", "525", "575"),
                "W",
                offer_coverage=0.65,
            ),
            _numeric("Bowl Capacity", ("4.5", "5", "6", "7"), "quarts", offer_coverage=0.55),
            _numeric("Number of Settings", ("5", "6", "10", "12"), None, offer_coverage=0.4),
        ),
    )
    coffee_makers = CategorySpec(
        category_id="kitchen.coffee-makers",
        name="Coffee Makers",
        top_level_id="kitchen",
        domain="kitchen",
        popularity=1.2,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.9,
            ),
            _categorical("Color", COLOR_POOL, offer_coverage=0.75),
            _numeric(
                "Number of Cups",
                ("1", "4", "8", "10", "12", "14"),
                "cups",
                offer_coverage=0.7,
            ),
            _numeric("Wattage", ("600", "900", "1000", "1100", "1500"), "W", offer_coverage=0.5),
        ),
    )
    air_conditioners = CategorySpec(
        category_id="kitchen.air-conditioners",
        name="Air Conditioners",
        top_level_id="kitchen",
        domain="kitchen",
        popularity=0.8,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.85,
            ),
            _numeric("Wattage", ("900", "1100", "1300", "1500"), "W", offer_coverage=0.45),
            _categorical("Color", ("White", "Beige", "Gray"), offer_coverage=0.6),
            _numeric("Voltage", ("110", "115", "220", "230"), "V", offer_coverage=0.4),
        ),
    )
    cutlery = CategorySpec(
        category_id="kitchen.cutlery",
        name="Kitchen Knives",
        top_level_id="kitchen",
        domain="kitchen",
        popularity=0.8,
        attributes=_key_attributes()
        + (
            AttributeSpec(
                name="Brand",
                values=ValueSpace(kind="brand"),
                attribute_kind=AttributeKind.CATEGORICAL,
                catalog_coverage=1.0,
                offer_coverage=0.85,
            ),
            _categorical(
                "Blade Material",
                ("Stainless Steel", "High-Carbon Steel", "Ceramic", "Damascus Steel"),
                offer_coverage=0.6,
            ),
            _categorical("Color", ("Black", "Silver", "White", "Red"), offer_coverage=0.5),
        ),
    )
    return [mixers, coffee_makers, air_conditioners, cutlery]


#: The full default set of leaf-category specifications.
CATEGORY_SPECS: Tuple[CategorySpec, ...] = tuple(
    _computing_specs() + _camera_specs() + _furnishing_specs() + _kitchen_specs()
)


def specs_for_top_level(top_level_id: str) -> List[CategorySpec]:
    """All leaf-category specifications under one top-level department."""
    return [spec for spec in CATEGORY_SPECS if spec.top_level_id == top_level_id]
