"""Corpus generation configuration and presets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

__all__ = ["CorpusConfig", "CorpusPreset"]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs of the synthetic shopping-corpus generator.

    The defaults produce a corpus with the same *structural* properties as
    the paper's Bing Shopping data (many merchants per category, merchant
    dialects, assortment bias, sparse feeds, rich Computing/Cameras
    specifications vs terse Furnishings/Kitchen ones) at a laptop-friendly
    scale.

    Attributes
    ----------
    seed:
        Root RNG seed; every derived generator is seeded from it, so equal
        configs produce byte-identical corpora.
    num_merchants:
        Number of merchants to create.
    products_per_category:
        Baseline number of catalog-domain products per leaf category
        (scaled by each category's popularity).
    offers_per_product:
        Inclusive (min, max) range of offers generated per product.
    novel_product_fraction:
        Fraction of generated products that are withheld from the catalog.
        Their offers have no historical match and flow into the run-time
        synthesis pipeline; the withheld specification is the ground truth
        the evaluation oracle scores against.
    legacy_product_fraction:
        Additional catalog-only products generated per category (as a
        fraction of the category's product count).  Legacy products have no
        offers and their values are skewed towards the "older" end of each
        value pool — reproducing the paper's observation that catalog value
        distributions differ from any one merchant's offer distributions
        (e.g. 10,000 rpm drives present in the catalog but absent from the
        merchant's offers), which is what penalises matchers that do not
        restrict value bags to historically matched instances.
    value_rephrase_rate:
        Probability that a merchant rephrases a multi-token textual value
        (dropping a leading/trailing token, e.g. "Serial ATA-300" ->
        "ATA-300").  Rephrasing weakens per-instance string similarity
        (hurting duplicate-based matchers such as DUMAS) while leaving the
        term distributions largely intact.
    match_fraction:
        Fraction of offers for *cataloged* products that carry a historical
        offer-to-product match.
    merchant_assortment_bias:
        Fraction of the brand pool each merchant actually sells; lower
        values make merchant value distributions diverge more from the
        catalog (which is what penalises the no-history baseline).
    name_identity_probability:
        Probability that a merchant uses the catalog attribute name
        verbatim (creates the name-identity training candidates).
    junk_attributes_per_offer:
        Inclusive (min, max) number of merchant-specific junk attributes
        added to each offer specification.
    value_format_noise:
        Probability that an offer value is reformatted (unit added/removed,
        spacing changed, casing changed).
    value_error_rate:
        Probability that an offer value is outright wrong (a different
        sample from the attribute's value space) — exercised by value
        fusion and the precision metrics.
    missing_page_rate:
        Probability that an offer's landing page does not render the
        specification as a table (bullet list instead), exercising the
        extractor's known blind spot.
    top_level_ids:
        Restrict generation to these top-level categories (``None`` = all).
    """

    seed: int = 2011
    num_merchants: int = 40
    products_per_category: int = 60
    offers_per_product: Tuple[int, int] = (2, 14)
    novel_product_fraction: float = 0.45
    legacy_product_fraction: float = 0.5
    value_rephrase_rate: float = 0.45
    match_fraction: float = 0.85
    merchant_assortment_bias: float = 0.45
    name_identity_probability: float = 0.35
    junk_attributes_per_offer: Tuple[int, int] = (1, 3)
    value_format_noise: float = 0.5
    value_error_rate: float = 0.06
    missing_page_rate: float = 0.08
    top_level_ids: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.num_merchants < 1:
            raise ValueError("num_merchants must be >= 1")
        if self.products_per_category < 1:
            raise ValueError("products_per_category must be >= 1")
        low, high = self.offers_per_product
        if low < 1 or high < low:
            raise ValueError(f"invalid offers_per_product range: {self.offers_per_product}")
        for name in (
            "novel_product_fraction",
            "legacy_product_fraction",
            "value_rephrase_rate",
            "match_fraction",
            "merchant_assortment_bias",
            "name_identity_probability",
            "value_format_noise",
            "value_error_rate",
            "missing_page_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        junk_low, junk_high = self.junk_attributes_per_offer
        if junk_low < 0 or junk_high < junk_low:
            raise ValueError(
                f"invalid junk_attributes_per_offer range: {self.junk_attributes_per_offer}"
            )

    def scaled(self, factor: float) -> "CorpusConfig":
        """A copy with the product volume scaled by ``factor`` (>= 1 product)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            products_per_category=max(1, int(round(self.products_per_category * factor))),
        )


class CorpusPreset(enum.Enum):
    """Named corpus sizes used by tests, examples and benchmarks."""

    #: A few hundred offers — unit/integration tests.
    TINY = "tiny"
    #: A few thousand offers — examples and fast benchmarks.
    SMALL = "small"
    #: Tens of thousands of offers — the headline experiment runs.
    DEFAULT = "default"
    #: Computing subtree only — Figures 7/8/9 restrict to computing categories.
    COMPUTING = "computing"

    def config(self, seed: int = 2011) -> CorpusConfig:
        """The :class:`CorpusConfig` behind the preset."""
        if self is CorpusPreset.TINY:
            return CorpusConfig(
                seed=seed,
                num_merchants=12,
                products_per_category=8,
                offers_per_product=(1, 6),
                top_level_ids=("computing", "cameras"),
            )
        if self is CorpusPreset.SMALL:
            return CorpusConfig(
                seed=seed,
                num_merchants=36,
                products_per_category=25,
                offers_per_product=(2, 10),
            )
        if self is CorpusPreset.DEFAULT:
            return CorpusConfig(seed=seed, num_merchants=70)
        if self is CorpusPreset.COMPUTING:
            return CorpusConfig(
                seed=seed,
                num_merchants=50,
                products_per_category=45,
                top_level_ids=("computing",),
            )
        raise AssertionError(f"unhandled preset: {self}")  # pragma: no cover
