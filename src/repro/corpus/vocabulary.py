"""Domain vocabularies: brands, model-name fragments, attribute synonyms.

The vocabulary is intentionally plain data (tuples of strings) so that the
category specifications in :mod:`repro.corpus.domains` stay readable and
the generator stays deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "BRANDS",
    "MODEL_WORDS",
    "ATTRIBUTE_SYNONYMS",
    "JUNK_ATTRIBUTES",
    "MERCHANT_NAME_WORDS",
    "COLOR_POOL",
    "MATERIAL_POOL",
]

#: Brand pools per broad domain.  Merchant assortment bias picks a subset
#: of these per merchant, which is what makes raw (unmatched) value
#: distributions differ between a merchant and the catalog (paper
#: Section 3.1, the SonyStyle.com example).
BRANDS: Dict[str, Tuple[str, ...]] = {
    "storage": (
        "Seagate",
        "Western Digital",
        "Hitachi",
        "Toshiba",
        "Samsung",
        "Fujitsu",
        "Maxtor",
        "Quantum",
        "IBM",
        "HP",
    ),
    "computing": (
        "Dell",
        "HP",
        "Lenovo",
        "Toshiba",
        "Acer",
        "Asus",
        "Sony",
        "Apple",
        "Gateway",
        "MSI",
        "Samsung",
        "Fujitsu",
    ),
    "camera": (
        "Canon",
        "Nikon",
        "Sony",
        "Olympus",
        "Panasonic",
        "Pentax",
        "Fujifilm",
        "Kodak",
        "Casio",
        "Leica",
        "Sigma",
        "Samsung",
    ),
    "furnishing": (
        "Ashley",
        "Croscill",
        "Waverly",
        "Laura Ashley",
        "Pem America",
        "Nautica",
        "Tommy Hilfiger",
        "Madison Park",
        "Intelligent Design",
        "Pinzon",
    ),
    "kitchen": (
        "KitchenAid",
        "Cuisinart",
        "Hamilton Beach",
        "Black & Decker",
        "Oster",
        "Breville",
        "Krups",
        "DeLonghi",
        "Presto",
        "Waring",
        "GE",
        "Whirlpool",
    ),
}

#: Fragments combined into synthetic model names ("Barracuda 7200.10").
MODEL_WORDS: Dict[str, Tuple[str, ...]] = {
    "storage": (
        "Barracuda",
        "Cheetah",
        "Momentus",
        "Raptor",
        "Caviar",
        "Deskstar",
        "Travelstar",
        "Spinpoint",
        "Scorpio",
        "Constellation",
    ),
    "computing": (
        "Latitude",
        "Inspiron",
        "Pavilion",
        "ThinkPad",
        "Satellite",
        "Aspire",
        "VAIO",
        "MacBook",
        "IdeaPad",
        "Precision",
        "EliteBook",
        "Vostro",
    ),
    "camera": (
        "EOS",
        "PowerShot",
        "Coolpix",
        "Alpha",
        "Cyber-shot",
        "Lumix",
        "FinePix",
        "Stylus",
        "EasyShare",
        "Exilim",
        "D-Series",
    ),
    "furnishing": (
        "Serenity",
        "Chelsea",
        "Hampton",
        "Willow",
        "Madison",
        "Regency",
        "Vineyard",
        "Cottage",
        "Heritage",
        "Somerset",
    ),
    "kitchen": (
        "Artisan",
        "Classic",
        "Professional",
        "Elite",
        "Custom",
        "Gourmet",
        "Premier",
        "Compact",
        "Signature",
        "Ultra",
    ),
}

#: Merchant-side synonyms of catalog attribute names.  The first element of
#: each tuple is implicitly the catalog name itself; the generator also
#: uses the catalog name verbatim with some probability, which is what
#: creates the name-identity candidates the automated training set relies
#: on (paper Section 3.2).
ATTRIBUTE_SYNONYMS: Dict[str, Tuple[str, ...]] = {
    "Brand": ("Manufacturer", "Brand Name", "Make", "Mfg"),
    "Model": ("Model Name", "Product Model", "Model No", "Series"),
    "Model Part Number": (
        "MPN",
        "Mfr. Part #",
        "Manufacturers Part Number",
        "Part Number",
        "Mfg Part No",
    ),
    "UPC": ("UPC Code", "Universal Product Code", "UPC Number"),
    "Capacity": (
        "Hard Disk Size",
        "Storage Capacity",
        "Hard Drive / Capacity",
        "Disk Capacity",
        "Size",
    ),
    "Interface": ("Interface Type", "Int. Type", "Connection Interface", "Drive Interface"),
    "Spindle Speed": ("RPM", "Rotational Speed", "Drive Speed", "Speed"),
    "Buffer Size": ("Cache", "Cache Size", "Buffer Memory", "Data Buffer"),
    "Form Factor": ("Disk Size", "Drive Form Factor", "Physical Size"),
    "Data Transfer Rate": ("Transfer Rate", "Max Transfer Rate", "Data Rate"),
    "Screen Size": ("Display Size", "Monitor Size", "Diagonal Size", "LCD Size"),
    "Resolution": ("Max Resolution", "Native Resolution", "Display Resolution", "Image Resolution"),
    "Processor Speed": ("CPU Speed", "Clock Speed", "Processor Frequency"),
    "Processor Type": ("CPU", "CPU Type", "Processor", "Chipset"),
    "Memory": ("RAM", "Installed Memory", "System Memory", "Memory Size"),
    "Hard Drive": ("HDD", "Hard Drive Capacity", "HD Size", "Storage"),
    "Operating System": ("OS", "OS Provided", "Platform", "Pre-loaded OS"),
    "Battery Life": ("Run Time", "Battery Run Time", "Max Battery Life"),
    "Weight": ("Item Weight", "Shipping Weight", "Product Weight", "Net Weight"),
    "Optical Zoom": ("Zoom", "Optical Zoom Factor", "Zoom Ratio"),
    "Sensor Type": ("Image Sensor", "Sensor", "CCD Type"),
    "Focal Length": ("Lens Focal Length", "Focal Range"),
    "ISO Rating": ("ISO", "ISO Sensitivity", "Light Sensitivity"),
    "LCD Size": ("Screen", "Display", "LCD Screen Size", "Monitor"),
    "Megapixels": ("Resolution (MP)", "Effective Pixels", "Camera Resolution", "MP"),
    "Color": ("Colour", "Color Family", "Finish", "Shade"),
    "Material": ("Fabric", "Fabric Content", "Composition", "Made Of"),
    "Thread Count": ("TC", "Threads Per Inch", "Fabric Thread Count"),
    "Dimensions": ("Size (WxDxH)", "Product Dimensions", "Measurements", "Overall Size"),
    "Pattern": ("Design", "Print", "Style"),
    "Care Instructions": ("Care", "Washing Instructions", "Cleaning"),
    "Wattage": ("Power", "Watts", "Power Consumption", "Power Rating"),
    "Voltage": ("Volts", "Input Voltage", "Power Supply"),
    "Number of Settings": ("Settings", "Speed Settings", "Speeds"),
    "Bowl Capacity": ("Capacity (Qt)", "Bowl Size", "Mixing Bowl Capacity"),
    "Number of Cups": ("Cup Capacity", "Cups", "Carafe Capacity"),
    "Lens Type": ("Lens", "Lens Mount", "Mount Type"),
    "Aperture": ("Max Aperture", "F-Stop", "Maximum Aperture"),
    "Graphics": ("Video Card", "Graphics Card", "GPU", "Graphics Processor"),
    "Refresh Rate": ("Vertical Refresh Rate", "Scan Rate"),
    "Contrast Ratio": ("Dynamic Contrast", "Contrast"),
    "Brightness": ("Luminance", "Brightness (cd/m2)"),
    "Fill Material": ("Fill", "Filling", "Stuffing"),
    "Seat Height": ("Height", "Chair Height", "Seat Elevation"),
    "Blade Material": ("Blade", "Blade Type", "Blade Construction"),
}

#: Attributes merchants add that have no catalog counterpart; schema
#: reconciliation should learn *no* correspondence for these and they
#: should therefore be filtered out of synthesized products.
JUNK_ATTRIBUTES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("Condition", ("New", "Refurbished", "Open Box", "Used")),
    ("Availability", ("In Stock", "Out of Stock", "2-3 Weeks", "Backordered")),
    ("Shipping", ("Free Shipping", "Ground", "2nd Day Air", "Freight")),
    ("Warranty", ("1 Year", "90 Days", "2 Years Limited", "3 Years On-site")),
    ("Returns", ("30 Day", "No Returns", "14 Day Restocking Fee")),
    ("SKU", ()),  # value generated as a random merchant-specific code
    ("Item Number", ()),
    ("Rebate", ("None", "$10 Mail-in", "$25 Mail-in", "Instant")),
)

#: Word pool for synthetic merchant names ("TechDepot", "MegaOutlet"...).
MERCHANT_NAME_WORDS: Tuple[Tuple[str, ...], Tuple[str, ...]] = (
    (
        "Tech",
        "Mega",
        "Super",
        "Value",
        "Prime",
        "Direct",
        "Digital",
        "Global",
        "Smart",
        "Best",
        "Quick",
        "Metro",
        "Urban",
        "Home",
        "Kitchen",
        "Photo",
    ),
    (
        "Depot",
        "Outlet",
        "Warehouse",
        "Store",
        "Mart",
        "Shop",
        "Source",
        "Supply",
        "World",
        "Zone",
        "Express",
        "Center",
        "Bazaar",
        "Gallery",
    ),
)

COLOR_POOL: Tuple[str, ...] = (
    "Black",
    "White",
    "Silver",
    "Blue",
    "Red",
    "Ivory",
    "Sage",
    "Chocolate",
    "Burgundy",
    "Taupe",
    "Navy",
    "Gold",
    "Espresso",
    "Stainless Steel",
)

MATERIAL_POOL: Tuple[str, ...] = (
    "100% Cotton",
    "Cotton Blend",
    "Polyester",
    "Microfiber",
    "Silk",
    "Linen",
    "Egyptian Cotton",
    "Rayon",
    "Velvet",
    "Stainless Steel",
    "Cast Iron",
    "Aluminum",
    "Glass",
    "Ceramic",
)
