"""Ground truth recorded by the corpus generator.

The paper's evaluation required "a laborious task of labeling the output of
product synthesis based on information from product manufacturers"
(Section 5.1).  Because our corpus is synthetic, the generator can record
the truth directly:

* which true product every offer was derived from (including offers for
  products deliberately withheld from the catalog);
* the full true specification of every product, cataloged or withheld;
* which catalog attribute every merchant attribute alias stands for
  (or ``None`` for junk attributes);
* the merchant-voiced specification rendered onto each landing page.

The evaluation oracle (:mod:`repro.evaluation.oracle`) consumes this
object to compute attribute precision, product precision, attribute recall
and correspondence precision without any manual labelling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.model.attributes import Specification
from repro.model.products import Product
from repro.text.normalize import normalize_attribute_name

__all__ = ["GroundTruth"]


@dataclass
class GroundTruth:
    """Complete generator-side truth for a synthetic corpus."""

    #: offer_id -> true product_id (every offer, matched or not).
    offer_to_product: Dict[str, str] = field(default_factory=dict)
    #: product_id -> full true product (cataloged and withheld/novel alike).
    true_products: Dict[str, Product] = field(default_factory=dict)
    #: product ids withheld from the catalog ("novel" products the run-time
    #: pipeline is expected to synthesize).
    novel_product_ids: Set[str] = field(default_factory=set)
    #: (merchant_id, category_id, normalised merchant attribute name) ->
    #: catalog attribute name; junk attributes are absent from this map.
    alias_to_catalog: Dict[Tuple[str, str, str], str] = field(default_factory=dict)
    #: offer_id -> merchant-voiced specification rendered on the landing page.
    offer_page_specs: Dict[str, Specification] = field(default_factory=dict)
    #: offer_id -> category_id assigned by the generator (true category).
    offer_true_category: Dict[str, str] = field(default_factory=dict)

    # -- recording (used by the generator) ---------------------------------

    def record_offer(
        self,
        offer_id: str,
        product_id: str,
        category_id: str,
        page_spec: Specification,
    ) -> None:
        """Record the provenance of one generated offer."""
        self.offer_to_product[offer_id] = product_id
        self.offer_true_category[offer_id] = category_id
        self.offer_page_specs[offer_id] = page_spec

    def record_product(self, product: Product, novel: bool) -> None:
        """Record a true product and whether it was withheld from the catalog."""
        self.true_products[product.product_id] = product
        if novel:
            self.novel_product_ids.add(product.product_id)

    def record_alias(
        self,
        merchant_id: str,
        category_id: str,
        merchant_attribute: str,
        catalog_attribute: Optional[str],
    ) -> None:
        """Record what a merchant attribute name means (``None`` = junk)."""
        if catalog_attribute is None:
            return
        key = (merchant_id, category_id, normalize_attribute_name(merchant_attribute))
        self.alias_to_catalog[key] = catalog_attribute

    # -- queries (used by the evaluation oracle) ----------------------------

    def true_product_for_offer(self, offer_id: str) -> Optional[Product]:
        """The true product an offer was derived from."""
        product_id = self.offer_to_product.get(offer_id)
        if product_id is None:
            return None
        return self.true_products.get(product_id)

    def catalog_attribute_for_alias(
        self, merchant_id: str, category_id: str, merchant_attribute: str
    ) -> Optional[str]:
        """The catalog attribute a merchant alias stands for, or ``None``."""
        key = (merchant_id, category_id, normalize_attribute_name(merchant_attribute))
        return self.alias_to_catalog.get(key)

    def is_correct_correspondence(
        self,
        catalog_attribute: str,
        merchant_attribute: str,
        merchant_id: str,
        category_id: str,
    ) -> bool:
        """Whether ⟨catalog attr, merchant attr, merchant, category⟩ is correct."""
        truth = self.catalog_attribute_for_alias(merchant_id, category_id, merchant_attribute)
        if truth is None:
            return False
        return normalize_attribute_name(truth) == normalize_attribute_name(catalog_attribute)

    def novel_products(self) -> List[Product]:
        """All products withheld from the catalog."""
        return [self.true_products[product_id] for product_id in sorted(self.novel_product_ids)]

    def offers_of_product(self, product_id: str) -> List[str]:
        """Ids of all offers derived from the given true product."""
        return [
            offer_id
            for offer_id, true_product in self.offer_to_product.items()
            if true_product == product_id
        ]
