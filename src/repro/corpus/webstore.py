"""An in-memory "web" of merchant landing pages.

The real system fetches the landing page behind every offer URL.  The
reproduction stores rendered pages in a :class:`WebStore` keyed by URL so
that the Web-page Attribute Extraction component exercises the identical
fetch → parse → extract code path without network access.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["WebStore", "PageNotFoundError"]


class PageNotFoundError(KeyError):
    """Raised when a URL has no stored page."""


class WebStore:
    """A URL -> HTML mapping with a tiny fetch API.

    Examples
    --------
    >>> store = WebStore()
    >>> store.put("http://example.com/p/1", "<html></html>")
    >>> store.fetch("http://example.com/p/1")
    '<html></html>'
    """

    def __init__(self) -> None:
        self._pages: Dict[str, str] = {}

    def put(self, url: str, html: str) -> None:
        """Store (or overwrite) the page behind ``url``."""
        if not url:
            raise ValueError("cannot store a page under an empty URL")
        self._pages[url] = html

    def fetch(self, url: str) -> str:
        """Return the page behind ``url``.

        Raises
        ------
        PageNotFoundError
            If the URL is unknown.
        """
        try:
            return self._pages[url]
        except KeyError:
            raise PageNotFoundError(url) from None

    def fetch_or_none(self, url: str) -> Optional[str]:
        """Return the page behind ``url`` or ``None`` when missing."""
        return self._pages.get(url)

    def has(self, url: str) -> bool:
        """Whether the store contains a page for ``url``."""
        return url in self._pages

    def urls(self) -> List[str]:
        """All stored URLs."""
        return list(self._pages.keys())

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages

    def __iter__(self) -> Iterator[str]:
        return iter(self._pages)
