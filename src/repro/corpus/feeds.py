"""Offer feeds: the tab-separated files merchants send to the search engine.

Paper Figure 3 shows a fragment of an offer feed with columns
``Source Url | Title | Description | Price | Seller | Category``.  The
classes here serialise offers into that shape and parse them back, so the
run-time pipeline can be fed from files exactly like the production system
is fed from merchant uploads.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from repro.model.offers import Offer

__all__ = ["FEED_COLUMNS", "write_feed", "read_feed", "offers_to_feed_rows"]

#: Column order of the merchant feed (mirrors paper Figure 3 plus the ids
#: needed to round-trip offers through files).
FEED_COLUMNS: Sequence[str] = (
    "offer_id",
    "merchant_id",
    "url",
    "title",
    "price",
    "feed_category",
    "image_url",
)


def offers_to_feed_rows(offers: Iterable[Offer]) -> List[List[str]]:
    """Convert offers to feed rows (without the header)."""
    rows: List[List[str]] = []
    for offer in offers:
        rows.append(
            [
                offer.offer_id,
                offer.merchant_id,
                offer.url,
                offer.title,
                f"{offer.price:.2f}",
                offer.feed_category,
                offer.image_url or "",
            ]
        )
    return rows


def write_feed(offers: Iterable[Offer], destination: Union[str, Path, io.TextIOBase]) -> int:
    """Write offers as a tab-separated feed; returns the number of rows written."""
    rows = offers_to_feed_rows(offers)
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="", encoding="utf-8") as handle:
            return _write_rows(handle, rows)
    return _write_rows(destination, rows)


def _write_rows(handle: io.TextIOBase, rows: List[List[str]]) -> int:
    writer = csv.writer(handle, delimiter="\t", lineterminator="\n")
    writer.writerow(list(FEED_COLUMNS))
    for row in rows:
        writer.writerow(row)
    return len(rows)


def read_feed(source: Union[str, Path, io.TextIOBase]) -> List[Offer]:
    """Parse a tab-separated feed back into offers (specifications empty).

    Raises
    ------
    ValueError
        If the header does not match :data:`FEED_COLUMNS`.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="", encoding="utf-8") as handle:
            return _read_rows(handle)
    return _read_rows(source)


def _read_rows(handle: io.TextIOBase) -> List[Offer]:
    reader = csv.reader(handle, delimiter="\t")
    try:
        header = next(reader)
    except StopIteration:
        return []
    if header != list(FEED_COLUMNS):
        raise ValueError(
            f"unexpected feed header: {header!r}; expected {list(FEED_COLUMNS)!r}"
        )
    offers: List[Offer] = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(FEED_COLUMNS):
            raise ValueError(f"malformed feed row (expected {len(FEED_COLUMNS)} columns): {row!r}")
        offer_id, merchant_id, url, title, price, feed_category, image_url = row
        offers.append(
            Offer(
                offer_id=offer_id,
                merchant_id=merchant_id,
                title=title,
                price=float(price) if price else 0.0,
                url=url,
                image_url=image_url or None,
                feed_category=feed_category,
            )
        )
    return offers
