"""The serving-side inverted keyword index over synthesized products.

:class:`CatalogIndex` turns the catalog the write path synthesizes into
a query target: every product is indexed as one *document* (its title
plus every attribute value, tokenised by the shared
:mod:`repro.text.tokenize` rules), postings map tokens to the products
containing them, and ranking is TF-IDF cosine — the same statistics
stack (:class:`repro.text.tfidf.IncrementalTfIdf`) the write path
already maintains per category, here maintained over the product corpus
so document frequencies stay exact under incremental updates.

Maintenance is incremental by design: :meth:`CatalogIndex.apply_commit`
consumes the engine's per-commit changed-product feed
(:class:`repro.runtime.CommitEvent`), upserting re-fused products in
place — product ids are content-derived from the cluster identity, so a
growing cluster keeps one document that is replaced, never duplicated.
:meth:`CatalogIndex.rebuild` is the full-rebuild fallback used when no
feed is available (a reader process resyncing from the store file).

The index itself is not thread-safe; the serving layer
(:class:`repro.serving.service.CatalogSearchService`) serialises
queries against updates so readers always observe a complete committed
prefix of the stream, never a half-applied batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.model.products import Product
from repro.runtime.engine import CommitEvent
from repro.synthesis.pipeline import stable_product_id
from repro.text.normalize import normalize_attribute_name, normalize_value
from repro.text.tfidf import IncrementalTfIdf
from repro.text.tokenize import tokenize_title, tokenize_value

__all__ = ["CatalogIndex", "SearchResult"]


@dataclass
class SearchResult:
    """One ranked hit of a :meth:`CatalogIndex.search` call."""

    product: Product
    #: TF-IDF cosine score in (0, 1]; ties broken by product id.
    score: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary (what the HTTP layer returns)."""
        return {
            "product_id": self.product.product_id,
            "category_id": self.product.category_id,
            "title": self.product.title,
            "score": round(self.score, 6),
            "num_attributes": self.product.num_attributes(),
        }


@dataclass
class _IndexedDocument:
    """One product's indexed representation."""

    product: Product
    #: The concatenated text the document was tokenised from (kept so
    #: removal can discard exactly what was added to the DF statistics).
    text: str
    #: token -> term frequency (count / document length).
    term_frequency: Dict[str, float]
    #: (normalised attribute name, normalised value) pairs for filters.
    attribute_pairs: Set[Tuple[str, str]] = field(default_factory=set)


def _product_text(product: Product) -> str:
    """The searchable document text of one product."""
    parts = [product.title]
    parts.extend(pair.value for pair in product.specification)
    return " ".join(part for part in parts if part)


class CatalogIndex:
    """Inverted TF-IDF index with category and attribute facets.

    Supports top-k ranked :meth:`search`, point lookups by product id
    (:meth:`get_product`), and the :meth:`count_by_category` facet.
    Updates are incremental (:meth:`upsert` / :meth:`remove` /
    :meth:`apply_commit`) with a full :meth:`rebuild` fallback.
    """

    #: Stats/CLI label distinguishing this backend from the FTS one.
    backend_name = "memory"

    def __init__(self, products: Iterable[Product] = ()) -> None:
        self._documents: Dict[str, _IndexedDocument] = {}
        #: token -> {product_id -> term frequency}.
        self._postings: Dict[str, Dict[str, float]] = {}
        self._stats = IncrementalTfIdf()
        self._category_counts: Dict[str, int] = {}
        #: product_id -> cached document vector norm; IDF values drift
        #: with every corpus change, so any mutation clears the cache.
        self._norm_cache: Dict[str, float] = {}
        for product in products:
            self.upsert(product)

    # -- maintenance -----------------------------------------------------------

    def upsert(self, product: Product) -> None:
        """Index a product, replacing any previous document with its id.

        Re-fused products keep their content-derived id, so the growing
        cluster's document is swapped in place and the DF statistics
        stay exact (the old text is discarded before the new is added).
        """
        self.remove(product.product_id)
        text = _product_text(product)
        tokens = tokenize_title(product.title)
        for pair in product.specification:
            tokens.extend(tokenize_value(pair.value))
        if not tokens:
            # A product with no tokenisable text is unsearchable but must
            # stay retrievable by id and countable in the facets.
            document = _IndexedDocument(product=product, text=text, term_frequency={})
        else:
            counts: Dict[str, int] = {}
            for token in tokens:
                counts[token] = counts.get(token, 0) + 1
            term_frequency = {
                token: count / len(tokens) for token, count in counts.items()
            }
            document = _IndexedDocument(
                product=product, text=text, term_frequency=term_frequency
            )
            self._stats.add(text)
            for token, frequency in term_frequency.items():
                self._postings.setdefault(token, {})[product.product_id] = frequency
        for pair in product.specification:
            document.attribute_pairs.add(
                (pair.normalized_name(), pair.normalized_value())
            )
        self._documents[product.product_id] = document
        self._category_counts[product.category_id] = (
            self._category_counts.get(product.category_id, 0) + 1
        )
        self._norm_cache = {}

    def remove(self, product_id: str) -> bool:
        """Drop a product from the index; ``False`` when it was absent."""
        document = self._documents.pop(product_id, None)
        if document is None:
            return False
        if document.term_frequency:
            self._stats.discard(document.text)
        for token in document.term_frequency:
            posting = self._postings.get(token)
            if posting is not None:
                posting.pop(product_id, None)
                if not posting:
                    del self._postings[token]
        category_id = document.product.category_id
        remaining = self._category_counts.get(category_id, 0) - 1
        if remaining <= 0:
            self._category_counts.pop(category_id, None)
        else:
            self._category_counts[category_id] = remaining
        self._norm_cache = {}
        return True

    def apply_commit(self, event: CommitEvent) -> int:
        """Fold one committed batch's changed products into the index.

        The incremental maintenance path: the engine's commit feed names
        every cluster the batch touched; clusters still below the
        emission threshold carry ``None`` and are dropped from the index
        (a no-op until they ever emitted).  Returns the number of
        documents upserted.
        """
        upserted = 0
        for cluster_id, product in event.changed:
            if product is None:
                self.remove(stable_product_id(*cluster_id))
            else:
                self.upsert(product)
                upserted += 1
        return upserted

    def rebuild(self, products: Iterable[Product]) -> None:
        """Replace the whole index with a fresh product snapshot.

        The full-rebuild fallback of the maintenance protocol — used by
        readers that have no commit feed (a separate serving process
        over the store file), mirroring how delta-protocol workers
        resync from the durable store when incremental state is
        unavailable.
        """
        self._documents = {}
        self._postings = {}
        self._stats = IncrementalTfIdf()
        self._category_counts = {}
        self._norm_cache = {}
        for product in products:
            self.upsert(product)

    # -- queries ---------------------------------------------------------------

    def _document_norm(self, product_id: str) -> float:
        norm = self._norm_cache.get(product_id)
        if norm is None:
            document = self._documents[product_id]
            norm = math.sqrt(
                sum(
                    (frequency * self._stats.idf(token)) ** 2
                    for token, frequency in document.term_frequency.items()
                )
            )
            self._norm_cache[product_id] = norm
        return norm

    def _matches_filters(
        self,
        document: _IndexedDocument,
        category: Optional[str],
        attributes: Optional[Dict[str, str]],
    ) -> bool:
        if category is not None and document.product.category_id != category:
            return False
        if attributes:
            for name, value in attributes.items():
                pair = (normalize_attribute_name(name), normalize_value(value))
                if pair not in document.attribute_pairs:
                    return False
        return True

    def search(
        self,
        query: str,
        top_k: int = 10,
        category: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> List[SearchResult]:
        """Top-k products by TF-IDF cosine against ``query``.

        ``category`` restricts hits to one catalog category;
        ``attributes`` is a name -> value map every hit's specification
        must contain (compared after the shared normalisation rules, so
        ``"Brand": "SEAGATE"`` matches a ``brand: Seagate`` pair).
        Results are deterministic: sorted by descending score, ties
        broken by product id.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        query_weights = self._stats.transform(query)
        if not query_weights:
            return []
        scores: Dict[str, float] = {}
        for token, query_weight in query_weights.items():
            posting = self._postings.get(token)
            if posting is None:
                continue
            token_idf = self._stats.idf(token)
            for product_id, frequency in posting.items():
                scores[product_id] = (
                    scores.get(product_id, 0.0) + query_weight * frequency * token_idf
                )
        ranked: List[SearchResult] = []
        for product_id, raw_score in scores.items():
            document = self._documents[product_id]
            if not self._matches_filters(document, category, attributes):
                continue
            norm = self._document_norm(product_id)
            if norm == 0.0:
                continue
            ranked.append(SearchResult(product=document.product, score=raw_score / norm))
        ranked.sort(key=lambda result: (-result.score, result.product.product_id))
        return ranked[:top_k]

    def get_product(self, product_id: str) -> Optional[Product]:
        """The indexed product with this id, or ``None``."""
        document = self._documents.get(product_id)
        return None if document is None else document.product

    def count_by_category(self) -> Dict[str, int]:
        """category_id -> number of indexed products, sorted by id."""
        return dict(sorted(self._category_counts.items()))

    # -- statistics ------------------------------------------------------------

    @property
    def num_products(self) -> int:
        """Number of products currently indexed."""
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        """Distinct tokens across all indexed documents."""
        return self._stats.vocabulary_size

    def stats(self) -> Dict[str, int]:
        """JSON-compatible index statistics."""
        return {
            "num_products": self.num_products,
            "num_categories": len(self._category_counts),
            "vocabulary_size": self.vocabulary_size,
            "num_postings": len(self._postings),
        }
