"""The read side: snapshot-isolated query serving over the catalog.

Everything before this package scales the *write* path — streaming
ingest, durable stores, multi-node and multi-process clusters.  This
package serves the synthesized catalog to readers, isolated from the
writers in the HTAP style (an independent read engine fed by update
propagation from the transactional side):

``index``
    :class:`~repro.serving.index.CatalogIndex` — an inverted TF-IDF
    keyword index over product titles and attribute values with top-k
    ranked search, category/attribute filters, and faceted counts;
    maintained incrementally from the engine's commit feed with a
    full-rebuild fallback.
``fts``
    :class:`~repro.serving.fts.FtsCatalogIndex` — the SQLite FTS5
    backend behind the same index surface: documents, postings and the
    ``product_search`` virtual table live in SQLite instead of Python
    dicts, with rankings provably bit-identical to the memory index
    (select with ``--index-backend fts``).
``reader``
    :class:`~repro.serving.reader.CatalogReader` — a read-only WAL
    connection onto the shared store file, so queries run concurrently
    with a live ingesting engine and observe only committed batches
    (keyset-paged disk reads, LRU page cache, snapshot identity via the
    store's persistent commit counter, and journal deltas via
    ``read_delta`` so resyncs cost O(changed), not O(catalog)).
``service``
    :class:`~repro.serving.service.CatalogSearchService` — the facade
    gluing index to feed or reader, with the snapshot-isolation
    guarantee: a query never sees a half-applied batch.
``fleet``
    :class:`~repro.serving.fleet.ServingFleet` — N replicated services
    over one shared store behind a least-in-flight front: per-request
    snapshot pinning, bounded divergence (``max_lag_commits``) with a
    background refresher, fault route-around, and replica restart.
``http``
    Stdlib JSON endpoints (``/search``, ``/product/<id>``, ``/health``,
    ``/lag``, ``/stats``) behind the ``runtime-serve`` CLI command,
    fronting either a single service or a fleet, optionally with a
    bounded worker pool.
"""

from repro.serving.fleet import FleetSearchResponse, FleetUnavailableError, ServingFleet
from repro.serving.fts import FtsCatalogIndex, create_catalog_index, fts5_available
from repro.serving.http import CatalogHTTPServer, serve
from repro.serving.index import CatalogIndex, SearchResult
from repro.serving.reader import CatalogReader, StaleSnapshotError
from repro.serving.service import CatalogSearchService

__all__ = [
    "CatalogIndex",
    "FtsCatalogIndex",
    "create_catalog_index",
    "fts5_available",
    "SearchResult",
    "CatalogReader",
    "StaleSnapshotError",
    "CatalogSearchService",
    "ServingFleet",
    "FleetSearchResponse",
    "FleetUnavailableError",
    "CatalogHTTPServer",
    "serve",
]
