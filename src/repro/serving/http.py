"""JSON-over-HTTP serving endpoints (stdlib ``http.server`` only).

The ``runtime-serve`` CLI command and the tests/examples both run this
tiny server: a :class:`CatalogHTTPServer` (threading, optionally with a
bounded worker pool) that answers

* ``GET /search?q=<text>&k=<top-k>&category=<id>&attr=<Name=Value>`` —
  ranked top-k search (``attr`` may repeat; every pair must match),
* ``GET /product/<product-id>`` — full product JSON by id,
* ``GET /health`` — liveness: fleet/replica health, 503 when no replica
  can serve,
* ``GET /lag`` — per-replica pinned ``commit_count`` vs the store head,
* ``GET /stats`` — service, index, and snapshot statistics,
* ``GET /metrics`` — the process metrics registry in Prometheus text
  exposition format (scrape target; see docs/observability.md),
* ``GET /metrics.json`` — the same snapshot as JSON (what the
  ``runtime-obs`` CLI pretty-prints).

Every request is timed into the ``http_request_seconds`` histogram,
labelled by endpoint.

The server fronts either a single
:class:`~repro.serving.service.CatalogSearchService` or a whole
:class:`~repro.serving.fleet.ServingFleet` — the handler only branches
on which endpoints attribute extra routing metadata (``replica``).  All
query semantics (ranking, filters, snapshot discipline, load balancing,
route-around) live below the HTTP layer, which therefore needs no
locking of its own.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.model.persistence import product_to_dict
from repro.obs import MetricsRegistry, get_registry
from repro.serving.fleet import FleetUnavailableError, ServingFleet
from repro.serving.service import CatalogSearchService

__all__ = ["CatalogHTTPServer", "CatalogRequestHandler", "serve"]

#: Hard cap on ``k`` so a typo cannot ask the index for a million hits.
_MAX_TOP_K = 1000

#: Either back end the server can front.
ServingTarget = Union[CatalogSearchService, ServingFleet]


class CatalogRequestHandler(BaseHTTPRequestHandler):
    """Route table for the serving endpoints."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Quiet by default; benchmark traffic would spam one line per request.

        ``CatalogHTTPServer(log_requests=True)`` restores the stdlib
        per-request stderr logging for interactive runs.
        """
        if getattr(self.server, "log_requests", False):
            super().log_message(format, *args)

    @property
    def _target(self) -> ServingTarget:
        return self.server.service  # type: ignore[attr-defined]

    @property
    def _fleet(self) -> Optional[ServingFleet]:
        target = self._target
        return target if isinstance(target, ServingFleet) else None

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    _ENDPOINTS = ("/search", "/health", "/lag", "/stats", "/metrics", "/metrics.json")

    @property
    def _registry(self) -> "MetricsRegistry":
        return self.server.registry  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        """Dispatch one GET request to its endpoint (timed per endpoint)."""
        parsed = urlparse(self.path)
        # Bounded label cardinality: known endpoints by literal path,
        # point lookups collapse to "/product", everything else "other".
        if parsed.path in self._ENDPOINTS:
            endpoint = parsed.path
        elif parsed.path.startswith("/product/"):
            endpoint = "/product"
        else:
            endpoint = "other"
        started = time.perf_counter()
        try:
            if parsed.path == "/search":
                self._do_search(parse_qs(parsed.query))
            elif parsed.path.startswith("/product/"):
                self._do_product(parsed.path[len("/product/") :])
            elif parsed.path == "/health":
                self._do_health()
            elif parsed.path == "/lag":
                self._do_lag()
            elif parsed.path == "/stats":
                self._reply(200, self._target.stats())
            elif parsed.path == "/metrics":
                self._do_metrics()
            elif parsed.path == "/metrics.json":
                self._reply(200, self._registry.snapshot())
            else:
                self._error(404, f"unknown endpoint {parsed.path!r}")
        finally:
            self._registry.histogram(
                "http_request_seconds",
                help="Serving endpoint latency, by endpoint.",
                labels={"endpoint": endpoint},
            ).observe(time.perf_counter() - started)

    def _do_metrics(self) -> None:
        """The registry in Prometheus text exposition format."""
        body = self._registry.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _parse_search_params(
        self, params: Dict[str, list]
    ) -> Tuple[str, int, Optional[str], Optional[Dict[str, str]]]:
        query = params.get("q", [""])[0]
        if not query.strip():
            raise ValueError("missing or empty query parameter 'q'")
        raw_k = params.get("k", ["10"])[0]
        try:
            top_k = int(raw_k)
        except ValueError:
            raise ValueError(f"parameter 'k' must be an integer, got {raw_k!r}")
        if not 1 <= top_k <= _MAX_TOP_K:
            raise ValueError(f"parameter 'k' must be in [1, {_MAX_TOP_K}], got {top_k}")
        category = params.get("category", [None])[0]
        attributes: Optional[Dict[str, str]] = None
        for pair in params.get("attr", []):
            name, separator, value = pair.partition("=")
            if not separator or not name or not value:
                raise ValueError(
                    f"parameter 'attr' must look like Name=Value, got {pair!r}"
                )
            attributes = attributes or {}
            attributes[name] = value
        return query, top_k, category, attributes

    def _do_search(self, params: Dict[str, list]) -> None:
        try:
            query, top_k, category, attributes = self._parse_search_params(params)
        except ValueError as error:
            self._error(400, str(error))
            return
        payload: Dict[str, object] = {"query": query, "top_k": top_k}
        fleet = self._fleet
        try:
            if fleet is not None:
                response = fleet.search(
                    query, top_k=top_k, category=category, attributes=attributes
                )
                snapshot, results = response.snapshot_commit_count, response.results
                payload["replica"] = response.replica_id
            else:
                snapshot, results = self._target.search_pinned(  # type: ignore[union-attr]
                    query, top_k=top_k, category=category, attributes=attributes
                )
        except FleetUnavailableError as error:
            self._error(503, str(error))
            return
        payload.update(
            {
                "snapshot_commit_count": snapshot,
                "num_results": len(results),
                "results": [result.to_dict() for result in results],
            }
        )
        self._reply(200, payload)

    def _do_product(self, product_id: str) -> None:
        if not product_id:
            self._error(400, "missing product id")
            return
        fleet = self._fleet
        try:
            if fleet is not None:
                replica_id, snapshot, product = fleet.get_product(product_id)
            else:
                replica_id = None
                snapshot, product = self._target.get_product_pinned(product_id)  # type: ignore[union-attr]
        except FleetUnavailableError as error:
            self._error(503, str(error))
            return
        if product is None:
            self._error(404, f"no product with id {product_id!r}")
            return
        payload = product_to_dict(product)
        payload["snapshot_commit_count"] = snapshot
        if replica_id is not None:
            payload["replica"] = replica_id
        self._reply(200, payload)

    def _do_health(self) -> None:
        fleet = self._fleet
        if fleet is not None:
            payload = fleet.health()
            self._reply(200 if payload["healthy"] else 503, payload)
            return
        service = self._target
        self._reply(
            200,
            {
                "healthy": True,
                "num_replicas": 1,
                "healthy_replicas": 1,
                "snapshot_commit_count": service.snapshot_commit_count,  # type: ignore[union-attr]
            },
        )

    def _do_lag(self) -> None:
        fleet = self._fleet
        if fleet is not None:
            self._reply(200, fleet.lag())
            return
        service = self._target
        snapshot = service.snapshot_commit_count  # type: ignore[union-attr]
        head = service.head_commit_count()  # type: ignore[union-attr]
        resync = service.resync_stats()  # type: ignore[union-attr]
        entry: Dict[str, object] = {
            "replica_id": 0,
            "healthy": True,
            "snapshot_commit_count": snapshot,
            "lag": max(0, head - snapshot),
            "resync": resync,
        }
        entry.update(resync)  # deprecated flat aliases (one release)
        self._reply(
            200,
            {
                "head_commit_count": head,
                "max_lag_commits": 0,
                "max_lag": max(0, head - snapshot),
                "replicas": [entry],
            },
        )


class CatalogHTTPServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one service or serving fleet.

    ``port=0`` binds an ephemeral port (tests and examples);
    ``server_address`` reports the actual one after construction.
    Start it with ``serve_forever()`` (blocking) or on a daemon thread.

    By default every connection gets its own thread (the stdlib
    ``ThreadingHTTPServer`` behaviour).  ``max_workers=N`` switches to a
    **bounded worker pool**: accepted connections queue up and exactly
    ``N`` pre-started workers drain them, so a traffic burst degrades
    into queueing delay instead of thousands of threads — the shape a
    replica fleet wants, since more threads than replicas only adds
    lock contention.
    """

    #: Worker threads die with the process; a hung client never blocks
    #: shutdown of a drill or test run.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: ServingTarget,
        log_requests: bool = False,
        max_workers: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        super().__init__(address, CatalogRequestHandler)
        self.service = service
        self.registry = registry if registry is not None else get_registry()
        self.log_requests = log_requests
        self._max_workers = max_workers
        self._work_queue: Optional["queue.Queue[Optional[Tuple[object, object]]]"] = None
        self._workers: List[threading.Thread] = []
        if max_workers is not None:
            self._work_queue = queue.Queue()
            for worker_id in range(max_workers):
                worker = threading.Thread(
                    target=self._worker_loop,
                    name=f"http-worker-{worker_id}",
                    daemon=True,
                )
                worker.start()
                self._workers.append(worker)

    def process_request(self, request, client_address) -> None:  # noqa: ANN001
        """Hand the accepted connection to the pool (or a fresh thread)."""
        if self._work_queue is None:
            super().process_request(request, client_address)
        else:
            self._work_queue.put((request, client_address))

    def _worker_loop(self) -> None:
        assert self._work_queue is not None
        while True:
            item = self._work_queue.get()
            if item is None:
                return
            request, client_address = item
            # Same finish/shutdown/error handling a per-request thread
            # would run, minus the thread churn.
            self.process_request_thread(request, client_address)

    def server_close(self) -> None:
        """Stop the listener, then drain and join the worker pool."""
        super().server_close()
        if self._work_queue is not None:
            for _ in self._workers:
                self._work_queue.put(None)
            for worker in self._workers:
                worker.join(timeout=5)
            self._workers = []


def serve(
    service: ServingTarget,
    host: str = "127.0.0.1",
    port: int = 8080,
    log_requests: bool = True,
    max_workers: Optional[int] = None,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Run the serving endpoints until interrupted (the CLI entry point)."""
    server = CatalogHTTPServer(
        (host, port),
        service,
        log_requests=log_requests,
        max_workers=max_workers,
        registry=registry,
    )
    bound_host, bound_port = server.server_address[:2]
    mode = (
        f"fleet of {service.num_replicas} replicas"
        if isinstance(service, ServingFleet)
        else "single service"
    )
    pool = f", {max_workers} workers" if max_workers is not None else ""
    print(f"runtime-serve: listening on http://{bound_host}:{bound_port} ({mode}{pool})")
    print(
        "  endpoints: /search?q=...&k=10  /product/<id>  /health  /lag  /stats"
        "  /metrics  /metrics.json"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nruntime-serve: shutting down")
    finally:
        server.server_close()
        service.close()
