"""JSON-over-HTTP serving endpoints (stdlib ``http.server`` only).

The ``runtime-serve`` CLI command and the tests/examples both run this
tiny server: a :class:`CatalogHTTPServer` (threading) that answers

* ``GET /search?q=<text>&k=<top-k>&category=<id>&attr=<Name=Value>`` —
  ranked top-k search (``attr`` may repeat; every pair must match),
* ``GET /product/<product-id>`` — full product JSON by id,
* ``GET /stats`` — service, index, and snapshot statistics.

Every response is JSON.  The handler is deliberately thin: all query
semantics (ranking, filters, snapshot discipline) live in
:class:`~repro.serving.service.CatalogSearchService`, which serialises
index access, so the threading server needs no extra locking here.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.model.persistence import product_to_dict
from repro.serving.service import CatalogSearchService

__all__ = ["CatalogHTTPServer", "CatalogRequestHandler", "serve"]

#: Hard cap on ``k`` so a typo cannot ask the index for a million hits.
_MAX_TOP_K = 1000


class CatalogRequestHandler(BaseHTTPRequestHandler):
    """Route table for the three serving endpoints."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Quiet by default; benchmark traffic would spam one line per request.

        ``CatalogHTTPServer(log_requests=True)`` restores the stdlib
        per-request stderr logging for interactive runs.
        """
        if getattr(self.server, "log_requests", False):
            super().log_message(format, *args)

    @property
    def _service(self) -> CatalogSearchService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        """Dispatch one GET request to its endpoint."""
        parsed = urlparse(self.path)
        if parsed.path == "/search":
            self._do_search(parse_qs(parsed.query))
        elif parsed.path.startswith("/product/"):
            self._do_product(parsed.path[len("/product/") :])
        elif parsed.path == "/stats":
            self._reply(200, self._service.stats())
        else:
            self._error(404, f"unknown endpoint {parsed.path!r}")

    def _parse_search_params(
        self, params: Dict[str, list]
    ) -> Tuple[str, int, Optional[str], Optional[Dict[str, str]]]:
        query = params.get("q", [""])[0]
        if not query.strip():
            raise ValueError("missing or empty query parameter 'q'")
        raw_k = params.get("k", ["10"])[0]
        try:
            top_k = int(raw_k)
        except ValueError:
            raise ValueError(f"parameter 'k' must be an integer, got {raw_k!r}")
        if not 1 <= top_k <= _MAX_TOP_K:
            raise ValueError(f"parameter 'k' must be in [1, {_MAX_TOP_K}], got {top_k}")
        category = params.get("category", [None])[0]
        attributes: Optional[Dict[str, str]] = None
        for pair in params.get("attr", []):
            name, separator, value = pair.partition("=")
            if not separator or not name or not value:
                raise ValueError(
                    f"parameter 'attr' must look like Name=Value, got {pair!r}"
                )
            attributes = attributes or {}
            attributes[name] = value
        return query, top_k, category, attributes

    def _do_search(self, params: Dict[str, list]) -> None:
        try:
            query, top_k, category, attributes = self._parse_search_params(params)
        except ValueError as error:
            self._error(400, str(error))
            return
        results = self._service.search(
            query, top_k=top_k, category=category, attributes=attributes
        )
        self._reply(
            200,
            {
                "query": query,
                "top_k": top_k,
                "snapshot_commit_count": self._service.snapshot_commit_count,
                "num_results": len(results),
                "results": [result.to_dict() for result in results],
            },
        )

    def _do_product(self, product_id: str) -> None:
        if not product_id:
            self._error(400, "missing product id")
            return
        product = self._service.get_product(product_id)
        if product is None:
            self._error(404, f"no product with id {product_id!r}")
            return
        payload = product_to_dict(product)
        payload["snapshot_commit_count"] = self._service.snapshot_commit_count
        self._reply(200, payload)


class CatalogHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`CatalogSearchService`.

    ``port=0`` binds an ephemeral port (tests and examples);
    ``server_address`` reports the actual one after construction.
    Start it with ``serve_forever()`` (blocking) or on a daemon thread.
    """

    #: Worker threads die with the process; a hung client never blocks
    #: shutdown of a drill or test run.
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: CatalogSearchService,
        log_requests: bool = False,
    ) -> None:
        super().__init__(address, CatalogRequestHandler)
        self.service = service
        self.log_requests = log_requests


def serve(
    service: CatalogSearchService,
    host: str = "127.0.0.1",
    port: int = 8080,
    log_requests: bool = True,
) -> None:
    """Run the serving endpoints until interrupted (the CLI entry point)."""
    server = CatalogHTTPServer((host, port), service, log_requests=log_requests)
    bound_host, bound_port = server.server_address[:2]
    print(f"runtime-serve: listening on http://{bound_host}:{bound_port}")
    print("  endpoints: /search?q=...&k=10  /product/<id>  /stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nruntime-serve: shutting down")
    finally:
        server.server_close()
        service.close()
