"""SQLite FTS5 backend for the serving-side catalog index.

:class:`FtsCatalogIndex` keeps the product corpus — documents, posting
lists, attribute pairs and the FTS5 ``product_search`` virtual table —
in an SQLite database instead of Python dicts, so a million-product
index lives on disk (or in SQLite's own memory space) rather than in
interpreter RAM.  It exposes exactly the :class:`~repro.serving.index.CatalogIndex`
surface (``search`` / ``get_product`` / ``count_by_category`` /
``upsert`` / ``remove`` / ``apply_commit`` / ``rebuild`` / ``stats``)
and is selectable end to end via ``runtime-serve --index-backend fts``.

Ranking parity
--------------
The contract is *bit-identical* rankings against the in-memory index:
same scores, same top-k ids, same product-id tie-breaks.  Three design
points make that provable rather than approximate:

* **Shared statistics.**  The corpus DF table is the same
  :class:`repro.text.tfidf.IncrementalTfIdf` object the in-memory index
  uses (vocabulary-sized, so it stays cheap); query vectors come from
  the very same ``transform`` call.  Only the per-product state —
  documents, postings, facet rows — moves to SQLite.
* **Token-stream FTS body.**  The FTS row is the *tokeniser's output*
  (``" ".join(tokens)``), not the raw text.  FTS5's ``unicode61``
  tokeniser disagrees with :func:`repro.text.tokenize.tokenize` on
  inputs like ``café`` (``cafe`` vs ``caf``); indexing the token stream
  makes FTS candidate retrieval a provable superset of the exact
  matching set, whatever the raw text looked like.
* **Exact rescoring.**  FTS5's bm25 is not TF-IDF cosine, so MATCH only
  *retrieves* candidates; scores are recomputed from the stored term
  frequencies with the same expressions, in the same accumulation order
  (query-token order for scores, first-occurrence order for document
  norms), as the in-memory index.  False-positive candidates (an FTS
  phrase like ``"3 5"`` for the decimal token ``3.5``) contribute no
  exact posting row and drop out with no score.

The hypothesis suite in ``tests/test_serving_index_equivalence.py``
drives both backends with identical query streams and asserts identical
ranked ``(id, score)`` fingerprints.

The index is a rebuildable cache, never the durable catalog (that is
the store file): the schema is dropped and recreated at construction,
``synchronous=OFF`` and a memory journal are safe, and a crash simply
means the service rebuilds on restart.
"""

from __future__ import annotations

import json
import math
import sqlite3
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.model.persistence import product_from_dict, product_to_dict
from repro.model.products import Product
from repro.runtime.engine import CommitEvent
from repro.serving.index import CatalogIndex, SearchResult, _product_text
from repro.synthesis.pipeline import stable_product_id
from repro.text.normalize import normalize_attribute_name, normalize_value
from repro.text.tfidf import IncrementalTfIdf
from repro.text.tokenize import tokenize_title, tokenize_value

__all__ = ["FtsCatalogIndex", "create_catalog_index", "fts5_available"]

#: SQLite's default host-parameter limit is 999; stay safely below it
#: when expanding ``IN (...)`` lists.
_IN_CHUNK = 500

_INDEX_SCHEMA = """
DROP TABLE IF EXISTS product_search;
DROP TABLE IF EXISTS doc_tokens;
DROP TABLE IF EXISTS attribute_pairs;
DROP TABLE IF EXISTS listing;
CREATE TABLE listing (
    id INTEGER PRIMARY KEY,
    product_id TEXT NOT NULL UNIQUE,
    category_id TEXT NOT NULL,
    product TEXT NOT NULL,
    text TEXT NOT NULL,
    num_tokens INTEGER NOT NULL
);
CREATE TABLE doc_tokens (
    product_id TEXT NOT NULL,
    ordinal INTEGER NOT NULL,
    token TEXT NOT NULL,
    tf REAL NOT NULL,
    PRIMARY KEY (product_id, ordinal)
) WITHOUT ROWID;
CREATE INDEX doc_tokens_by_token ON doc_tokens (token);
CREATE TABLE attribute_pairs (
    product_id TEXT NOT NULL,
    name TEXT NOT NULL,
    value TEXT NOT NULL,
    PRIMARY KEY (product_id, name, value)
) WITHOUT ROWID;
CREATE VIRTUAL TABLE product_search USING fts5(body, product_id UNINDEXED);
"""


def fts5_available() -> bool:
    """Whether this interpreter's SQLite build ships the FTS5 module."""
    connection = sqlite3.connect(":memory:")
    try:
        connection.execute("CREATE VIRTUAL TABLE _probe USING fts5(body)")
        return True
    except sqlite3.OperationalError:
        return False
    finally:
        connection.close()


def create_catalog_index(backend: str = "memory", path: Optional[str] = None):
    """Build a catalog index of the requested backend.

    ``"memory"`` is the in-Python :class:`CatalogIndex`; ``"fts"`` the
    SQLite-backed :class:`FtsCatalogIndex` (``path=None`` keeps it in
    SQLite's ``:memory:`` database).  The single construction point the
    service, fleet and CLI all route through.
    """
    if backend == "memory":
        return CatalogIndex()
    if backend == "fts":
        return FtsCatalogIndex(path=path)
    raise ValueError(
        f"unknown index backend {backend!r}; expected one of ['memory', 'fts']"
    )


def _chunked(values: Sequence[str]) -> Iterator[Sequence[str]]:
    for start in range(0, len(values), _IN_CHUNK):
        yield values[start : start + _IN_CHUNK]


class FtsCatalogIndex:
    """Disk-backed catalog index over SQLite FTS5, ranking-parity exact.

    Drop-in for :class:`CatalogIndex`: the serving layer treats the two
    interchangeably (``backend_name`` tells them apart in stats).  Not
    thread-safe by itself — like the in-memory index, the owning
    :class:`~repro.serving.service.CatalogSearchService` serialises
    queries against updates under its lock.
    """

    backend_name = "fts"

    def __init__(
        self, path: Optional[str] = None, products: Iterable[Product] = ()
    ) -> None:
        self._path = path or ":memory:"
        # check_same_thread=False: the service lock serialises access but
        # calls arrive from HTTP worker threads.  isolation_level=None
        # gives explicit BEGIN/COMMIT control for batched maintenance.
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            self._path, check_same_thread=False, isolation_level=None
        )
        # A rebuildable cache: durability is the store file's job.
        self._connection.execute("PRAGMA synchronous=OFF")
        self._connection.execute("PRAGMA journal_mode=MEMORY")
        self._connection.executescript(_INDEX_SCHEMA)
        self._stats = IncrementalTfIdf()
        self._num_products = 0
        self._in_txn = False
        #: product_id -> cached document vector norm; IDF values drift
        #: with every corpus change, so any mutation clears the cache.
        self._norm_cache: Dict[str, float] = {}
        if products:
            self.rebuild(products)

    # -- lifecycle -------------------------------------------------------------

    def _require_open(self) -> sqlite3.Connection:
        if self._connection is None:
            raise RuntimeError("FTS catalog index is closed")
        return self._connection

    def close(self) -> None:
        """Release the SQLite connection (idempotent)."""
        if self._connection is None:
            return
        self._connection.close()
        self._connection = None

    def __enter__(self) -> "FtsCatalogIndex":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()

    # -- maintenance -----------------------------------------------------------

    def _begin(self) -> bool:
        """Open a transaction unless one is already running; True if opened."""
        if self._in_txn:
            return False
        self._require_open().execute("BEGIN")
        self._in_txn = True
        return True

    def _end(self, opened: bool, ok: bool) -> None:
        if not opened:
            return
        self._require_open().execute("COMMIT" if ok else "ROLLBACK")
        self._in_txn = False

    def upsert(self, product: Product) -> None:
        """Index a product, replacing any previous document with its id.

        Mirrors :meth:`CatalogIndex.upsert` operation for operation —
        including the remove-before-add that keeps the shared DF
        statistics exact under replacement.
        """
        connection = self._require_open()
        opened = self._begin()
        ok = False
        try:
            self._remove_locked(product.product_id)
            text = _product_text(product)
            tokens = tokenize_title(product.title)
            for pair in product.specification:
                tokens.extend(tokenize_value(pair.value))
            cursor = connection.execute(
                "INSERT INTO listing (product_id, category_id, product, text, num_tokens)"
                " VALUES (?, ?, ?, ?, ?)",
                (
                    product.product_id,
                    product.category_id,
                    json.dumps(product_to_dict(product)),
                    text,
                    len(tokens),
                ),
            )
            if tokens:
                self._stats.add(text)
                counts: Dict[str, int] = {}
                for token in tokens:
                    counts[token] = counts.get(token, 0) + 1
                connection.executemany(
                    "INSERT INTO doc_tokens (product_id, ordinal, token, tf)"
                    " VALUES (?, ?, ?, ?)",
                    [
                        (product.product_id, ordinal, token, count / len(tokens))
                        for ordinal, (token, count) in enumerate(counts.items())
                    ],
                )
                connection.execute(
                    "INSERT INTO product_search (rowid, body, product_id)"
                    " VALUES (?, ?, ?)",
                    (cursor.lastrowid, " ".join(tokens), product.product_id),
                )
            pairs = {
                (pair.normalized_name(), pair.normalized_value())
                for pair in product.specification
            }
            if pairs:
                connection.executemany(
                    "INSERT OR IGNORE INTO attribute_pairs (product_id, name, value)"
                    " VALUES (?, ?, ?)",
                    [(product.product_id, name, value) for name, value in sorted(pairs)],
                )
            self._num_products += 1
            self._norm_cache = {}
            ok = True
        finally:
            self._end(opened, ok)

    def _remove_locked(self, product_id: str) -> bool:
        """Remove a document inside the caller's transaction."""
        connection = self._require_open()
        row = connection.execute(
            "SELECT id, text, num_tokens FROM listing WHERE product_id = ?",
            (product_id,),
        ).fetchone()
        if row is None:
            return False
        rowid, text, num_tokens = row
        if num_tokens:
            self._stats.discard(text)
            connection.execute(
                "DELETE FROM doc_tokens WHERE product_id = ?", (product_id,)
            )
            connection.execute("DELETE FROM product_search WHERE rowid = ?", (rowid,))
        connection.execute(
            "DELETE FROM attribute_pairs WHERE product_id = ?", (product_id,)
        )
        connection.execute("DELETE FROM listing WHERE id = ?", (rowid,))
        self._num_products -= 1
        self._norm_cache = {}
        return True

    def remove(self, product_id: str) -> bool:
        """Drop a product from the index; ``False`` when it was absent."""
        opened = self._begin()
        ok = False
        try:
            removed = self._remove_locked(product_id)
            ok = True
            return removed
        finally:
            self._end(opened, ok)

    def apply_commit(self, event: CommitEvent) -> int:
        """Fold one committed batch's changed products into the index.

        One SQLite transaction per batch — readers of a shared index
        file could otherwise observe half a commit, and batching is also
        what keeps ingest-speed maintenance cheap.
        """
        opened = self._begin()
        ok = False
        upserted = 0
        try:
            for cluster_id, product in event.changed:
                if product is None:
                    self._remove_locked(stable_product_id(*cluster_id))
                else:
                    self.upsert(product)
                    upserted += 1
            ok = True
        finally:
            self._end(opened, ok)
        return upserted

    def rebuild(self, products: Iterable[Product]) -> None:
        """Replace the whole index with a fresh product snapshot."""
        connection = self._require_open()
        opened = self._begin()
        ok = False
        try:
            connection.execute("DELETE FROM listing")
            connection.execute("DELETE FROM doc_tokens")
            connection.execute("DELETE FROM attribute_pairs")
            connection.execute("DELETE FROM product_search")
            self._stats = IncrementalTfIdf()
            self._num_products = 0
            self._norm_cache = {}
            for product in products:
                self.upsert(product)
            ok = True
        finally:
            self._end(opened, ok)

    # -- queries ---------------------------------------------------------------

    def _fts_candidates(self, tokens: Iterable[str]) -> Optional[List[str]]:
        """Product ids whose token stream FTS-matches any query token.

        The candidate-generation half of the search path.  Because the
        FTS body is the token stream, every product sharing an exact
        token with the query is guaranteed to be returned (possibly with
        phrase-induced false positives, which exact rescoring drops).
        Returns ``None`` when no token survives FTS quoting.
        """
        connection = self._require_open()
        quoted = ['"{}"'.format(token.replace('"', '""')) for token in tokens]
        if not quoted:
            return None
        return [
            product_id
            for (product_id,) in connection.execute(
                "SELECT product_id FROM product_search WHERE product_search MATCH ?",
                (" OR ".join(quoted),),
            )
        ]

    def _document_norm(self, product_id: str) -> float:
        norm = self._norm_cache.get(product_id)
        if norm is None:
            rows = self._require_open().execute(
                "SELECT token, tf FROM doc_tokens WHERE product_id = ?"
                " ORDER BY ordinal",
                (product_id,),
            ).fetchall()
            # Same expression and same (first-occurrence) accumulation
            # order as CatalogIndex._document_norm — bit-identical.
            norm = math.sqrt(
                sum((frequency * self._stats.idf(token)) ** 2 for token, frequency in rows)
            )
            self._norm_cache[product_id] = norm
        return norm

    def search(
        self,
        query: str,
        top_k: int = 10,
        category: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> List[SearchResult]:
        """Top-k products by TF-IDF cosine against ``query``.

        Same contract (and same rankings, scores and tie-breaks) as
        :meth:`CatalogIndex.search`; only the retrieval machinery
        differs: FTS5 MATCH proposes candidates, the stored term
        frequencies rescore them exactly.
        """
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        connection = self._require_open()
        query_weights = self._stats.transform(query)
        if not query_weights:
            return []
        candidates = self._fts_candidates(query_weights)
        if not candidates:
            return []
        candidate_set = set(candidates)
        # Exact rescoring: accumulate per-product contributions in query
        # token order — the same per-product addition sequence as the
        # in-memory index's token-major loop, so floats agree exactly.
        scores: Dict[str, float] = {}
        for token, query_weight in query_weights.items():
            token_idf = self._stats.idf(token)
            for product_id, frequency in connection.execute(
                "SELECT product_id, tf FROM doc_tokens WHERE token = ?", (token,)
            ):
                if product_id not in candidate_set:
                    continue
                scores[product_id] = (
                    scores.get(product_id, 0.0) + query_weight * frequency * token_idf
                )
        if not scores:
            return []
        # Category filter straight off the listing table (no JSON parse).
        scored_ids = list(scores)
        category_by_id: Dict[str, str] = {}
        for chunk in _chunked(scored_ids):
            placeholders = ",".join("?" for _ in chunk)
            for product_id, category_id in connection.execute(
                f"SELECT product_id, category_id FROM listing"
                f" WHERE product_id IN ({placeholders})",
                tuple(chunk),
            ):
                category_by_id[product_id] = category_id
        allowed = {
            product_id
            for product_id, category_id in category_by_id.items()
            if category is None or category_id == category
        }
        if attributes:
            wanted = {
                (normalize_attribute_name(name), normalize_value(value))
                for name, value in attributes.items()
            }
            remaining = [pid for pid in scored_ids if pid in allowed]
            matched: Dict[str, int] = {}
            for chunk in _chunked(remaining):
                placeholders = ",".join("?" for _ in chunk)
                for product_id, name, value in connection.execute(
                    f"SELECT product_id, name, value FROM attribute_pairs"
                    f" WHERE product_id IN ({placeholders})",
                    tuple(chunk),
                ):
                    if (name, value) in wanted:
                        matched[product_id] = matched.get(product_id, 0) + 1
            allowed = {
                product_id
                for product_id in remaining
                if matched.get(product_id, 0) == len(wanted)
            }
        ranked: List[Tuple[float, str]] = []
        for product_id, raw_score in scores.items():
            if product_id not in allowed:
                continue
            norm = self._document_norm(product_id)
            if norm == 0.0:
                continue
            ranked.append((raw_score / norm, product_id))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        top = ranked[:top_k]
        # Product JSON is parsed for the k winners only.
        products: Dict[str, Product] = {}
        top_ids = [product_id for _, product_id in top]
        for chunk in _chunked(top_ids):
            placeholders = ",".join("?" for _ in chunk)
            for product_id, product_json in connection.execute(
                f"SELECT product_id, product FROM listing"
                f" WHERE product_id IN ({placeholders})",
                tuple(chunk),
            ):
                products[product_id] = product_from_dict(json.loads(product_json))
        return [
            SearchResult(product=products[product_id], score=score)
            for score, product_id in top
        ]

    def get_product(self, product_id: str) -> Optional[Product]:
        """The indexed product with this id, or ``None``."""
        row = self._require_open().execute(
            "SELECT product FROM listing WHERE product_id = ?", (product_id,)
        ).fetchone()
        return None if row is None else product_from_dict(json.loads(row[0]))

    def count_by_category(self) -> Dict[str, int]:
        """category_id -> number of indexed products, sorted by id."""
        return {
            category_id: count
            for category_id, count in self._require_open().execute(
                "SELECT category_id, COUNT(*) FROM listing"
                " GROUP BY category_id ORDER BY category_id"
            )
        }

    # -- statistics ------------------------------------------------------------

    @property
    def num_products(self) -> int:
        """Number of products currently indexed."""
        return self._num_products

    @property
    def vocabulary_size(self) -> int:
        """Distinct tokens across all indexed documents."""
        return self._stats.vocabulary_size

    def stats(self) -> Dict[str, int]:
        """JSON-compatible index statistics (same shape as the memory index)."""
        connection = self._require_open()
        num_postings = connection.execute(
            "SELECT COUNT(DISTINCT token) FROM doc_tokens"
        ).fetchone()[0]
        num_categories = connection.execute(
            "SELECT COUNT(DISTINCT category_id) FROM listing"
        ).fetchone()[0]
        return {
            "num_products": self.num_products,
            "num_categories": int(num_categories),
            "vocabulary_size": self.vocabulary_size,
            "num_postings": int(num_postings),
        }
