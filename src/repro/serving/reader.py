"""Read-only, snapshot-isolated access to a shared catalog store file.

:class:`CatalogReader` opens the durable SQLite WAL store with its own
``mode=ro`` connection — the same trick the delta-protocol workers and
the multi-process node layer use to share one file — so a serving
process can query the catalog *while* an engine (or a whole cluster of
node processes) keeps ingesting through other connections.

Isolation comes from SQLite's WAL semantics plus the engine's commit
discipline: writers flush exactly one transaction per ingest, so every
read transaction observes a committed stream prefix and nothing else.
The reader tags each read with the store's persistent ``commit_count``
(which committed prefix it saw), pages products from disk with keyset
pagination (:func:`repro.runtime.store.sqlite.read_product_page` — no
in-memory mirror required), and keeps a small LRU page cache keyed by
(commit count, page) so repeated scans of an unchanged snapshot stay in
memory.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.persistence import product_from_dict
from repro.model.products import Product
from repro.runtime.state import ClusterId
from repro.runtime.store.sqlite import read_product_page

__all__ = ["CatalogReader", "StaleSnapshotError"]

#: One cached page: the cluster ids + products read_product_page returned.
_Page = List[Tuple[ClusterId, Product]]


class StaleSnapshotError(RuntimeError):
    """A paged iteration crossed a writer commit and was abandoned.

    Raised by :meth:`CatalogReader.iter_products` when the store's
    commit counter changes between two pages of one iteration: the
    remaining pages belong to a *newer* snapshot, and silently mixing
    them with the pages already yielded would be exactly the torn read
    the serving layer promises never to produce.  Callers retry (the
    new snapshot is immediately readable) or fall back to
    :meth:`CatalogReader.read_products`, which holds one read
    transaction for the whole scan.
    """


class CatalogReader:
    """Query-side handle on a catalog store file (read-only, concurrent).

    Parameters
    ----------
    path:
        The SQLite store file an engine or cluster writes (the file must
        exist; the reader never creates or mutates it).
    page_size:
        Products per keyset page.
    max_cached_pages:
        LRU capacity of the page cache; one snapshot's pages stay cached
        until a writer commit invalidates them.
    busy_timeout_ms:
        How long reads wait for a writer's transaction before failing.
    """

    def __init__(
        self,
        path: str,
        page_size: int = 256,
        max_cached_pages: int = 64,
        busy_timeout_ms: int = 30_000,
    ) -> None:
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        self._path = os.path.abspath(path)
        if not os.path.exists(self._path):
            raise FileNotFoundError(
                f"catalog store file does not exist: {self._path} "
                "(the reader is read-only and never creates stores)"
            )
        # isolation_level=None: transactions are controlled explicitly
        # (BEGIN/COMMIT) so a whole-catalog scan can hold one WAL read
        # snapshot; check_same_thread=False because the HTTP layer calls
        # in from worker threads (all reads serialise on self._lock).
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            f"file:{self._path}?mode=ro",
            uri=True,
            isolation_level=None,
            check_same_thread=False,
        )
        self._connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        self._page_size = page_size
        self._max_cached_pages = max_cached_pages
        self._lock = threading.Lock()
        #: (commit_count, after-key) -> page; entries of dead snapshots
        #: are evicted as soon as a newer commit is observed, and the
        #: LRU bound caps residency across *all* snapshots.
        self._page_cache: "OrderedDict[Tuple[int, Optional[ClusterId]], _Page]" = (
            OrderedDict()
        )
        self._cache_snapshot = -1
        self._page_cache_hits = 0
        self._page_cache_misses = 0
        self._pages_evicted = 0
        self._peak_cached_pages = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def path(self) -> str:
        """Absolute path of the store file being read."""
        return self._path

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` released the connection."""
        return self._connection is None

    def close(self) -> None:
        """Release the read connection (idempotent, thread-safe).

        Taken under the reader lock: closing a sqlite3 connection while
        another thread executes a statement on it segfaults the
        interpreter, and the fleet closes retired replica services from
        whatever thread called ``restart_replica``.  A read in flight
        finishes first; later reads raise cleanly.
        """
        with self._lock:
            if self._connection is None:
                return
            self._connection.close()
            self._connection = None
            self._page_cache.clear()

    def __enter__(self) -> "CatalogReader":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()

    def _require_open(self) -> sqlite3.Connection:
        if self._connection is None:
            raise RuntimeError("catalog reader is closed")
        return self._connection

    # -- snapshot identity -----------------------------------------------------

    def _read_commit_count(self, connection: sqlite3.Connection) -> int:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'commit_count'"
        ).fetchone()
        return 0 if row is None else int(row[0])

    def commit_count(self) -> int:
        """The store's committed-snapshot counter, read from the file.

        Monotonic; a change means a writer completed a commit barrier
        since the last look, i.e. a new committed prefix is visible.
        Observing a newer commit also evicts cached pages of the now
        dead snapshot — a lag-bounded replica that only *checks* the
        head for a while must not keep a stale snapshot's pages pinned
        in memory on top of the fresh ones.
        """
        with self._lock:
            head = self._read_commit_count(self._require_open())
            if head != self._cache_snapshot:
                self._evict_dead_pages(head)
            return head

    # -- reads -----------------------------------------------------------------

    def _evict_dead_pages(self, snapshot: int) -> None:
        """Drop every cached page that belongs to a snapshot other than
        ``snapshot`` (the caller holds the lock).

        The cache key carries the snapshot, so without this sweep the
        pages of superseded snapshots would linger until LRU pressure
        pushed them out — across many resyncs that is memory held for
        catalogs nobody can read any more.
        """
        dead = [key for key in self._page_cache if key[0] != snapshot]
        for key in dead:
            del self._page_cache[key]
        self._pages_evicted += len(dead)
        self._cache_snapshot = snapshot

    def _cached_page(
        self,
        connection: sqlite3.Connection,
        snapshot: int,
        after: Optional[ClusterId],
    ) -> _Page:
        """One page of ``snapshot``, via the LRU cache."""
        if snapshot != self._cache_snapshot:
            self._evict_dead_pages(snapshot)
        key = (snapshot, after)
        page = self._page_cache.get(key)
        if page is not None:
            self._page_cache.move_to_end(key)
            self._page_cache_hits += 1
            return page
        page = read_product_page(connection, after, self._page_size)
        self._page_cache_misses += 1
        self._page_cache[key] = page
        while len(self._page_cache) > self._max_cached_pages:
            self._page_cache.popitem(last=False)
        self._peak_cached_pages = max(self._peak_cached_pages, len(self._page_cache))
        return page

    def read_products(self) -> Tuple[int, List[Product]]:
        """The full committed catalog, atomically, as ``(commit_count, products)``.

        One WAL read transaction covers the commit-counter read and
        every page, so the returned list is exactly the catalog of
        commit ``commit_count`` — a writer committing mid-scan changes
        nothing the transaction observes.  Products come back in the
        canonical (category, cluster key) order.
        """
        with self._lock:
            connection = self._require_open()
            connection.execute("BEGIN")
            try:
                snapshot = self._read_commit_count(connection)
                products: List[Product] = []
                after: Optional[ClusterId] = None
                while True:
                    page = self._cached_page(connection, snapshot, after)
                    if not page:
                        break
                    products.extend(product for _, product in page)
                    after = page[-1][0]
                return snapshot, products
            finally:
                connection.execute("COMMIT")

    def iter_products(self, page_size: Optional[int] = None) -> Iterator[Product]:
        """Stream one committed snapshot's products page by page.

        Unlike :meth:`read_products` this does not hold a transaction
        across the whole scan (a consumer that pauses mid-iteration
        would otherwise pin the WAL); instead every page re-reads the
        commit counter in its own transaction and the iteration fails
        with :class:`StaleSnapshotError` if a writer committed since the
        first page — the caller retries against the new snapshot.
        """
        size = self._page_size if page_size is None else page_size
        if size < 1:
            raise ValueError(f"page_size must be >= 1, got {size}")
        snapshot: Optional[int] = None
        after: Optional[ClusterId] = None
        while True:
            with self._lock:
                connection = self._require_open()
                connection.execute("BEGIN")
                try:
                    current = self._read_commit_count(connection)
                    if snapshot is None:
                        snapshot = current
                    elif current != snapshot:
                        raise StaleSnapshotError(
                            f"catalog advanced from commit {snapshot} to "
                            f"{current} mid-iteration; restart the scan"
                        )
                    if size == self._page_size:
                        page = self._cached_page(connection, snapshot, after)
                    else:
                        page = read_product_page(connection, after, size)
                finally:
                    connection.execute("COMMIT")
            if not page:
                return
            for _, product in page:
                yield product
            after = page[-1][0]

    def read_delta(
        self, since: int
    ) -> Tuple[int, Optional[Dict[ClusterId, Optional[Product]]]]:
        """The journal delta from snapshot ``since`` to the current head.

        One WAL read transaction covers the commit counter, the journal
        floor and the ``commit_journal`` rows, so the returned
        ``(head, delta)`` pair is internally consistent: applying
        ``delta`` (cluster id -> product-or-``None``, newest commit
        wins) on top of an index pinned at ``since`` yields exactly the
        catalog of commit ``head`` — no rebuild required.

        ``delta`` is ``None`` when the journal cannot prove coverage of
        ``(since, head]``: the store predates the journal, the rows were
        compacted past ``since``, or ``since`` is from another store's
        history (ahead of this head).  The caller must then fall back to
        :meth:`read_products` + a full index rebuild.  ``head == since``
        returns an empty delta (nothing to apply).
        """
        with self._lock:
            connection = self._require_open()
            connection.execute("BEGIN")
            try:
                head = self._read_commit_count(connection)
                if head == since:
                    return head, {}
                try:
                    floor_row = connection.execute(
                        "SELECT value FROM meta WHERE key = 'journal_floor'"
                    ).fetchone()
                    if floor_row is None or since < int(floor_row[0]) or since > head:
                        return head, None
                    delta: Dict[ClusterId, Optional[Product]] = {}
                    for category_id, cluster_key, product_json in connection.execute(
                        "SELECT category_id, cluster_key, product FROM commit_journal"
                        " WHERE commit_id > ? AND commit_id <= ?"
                        " ORDER BY commit_id",
                        (since, head),
                    ):
                        product = (
                            None
                            if product_json is None
                            else product_from_dict(json.loads(product_json))
                        )
                        delta[(category_id, cluster_key)] = product
                    return head, delta
                except sqlite3.OperationalError:
                    # Legacy store file without a commit_journal table.
                    return head, None
            finally:
                connection.execute("COMMIT")

    def count_by_category(self) -> Tuple[int, Dict[str, int]]:
        """Category facet straight from disk: ``(commit_count, counts)``.

        A SQL aggregate over the clusters table — the JSON product
        payloads are never parsed, so the facet stays cheap even for
        catalogs the reader would not want to materialise.
        """
        with self._lock:
            connection = self._require_open()
            connection.execute("BEGIN")
            try:
                snapshot = self._read_commit_count(connection)
                counts = {
                    category_id: count
                    for category_id, count in connection.execute(
                        "SELECT category_id, COUNT(*) FROM clusters"
                        " WHERE product IS NOT NULL"
                        " GROUP BY category_id ORDER BY category_id"
                    )
                }
                return snapshot, counts
            finally:
                connection.execute("COMMIT")

    def num_products(self) -> int:
        """Number of committed products currently in the store."""
        with self._lock:
            connection = self._require_open()
            row = connection.execute(
                "SELECT COUNT(*) FROM clusters WHERE product IS NOT NULL"
            ).fetchone()
            return int(row[0])

    def cache_stats(self) -> Dict[str, int]:
        """Page-cache accounting (hits, misses, residency, evictions)."""
        with self._lock:
            return {
                "page_cache_hits": self._page_cache_hits,
                "page_cache_misses": self._page_cache_misses,
                "cached_pages": len(self._page_cache),
                "pages_evicted": self._pages_evicted,
                "peak_cached_pages": self._peak_cached_pages,
            }
