"""A replicated serving fleet: N snapshot-pinned readers, one front.

One :class:`~repro.serving.service.CatalogSearchService` caps out at a
single index and a single lock — fine for a drill, not for heavy
traffic.  :class:`ServingFleet` runs ``N`` replica services over the
same catalog (each with its **own** read-only WAL connection and its
own index copy, or each subscribed to the same engine commit feed) and
load-balances queries across them:

* **Per-request snapshot pinning** — every query executes atomically
  against exactly one replica's served snapshot and reports which
  commit prefix that was (:class:`FleetSearchResponse`).  Replicas may
  trail the store head by a *bounded* number of commits
  (``max_lag_commits``, the Polynesia-style divergence bound), which
  keeps index rebuilds off the request path; the bound is observable
  per replica through :meth:`lag`.
* **Routing** — least-in-flight with a rotating tie-break, so a replica
  busy rebuilding (or hung) is naturally avoided while it is slow.
* **Route-around** — a replica whose query raises is marked unhealthy
  and the request transparently retries on the survivors;
  :meth:`health` (and the HTTP ``/health`` endpoint) flips immediately.
  :meth:`restart_replica` stands a dead replica back up from the store
  file (or the engine feed) and re-admits it.
* **Background refresh** — an optional refresher thread resyncs the
  most-lagged replica once per interval (one rebuild in flight at a
  time, fleet-wide), so a busy writer never stalls every replica at
  once.  :meth:`refresh_once` is the same step, callable
  deterministically.

The fleet exposes the same query surface as a single service, so the
HTTP layer serves either interchangeably.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs import get_registry, series_key, snapshot_fragment
from repro.runtime.engine import SynthesisEngine
from repro.serving.index import SearchResult
from repro.serving.service import CatalogSearchService

__all__ = ["FleetSearchResponse", "FleetUnavailableError", "ServingFleet"]


class FleetUnavailableError(RuntimeError):
    """No healthy replica was able to serve a request.

    Raised after the front has tried every live replica (route-around
    included); the HTTP layer maps it to a 503.  The fleet stays up —
    restarting a replica re-admits it.
    """


@dataclass
class FleetSearchResponse:
    """One fleet query's pinned, attributed answer."""

    #: Which replica served the request (after any route-around).
    replica_id: int
    #: The committed stream prefix the results correspond to.
    snapshot_commit_count: int
    results: List[SearchResult]


class _Replica:
    """Fleet-side bookkeeping around one replica service."""

    def __init__(self, replica_id: int, service: CatalogSearchService) -> None:
        self.replica_id = replica_id
        self.service = service
        self.healthy = True
        self.in_flight = 0
        self.queries_served = 0
        self.restarts = 0
        self.last_error: Optional[str] = None
        #: Test/drill hook invoked (with the operation name) before each
        #: request this replica serves; raising simulates a replica
        #: crash, blocking simulates a hang.
        self.fault_hook: Optional[Callable[[str], None]] = None


class ServingFleet:
    """Load-balancing front over N replicated catalog search services.

    Build one with :meth:`from_store_path` (reader-driven replicas over
    a shared WAL file — the cross-process deployment) or
    :meth:`from_engine` (feed-driven replicas co-located with a live
    engine).  The direct constructor accepts pre-built services, with
    ``head`` supplying the store-head commit counter for lag reporting.
    """

    def __init__(
        self,
        services: Sequence[CatalogSearchService],
        head: Optional[Callable[[], int]] = None,
        store_path: Optional[str] = None,
        engine: Optional[SynthesisEngine] = None,
        page_size: int = 256,
        max_cached_pages: int = 64,
        max_lag_commits: int = 0,
        refresh_interval: Optional[float] = None,
        index_backend: str = "memory",
    ) -> None:
        if not services:
            raise ValueError("a serving fleet needs at least one replica service")
        if max_lag_commits < 0:
            raise ValueError(f"max_lag_commits must be >= 0, got {max_lag_commits}")
        if refresh_interval is not None and refresh_interval <= 0:
            raise ValueError(f"refresh_interval must be > 0, got {refresh_interval}")
        self._replicas = [
            _Replica(replica_id, service) for replica_id, service in enumerate(services)
        ]
        self._store_path = store_path
        self._engine = engine
        self._page_size = page_size
        self._max_cached_pages = max_cached_pages
        self._max_lag_commits = max_lag_commits
        self._index_backend = index_backend
        self._lock = threading.Lock()
        self._cursor = 0
        self._failovers = 0
        self._closed = False
        self._head = head if head is not None else self._default_head
        # Observability: per-replica pinned-snapshot lag rides the
        # registry as labelled gauges, read through a weakref provider
        # (the replica services bridge their own query/resync counters).
        registry = get_registry()
        self._obs = registry
        fleet_ref = weakref.ref(self)

        def _fleet_provider() -> Dict[str, object]:
            fleet = fleet_ref()
            if fleet is None:
                return {}
            return fleet._metrics_fragment()

        self._obs_provider = registry.add_provider(_fleet_provider)
        self._refresh_interval = refresh_interval
        self._stop_refresher = threading.Event()
        self._refresher: Optional[threading.Thread] = None
        if refresh_interval is not None:
            self._refresher = threading.Thread(
                target=self._refresh_loop, name="fleet-refresher", daemon=True
            )
            self._refresher.start()

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_store_path(
        cls,
        path: str,
        num_replicas: int = 2,
        page_size: int = 256,
        max_cached_pages: int = 64,
        max_lag_commits: int = 0,
        refresh_interval: Optional[float] = None,
        index_backend: str = "memory",
    ) -> "ServingFleet":
        """N reader-driven replicas over one shared WAL store file.

        Every replica opens its own read-only connection (and builds its
        own index), so replicas resync — and fail — independently.
        """
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        services = [
            CatalogSearchService.from_store_path(
                path,
                page_size=page_size,
                max_cached_pages=max_cached_pages,
                index_backend=index_backend,
            )
            for _ in range(num_replicas)
        ]
        return cls(
            services,
            store_path=path,
            page_size=page_size,
            max_cached_pages=max_cached_pages,
            max_lag_commits=max_lag_commits,
            refresh_interval=refresh_interval,
            index_backend=index_backend,
        )

    @classmethod
    def from_engine(
        cls,
        engine: SynthesisEngine,
        num_replicas: int = 2,
        index_backend: str = "memory",
    ) -> "ServingFleet":
        """N feed-driven replicas subscribed to one live engine.

        Feed replicas are maintained synchronously at each commit, so
        their divergence bound is effectively zero; the fleet still adds
        N-way lock parallelism and route-around.
        """
        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        services = [
            CatalogSearchService.from_engine(engine, index_backend=index_backend)
            for _ in range(num_replicas)
        ]
        return cls(services, engine=engine, index_backend=index_backend)

    def _default_head(self) -> int:
        """Store-head commit counter when no explicit ``head`` was given."""
        if self._engine is not None:
            return self._engine.store.commit_count
        best = 0
        for replica in self._replicas:
            try:
                best = max(best, replica.service.head_commit_count())
            except Exception:  # noqa: BLE001 - a dead replica must not hide the head
                continue
        return best

    # -- lifecycle -------------------------------------------------------------

    @property
    def num_replicas(self) -> int:
        """Fleet size (healthy or not)."""
        return len(self._replicas)

    @property
    def store_path(self) -> Optional[str]:
        """Shared store file of reader-driven fleets (``None`` for feed)."""
        return self._store_path

    def close(self) -> None:
        """Stop the refresher and close every replica (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._obs.remove_provider(self._obs_provider)
        self._stop_refresher.set()
        if self._refresher is not None:
            self._refresher.join(timeout=5)
        for replica in self._replicas:
            replica.service.close()

    def __enter__(self) -> "ServingFleet":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()

    # -- routing ---------------------------------------------------------------

    def _acquire(self) -> _Replica:
        """Pick a healthy replica: least in-flight, rotating tie-break."""
        with self._lock:
            healthy = [replica for replica in self._replicas if replica.healthy]
            if not healthy:
                raise FleetUnavailableError(
                    f"all {len(self._replicas)} replicas are unhealthy"
                )
            self._cursor += 1
            cursor = self._cursor
            chosen = min(
                healthy,
                key=lambda replica: (
                    replica.in_flight,
                    (replica.replica_id - cursor) % len(self._replicas),
                ),
            )
            chosen.in_flight += 1
            return chosen

    def _release(self, replica: _Replica, served: bool) -> None:
        with self._lock:
            replica.in_flight -= 1
            if served:
                replica.queries_served += 1

    def _mark_unhealthy(self, replica: _Replica, error: BaseException) -> None:
        with self._lock:
            replica.healthy = False
            replica.last_error = f"{type(error).__name__}: {error}"
            self._failovers += 1

    def _run(self, operation: str, runner):
        """Execute ``runner(service)`` on a healthy replica, routing around
        failures; returns ``(replica_id, outcome)``."""
        last_error: Optional[BaseException] = None
        for _ in range(len(self._replicas) + 1):
            try:
                replica = self._acquire()
            except FleetUnavailableError:
                break
            service = replica.service
            served = False
            try:
                if replica.fault_hook is not None:
                    replica.fault_hook(operation)
                outcome = runner(service)
                served = True
            except Exception as error:  # noqa: BLE001 - any failure fails over
                # A handle that lost a concurrent restart_replica race
                # (the retired service got closed under this request)
                # is not the *new* replica's failure — retry without
                # flagging it.
                if service is replica.service:
                    self._mark_unhealthy(replica, error)
                last_error = error
                continue
            finally:
                self._release(replica, served)
            return replica.replica_id, outcome
        detail = f" (last error: {last_error})" if last_error is not None else ""
        raise FleetUnavailableError(
            f"no healthy replica could serve {operation!r}{detail}"
        )

    # -- queries ---------------------------------------------------------------

    def search(
        self,
        query: str,
        top_k: int = 10,
        category: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> FleetSearchResponse:
        """Ranked top-k search on one replica, pinned to its snapshot."""
        replica_id, (snapshot, results) = self._run(
            "search",
            lambda service: service.search_pinned(
                query,
                top_k=top_k,
                category=category,
                attributes=attributes,
                max_lag_commits=self._max_lag_commits,
            ),
        )
        return FleetSearchResponse(replica_id, snapshot, results)

    def get_product(self, product_id: str):
        """Point lookup; returns ``(replica_id, snapshot, product-or-None)``."""
        replica_id, (snapshot, product) = self._run(
            "get_product",
            lambda service: service.get_product_pinned(
                product_id, max_lag_commits=self._max_lag_commits
            ),
        )
        return replica_id, snapshot, product

    def count_by_category(self) -> Dict[str, int]:
        """Category facet of one replica's served snapshot."""
        return self._run(
            "count_by_category", lambda service: service.count_by_category()
        )[1]

    # -- maintenance -----------------------------------------------------------

    def refresh_once(self) -> Optional[int]:
        """Resync the most-lagged healthy replica; returns its id (or None).

        One replica rebuilds at a time, fleet-wide, so a commit burst
        never stalls the whole fleet.  A resync pulls the replica all
        the way to the current head — intermediate commits are skipped,
        which is where a lag-bounded fleet does strictly less rebuild
        work than per-request resyncing.
        """
        try:
            head = self._head()
        except Exception:  # noqa: BLE001 - head unreadable: nothing to refresh to
            return None
        with self._lock:
            candidates = [
                (head - replica.service.snapshot_commit_count, replica.replica_id)
                for replica in self._replicas
                if replica.healthy
            ]
        candidates = [entry for entry in candidates if entry[0] > 0]
        if not candidates:
            return None
        _, replica_id = max(candidates)
        replica = self._replicas[replica_id]
        try:
            replica.service.resync()
        except Exception as error:  # noqa: BLE001 - a broken replica is routed around
            self._mark_unhealthy(replica, error)
            return None
        return replica_id

    def _refresh_loop(self) -> None:
        while not self._stop_refresher.wait(self._refresh_interval):
            self.refresh_once()

    def set_fault_hook(
        self, replica_id: int, hook: Optional[Callable[[str], None]]
    ) -> None:
        """Install a per-replica fault hook (tests/drills); ``None`` clears."""
        self._replica(replica_id).fault_hook = hook

    def _replica(self, replica_id: int) -> _Replica:
        if not 0 <= replica_id < len(self._replicas):
            raise KeyError(f"no replica {replica_id} in a fleet of {len(self._replicas)}")
        return self._replicas[replica_id]

    def restart_replica(self, replica_id: int) -> None:
        """Replace one replica with a freshly opened service and re-admit it.

        The replacement is built first (from the store file, or from the
        engine feed), then swapped in atomically.  An in-flight request
        on the retired service either finishes against its pinned
        snapshot or — if the close catches it mid-resync — retries
        transparently on a live replica, without flagging the fresh
        one.  Fault hooks do not survive a restart, matching a real
        process replacement.
        """
        replica = self._replica(replica_id)
        if self._store_path is not None:
            fresh = CatalogSearchService.from_store_path(
                self._store_path,
                page_size=self._page_size,
                max_cached_pages=self._max_cached_pages,
                index_backend=self._index_backend,
            )
        elif self._engine is not None:
            fresh = CatalogSearchService.from_engine(
                self._engine, index_backend=self._index_backend
            )
        else:
            raise RuntimeError(
                "this fleet was built from detached services; there is no "
                "store path or engine to restart a replica from"
            )
        with self._lock:
            stale = replica.service
            replica.service = fresh
            replica.healthy = True
            replica.last_error = None
            replica.fault_hook = None
            replica.restarts += 1
        stale.close()

    # -- introspection ---------------------------------------------------------

    def _metrics_fragment(self) -> Dict[str, object]:
        """Fleet gauges and counters as a registry snapshot fragment.

        Per-replica pinned-snapshot lag (against the store head, one
        cheap ``meta`` row read on reader fleets) plus health flags as
        labelled gauges, and failover/restart counters.
        """
        try:
            head = self._head()
        except Exception:  # noqa: BLE001 - a scrape must never fail
            head = 0
        with self._lock:
            replicas = list(self._replicas)
            failovers = self._failovers
        gauges: Dict[str, float] = {"serving_fleet_head_commit_count": float(head)}
        counters: Dict[str, float] = {}
        restarts = 0
        for replica in replicas:
            try:
                snapshot = replica.service.snapshot_commit_count
            except Exception:  # noqa: BLE001 - a dead replica still scrapes
                snapshot = 0
            labels = {"replica": str(replica.replica_id)}
            gauges[series_key("serving_replica_lag_commits", labels)] = float(
                max(0, head - snapshot)
            )
            gauges[series_key("serving_replica_snapshot_commit_count", labels)] = float(
                snapshot
            )
            gauges[series_key("serving_replica_healthy", labels)] = (
                1.0 if replica.healthy else 0.0
            )
            restarts += replica.restarts
        if failovers:
            counters["serving_failovers_total"] = float(failovers)
        if restarts:
            counters["serving_replica_restarts_total"] = float(restarts)
        families = {
            "serving_fleet_head_commit_count": {
                "type": "gauge",
                "help": "Store-head commit counter the fleet measures lag against.",
            },
            "serving_replica_lag_commits": {
                "type": "gauge",
                "help": "Commits each replica's pinned snapshot trails the head by.",
            },
            "serving_replica_snapshot_commit_count": {
                "type": "gauge",
                "help": "Commit prefix each replica currently serves.",
            },
            "serving_replica_healthy": {
                "type": "gauge",
                "help": "1 when the replica is admitted to routing, else 0.",
            },
            "serving_failovers_total": {
                "type": "counter",
                "help": "Requests routed around a failed replica.",
            },
            "serving_replica_restarts_total": {
                "type": "counter",
                "help": "Replica services replaced via restart_replica.",
            },
        }
        return snapshot_fragment(counters=counters, gauges=gauges, families=families)

    def health(self) -> Dict[str, object]:
        """Fleet and per-replica health (the ``/health`` body).

        ``healthy`` is fleet-level: at least one replica can serve.  A
        replica that failed a request stays listed with its last error
        until restarted, so operators see *why* the front routed around.
        """
        with self._lock:
            replicas = [
                {
                    "replica_id": replica.replica_id,
                    "healthy": replica.healthy,
                    "in_flight": replica.in_flight,
                    "queries_served": replica.queries_served,
                    "restarts": replica.restarts,
                    "last_error": replica.last_error,
                }
                for replica in self._replicas
            ]
        healthy_count = sum(1 for entry in replicas if entry["healthy"])
        return {
            "healthy": healthy_count > 0,
            "num_replicas": len(self._replicas),
            "healthy_replicas": healthy_count,
            "failovers": self._failovers,
            "replicas": replicas,
        }

    def lag(self) -> Dict[str, object]:
        """Per-replica divergence from the store head (the ``/lag`` body).

        Each replica reports the commit prefix it is pinned to
        (``snapshot_commit_count``) against the head read from the
        store; ``max_lag_commits`` is the configured bound the request
        path enforces, so ``lag <= max_lag_commits`` is the invariant
        an operator alerts on (modulo the one-resync race while a
        refresh is in flight).  Each entry also carries the replica's
        resync-mode counters under the nested ``resync`` key (the same
        shape a single service's ``/stats`` uses), so operators can tell
        journal-delta catch-ups apart from full index rebuilds; the flat
        per-entry copies are deprecated aliases kept for one release.
        """
        head = self._head()
        replicas = []
        for replica in self._replicas:
            snapshot = replica.service.snapshot_commit_count
            resync = replica.service.resync_stats()
            entry = {
                "replica_id": replica.replica_id,
                "healthy": replica.healthy,
                "snapshot_commit_count": snapshot,
                "lag": max(0, head - snapshot),
                "resync": resync,
            }
            entry.update(resync)  # deprecated flat aliases (one release)
            replicas.append(entry)
        return {
            "head_commit_count": head,
            "max_lag_commits": self._max_lag_commits,
            "max_lag": max((entry["lag"] for entry in replicas), default=0),
            "replicas": replicas,
        }

    def stats(self) -> Dict[str, object]:
        """JSON-compatible fleet statistics (the ``/stats`` body).

        The nested ``resync`` key aggregates the replicas' resync-mode
        counters — the same normalized shape a single service's
        ``/stats`` reports, so dashboards read one path for both.
        """
        health = self.health()
        with self._lock:
            total_queries = sum(replica.queries_served for replica in self._replicas)
        resync_totals: Dict[str, int] = {}
        for replica in self._replicas:
            for key, value in replica.service.resync_stats().items():
                resync_totals[key] = resync_totals.get(key, 0) + value
        payload: Dict[str, object] = {
            "mode": "fleet",
            "index_backend": self._index_backend,
            "num_replicas": len(self._replicas),
            "healthy_replicas": health["healthy_replicas"],
            "failovers": health["failovers"],
            "queries_served": total_queries,
            "resync": resync_totals,
            "max_lag_commits": self._max_lag_commits,
            "refresh_interval": self._refresh_interval,
            "replicas": [
                dict(entry, **{"stats": self._replicas[entry["replica_id"]].service.stats()})  # type: ignore[index]
                for entry in health["replicas"]  # type: ignore[union-attr]
            ],
        }
        if self._store_path is not None:
            payload["store_path"] = self._store_path
        return payload
