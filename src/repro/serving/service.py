"""The catalog serving facade: one index, one snapshot discipline.

:class:`CatalogSearchService` owns a :class:`~repro.serving.index.CatalogIndex`
and keeps it current through one of two maintenance modes:

* **feed-driven** (:meth:`CatalogSearchService.from_engine`) — the
  service subscribes to the engine's per-commit changed-product feed
  and applies each :class:`~repro.runtime.CommitEvent` atomically, so a
  co-located deployment pays O(changed) index work per commit;
* **reader-driven** (:meth:`CatalogSearchService.from_store_path`) — a
  separate serving process watches the store file through a read-only
  :class:`~repro.serving.reader.CatalogReader`.  When the commit
  counter moves it first tries a **journal-delta resync**: the store's
  changed-cluster commit journal names exactly the clusters every
  commit touched, so the service applies O(changed) upserts/removes
  instead of rebuilding.  Only when the journal cannot prove coverage
  (legacy file, compacted rows) does it fall back to the full rebuild —
  and the two paths are reported distinctly (``delta_resyncs`` /
  ``full_resyncs`` / ``journal_truncations`` in :meth:`stats`).

The index backend is pluggable (``index_backend="memory"`` or
``"fts"`` — see :mod:`repro.serving.fts`); both enforce the same
ranking semantics, so the choice is operational (RAM vs disk), not
behavioural.

Either way the service guarantees **snapshot isolation**: every query
runs under the service lock against an index state that corresponds to
exactly one committed prefix of the ingest stream (reported as
``snapshot_commit_count``), never to a half-applied batch.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Tuple

from repro.model.products import Product
from repro.obs import get_registry, series_key, snapshot_fragment
from repro.runtime.engine import CommitEvent, SynthesisEngine
from repro.runtime.state import ClusterId
from repro.serving.fts import create_catalog_index
from repro.serving.index import CatalogIndex, SearchResult
from repro.serving.reader import CatalogReader
from repro.synthesis.pipeline import stable_product_id

__all__ = ["CatalogSearchService"]


class CatalogSearchService:
    """Thread-safe query front end over an incrementally maintained index."""

    def __init__(
        self,
        index: Optional[CatalogIndex] = None,
        index_backend: str = "memory",
        index_path: Optional[str] = None,
    ) -> None:
        self._index = (
            index
            if index is not None
            else create_catalog_index(index_backend, path=index_path)
        )
        self._lock = threading.RLock()
        self._engine: Optional[SynthesisEngine] = None
        self._reader: Optional[CatalogReader] = None
        self._snapshot_commit_count = 0
        self._queries_served = 0
        self._resyncs = 0
        self._delta_resyncs = 0
        self._full_resyncs = 0
        self._journal_truncations = 0
        # Observability: the per-instance counters above stay the source
        # of truth for stats(); the registry reads them through a weakref
        # provider, so N replicas naturally sum into fleet-wide series.
        registry = get_registry()
        self._obs = registry
        self._obs_index_upserts = registry.counter(
            "serving_index_upserts_total",
            help="Products upserted into serving indexes (feed or delta).",
        )
        self._obs_index_removes = registry.counter(
            "serving_index_removes_total",
            help="Products removed from serving indexes (feed or delta).",
        )
        service_ref = weakref.ref(self)

        def _service_provider() -> Dict[str, object]:
            service = service_ref()
            if service is None:
                return {}
            return service._metrics_fragment()

        self._obs_provider = registry.add_provider(_service_provider)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_engine(
        cls,
        engine: SynthesisEngine,
        index_backend: str = "memory",
        index_path: Optional[str] = None,
    ) -> "CatalogSearchService":
        """Serve a live engine's catalog, maintained by its commit feed.

        The initial index is built from the engine's current product
        listing; afterwards every committed ingest batch is folded in
        incrementally.  Call :meth:`close` to unsubscribe.
        """
        service = cls(index_backend=index_backend, index_path=index_path)
        service._engine = engine
        with service._lock:
            service._index.rebuild(engine.products())
            service._snapshot_commit_count = engine.store.commit_count
        engine.add_commit_listener(service._on_commit)
        return service

    @classmethod
    def from_store_path(
        cls,
        path: str,
        page_size: int = 256,
        max_cached_pages: int = 64,
        index_backend: str = "memory",
        index_path: Optional[str] = None,
    ) -> "CatalogSearchService":
        """Serve a store file written by another process (read-only).

        Opens a :class:`~repro.serving.reader.CatalogReader` over the
        WAL file and builds the index from the committed snapshot.
        Queries transparently resync when a writer commits — see
        :meth:`maybe_resync`.
        """
        service = cls(index_backend=index_backend, index_path=index_path)
        service._reader = CatalogReader(
            path, page_size=page_size, max_cached_pages=max_cached_pages
        )
        service.resync()
        return service

    def close(self) -> None:
        """Detach from the feed / close the reader and index (idempotent)."""
        self._obs.remove_provider(self._obs_provider)
        if self._engine is not None:
            self._engine.remove_commit_listener(self._on_commit)
            self._engine = None
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        index_close = getattr(self._index, "close", None)
        if callable(index_close):
            index_close()

    def __enter__(self) -> "CatalogSearchService":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()

    # -- maintenance -----------------------------------------------------------

    def _on_commit(self, event: CommitEvent) -> None:
        """Feed-driven maintenance: apply one committed batch atomically."""
        with self._lock:
            self._index.apply_commit(event)
            self._snapshot_commit_count = event.commit_count
        upserts = sum(1 for _, product in event.changed if product is not None)
        removes = len(event.changed) - upserts
        if upserts:
            self._obs_index_upserts.inc(upserts)
        if removes:
            self._obs_index_removes.inc(removes)

    def _apply_delta(
        self, delta: Dict[ClusterId, Optional[Product]]
    ) -> None:
        """Apply one journal delta to the index (caller holds the lock)."""
        upserts = removes = 0
        for cluster_id, product in delta.items():
            if product is None:
                self._index.remove(stable_product_id(*cluster_id))
                removes += 1
            else:
                self._index.upsert(product)
                upserts += 1
        if upserts:
            self._obs_index_upserts.inc(upserts)
        if removes:
            self._obs_index_removes.inc(removes)

    def resync(self) -> int:
        """Catch the index up to the store's committed head.

        Reader-driven mode only; returns the commit count of the
        snapshot now served.  Two paths, reported distinctly in
        :meth:`stats`:

        * **journal delta** — once primed, the service asks the reader
          for the changed-cluster journal entries between its pinned
          snapshot and the head and applies O(changed) upserts/removes
          (``delta_resyncs``).  The read is one WAL transaction, so the
          delta moves the index to exactly the head's catalog.
        * **full rebuild** — the explicit fallback when the journal
          cannot prove coverage (store predates the journal, rows were
          compacted past the pinned snapshot — counted as
          ``journal_truncations``) and for the initial priming build
          (``full_resyncs``).
        """
        if self._reader is None:
            raise RuntimeError(
                "resync() requires a reader-driven service "
                "(CatalogSearchService.from_store_path)"
            )
        with self._obs.span("serving.resync"):
            with self._lock:
                since = self._snapshot_commit_count
                primed = self._resyncs > 0
            if primed:
                head, delta = self._reader.read_delta(since)
                if delta is not None:
                    with self._lock:
                        # Apply only if no concurrent resync moved the
                        # snapshot: the delta is valid on top of `since`
                        # and nothing else.  A racer that won resynced
                        # for us.
                        if self._snapshot_commit_count == since and head > since:
                            self._apply_delta(delta)
                            self._snapshot_commit_count = head
                            self._resyncs += 1
                            self._delta_resyncs += 1
                        return self._snapshot_commit_count
                with self._lock:
                    self._journal_truncations += 1
            snapshot, products = self._reader.read_products()
            with self._lock:
                # Concurrent resyncs race on the read: if another thread
                # already swapped in this snapshot (or a newer one),
                # keeping ours would roll the served index *backwards* —
                # the non-monotonic read the snapshot contract forbids.
                if snapshot > self._snapshot_commit_count or (
                    snapshot == self._snapshot_commit_count and self._resyncs == 0
                ):
                    self._index.rebuild(products)
                    self._snapshot_commit_count = snapshot
                    self._resyncs += 1
                    self._full_resyncs += 1
                return self._snapshot_commit_count

    def maybe_resync(self, max_lag_commits: int = 0) -> bool:
        """Resync when the served snapshot trails the store's head too far.

        ``max_lag_commits`` is the divergence bound: 0 (the default)
        resyncs on *any* newer commit — exactly-current serving; a
        positive bound lets the service keep answering from a snapshot
        at most that many commits behind, which is what a fleet replica
        runs with so index rebuilds stay off the request path.  Cheap
        when within bound — one ``meta`` row read.  Feed-driven services
        are always current and return ``False``.
        """
        if self._reader is None:
            return False
        head = self._reader.commit_count()
        if head - self.snapshot_commit_count <= max_lag_commits:
            return False
        self.resync()
        return True

    # -- queries ---------------------------------------------------------------

    def search(
        self,
        query: str,
        top_k: int = 10,
        category: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> List[SearchResult]:
        """Top-k ranked products for ``query`` (see :meth:`CatalogIndex.search`).

        Reader-driven services first fold in any newly committed
        snapshot, so a query never serves state older than the store's
        last commit barrier at call time — and never anything newer or
        torn either.
        """
        return self.search_pinned(
            query, top_k=top_k, category=category, attributes=attributes
        )[1]

    def search_pinned(
        self,
        query: str,
        top_k: int = 10,
        category: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        auto_resync: bool = True,
        max_lag_commits: int = 0,
    ) -> Tuple[int, List[SearchResult]]:
        """Like :meth:`search`, returning ``(snapshot, results)`` atomically.

        The snapshot is read under the same lock hold that executes the
        search, so under concurrent maintenance (commit feed, resyncs,
        a fleet refresher) the pair is guaranteed consistent — reading
        :attr:`snapshot_commit_count` *after* :meth:`search` is not.
        ``auto_resync=False`` skips the head check entirely (a fleet
        whose refresher owns maintenance pins to whatever the replica
        currently serves); ``max_lag_commits`` bounds the staleness the
        inline check tolerates.
        """
        if auto_resync:
            self.maybe_resync(max_lag_commits)
        with self._lock:
            self._queries_served += 1
            return self._snapshot_commit_count, self._index.search(
                query, top_k=top_k, category=category, attributes=attributes
            )

    def get_product(self, product_id: str) -> Optional[Product]:
        """Point lookup by product id against the served snapshot."""
        return self.get_product_pinned(product_id)[1]

    def get_product_pinned(
        self,
        product_id: str,
        auto_resync: bool = True,
        max_lag_commits: int = 0,
    ) -> Tuple[int, Optional[Product]]:
        """Point lookup returning ``(snapshot, product)`` atomically."""
        if auto_resync:
            self.maybe_resync(max_lag_commits)
        with self._lock:
            self._queries_served += 1
            return self._snapshot_commit_count, self._index.get_product(product_id)

    def count_by_category(self) -> Dict[str, int]:
        """The category facet of the served snapshot."""
        self.maybe_resync()
        with self._lock:
            self._queries_served += 1
            return self._index.count_by_category()

    # -- introspection ---------------------------------------------------------

    @property
    def snapshot_commit_count(self) -> int:
        """Commit barrier the served index corresponds to."""
        with self._lock:
            return self._snapshot_commit_count

    def head_commit_count(self) -> int:
        """The newest committed snapshot available to this service.

        Reader-driven: the store file's persistent counter (one ``meta``
        row read).  Feed-driven: the engine store's counter — the feed
        applies commits synchronously, so head and served snapshot only
        diverge for the instant a commit listener is running.
        """
        if self._reader is not None:
            return self._reader.commit_count()
        if self._engine is not None:
            return self._engine.store.commit_count
        return self.snapshot_commit_count

    def lag(self) -> int:
        """Commits between the store head and the served snapshot (>= 0)."""
        return max(0, self.head_commit_count() - self.snapshot_commit_count)

    @property
    def num_products(self) -> int:
        """Products in the served snapshot."""
        with self._lock:
            return self._index.num_products

    def resync_stats(self) -> Dict[str, int]:
        """Resync-mode counters: how the index has been kept current.

        ``delta_resyncs`` counts journal-delta applies, ``full_resyncs``
        full rebuilds (including the priming build), and
        ``journal_truncations`` the times a truncated/absent journal
        forced the fallback; ``resyncs`` is the total.  The fleet's
        ``/lag`` endpoint surfaces these per replica so operators can
        tell O(changed) maintenance from O(catalog) rebuild storms.
        """
        with self._lock:
            return {
                "resyncs": self._resyncs,
                "delta_resyncs": self._delta_resyncs,
                "full_resyncs": self._full_resyncs,
                "journal_truncations": self._journal_truncations,
            }

    def _metrics_fragment(self) -> Dict[str, object]:
        """Service counters as a registry snapshot fragment.

        Counters sum at collection time, so every live service (each
        fleet replica included) contributes to the same fleet-wide
        series; zero-valued series are omitted to keep scrapes compact.
        """
        with self._lock:
            values = {
                "serving_queries_total": float(self._queries_served),
                series_key("serving_resyncs_total", {"mode": "delta"}): float(
                    self._delta_resyncs
                ),
                series_key("serving_resyncs_total", {"mode": "full"}): float(
                    self._full_resyncs
                ),
                "serving_journal_truncations_total": float(self._journal_truncations),
            }
        counters = {key: value for key, value in values.items() if value}
        families = {
            "serving_queries_total": {
                "type": "counter",
                "help": "Queries served (search, lookup, facet), all replicas.",
            },
            "serving_resyncs_total": {
                "type": "counter",
                "help": "Index resyncs by mode (journal delta vs full rebuild).",
            },
            "serving_journal_truncations_total": {
                "type": "counter",
                "help": "Resyncs forced onto the full rebuild by a truncated journal.",
            },
        }
        return snapshot_fragment(counters=counters, families=families)

    def stats(self) -> Dict[str, object]:
        """JSON-compatible service + index statistics (the ``/stats`` body).

        Resync counters live under the nested ``resync`` key — the same
        shape the fleet reports per replica.  The flat top-level copies
        (``resyncs``, ``delta_resyncs``, ``full_resyncs``,
        ``journal_truncations``) are deprecated aliases kept for one
        release; consumers should move to ``payload["resync"]``.
        """
        resync = self.resync_stats()
        with self._lock:
            payload: Dict[str, object] = {
                "mode": "reader" if self._reader is not None else "feed",
                "snapshot_commit_count": self._snapshot_commit_count,
                "queries_served": self._queries_served,
                "resync": resync,
                "index_backend": getattr(self._index, "backend_name", "memory"),
                "index": self._index.stats(),
                "count_by_category": self._index.count_by_category(),
            }
        payload.update(resync)  # deprecated flat aliases (one release)
        if self._reader is not None:
            payload["reader"] = self._reader.cache_stats()
            payload["store_path"] = self._reader.path
        return payload
