"""Shared memoisation for the hot text primitives.

The run-time engine (:mod:`repro.runtime`) feeds the same merchant
vocabulary through normalisation and tokenisation over and over again:
attribute names repeat across every offer of a merchant, key-attribute
values repeat across micro-batches, and fusion re-tokenises candidate
values each time a cluster is re-fused.  The caches below turn those
repeated calls into dictionary lookups while keeping the underlying
functions (:mod:`repro.text.normalize`, :mod:`repro.text.tokenize`) pure
and cache-free for callers that do not want the shared state.

All cached tokenisers return **tuples** (hashable, safely shareable);
callers that need a list should wrap the result in ``list(...)``.

The caches are bounded LRU caches, so long-running engines do not grow
without limit, and :func:`clear_text_caches` resets everything (used by
benchmarks to measure cold-cache behaviour).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.text.normalize import (
    normalize_attribute_name,
    normalize_key_value,
    normalize_value,
)
from repro.text.tokenize import tokenize_attribute_name, tokenize_title, tokenize_value

__all__ = [
    "cached_normalize_attribute_name",
    "cached_normalize_key_value",
    "cached_normalize_value",
    "cached_tokenize_value",
    "cached_tokenize_title",
    "cached_tokenize_attribute_name",
    "clear_text_caches",
    "text_cache_info",
]

#: Upper bound per cache; generous for shopping-domain vocabularies while
#: keeping worst-case memory in the tens of megabytes.
_CACHE_SIZE = 1 << 17


@lru_cache(maxsize=_CACHE_SIZE)
def cached_normalize_attribute_name(name: str) -> str:
    """Memoised :func:`repro.text.normalize.normalize_attribute_name`."""
    return normalize_attribute_name(name)


@lru_cache(maxsize=_CACHE_SIZE)
def cached_normalize_key_value(value: str) -> str:
    """Memoised :func:`repro.text.normalize.normalize_key_value`."""
    return normalize_key_value(value)


@lru_cache(maxsize=_CACHE_SIZE)
def cached_normalize_value(value: str) -> str:
    """Memoised :func:`repro.text.normalize.normalize_value`."""
    return normalize_value(value)


@lru_cache(maxsize=_CACHE_SIZE)
def cached_tokenize_value(value: str) -> Tuple[str, ...]:
    """Memoised :func:`repro.text.tokenize.tokenize_value` (as a tuple)."""
    return tuple(tokenize_value(value))


@lru_cache(maxsize=_CACHE_SIZE)
def cached_tokenize_title(title: str) -> Tuple[str, ...]:
    """Memoised :func:`repro.text.tokenize.tokenize_title` (as a tuple)."""
    return tuple(tokenize_title(title))


@lru_cache(maxsize=_CACHE_SIZE)
def cached_tokenize_attribute_name(name: str) -> Tuple[str, ...]:
    """Memoised :func:`repro.text.tokenize.tokenize_attribute_name` (as a tuple)."""
    return tuple(tokenize_attribute_name(name))


_ALL_CACHES = (
    cached_normalize_attribute_name,
    cached_normalize_key_value,
    cached_normalize_value,
    cached_tokenize_value,
    cached_tokenize_title,
    cached_tokenize_attribute_name,
)


def clear_text_caches() -> None:
    """Empty every shared text cache (cold-start measurement, tests)."""
    for cache in _ALL_CACHES:
        cache.cache_clear()


def text_cache_info() -> Dict[str, Dict[str, int]]:
    """Hit/miss statistics per cache, keyed by function name."""
    info: Dict[str, Dict[str, int]] = {}
    for cache in _ALL_CACHES:
        stats = cache.cache_info()
        info[cache.__wrapped__.__name__] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "size": stats.currsize,
        }
    return info
