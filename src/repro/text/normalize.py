"""Normalisation of attribute names and attribute values.

Merchants spell the same attribute and the same value in many different
ways (``Hard Disk Size`` vs ``Capacity``, ``500`` vs ``500GB`` vs
``500 GB``).  The synthesis pipeline never *requires* values to be
normalised — the distributional features are designed to be robust to
format variation — but normalisation is used in three places:

* the automated training-set construction compares attribute names for
  *exact identity* after normalisation (paper Section 3.2, "name identity
  candidate tuples");
* the clustering component compares key-attribute values (MPN/UPC) and has
  to be insensitive to case, punctuation and whitespace;
* the evaluation oracle compares synthesized values against ground truth.
"""

from __future__ import annotations

import re
from typing import Optional

__all__ = [
    "normalize_attribute_name",
    "normalize_value",
    "normalize_key_value",
    "strip_units",
    "canonical_number",
]

_WHITESPACE_RE = re.compile(r"\s+")
_NAME_PUNCT_RE = re.compile(r"[^a-z0-9\s]")
_VALUE_PUNCT_RE = re.compile(r"[^a-z0-9.\s]")
_KEY_PUNCT_RE = re.compile(r"[^a-z0-9]")
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")

# Common measurement units that appear appended to numeric values.  The
# list is intentionally small: it only needs to cover the units emitted by
# the synthetic corpus and typical shopping-domain values.
_UNIT_SUFFIXES = (
    "gb",
    "tb",
    "mb",
    "kb",
    "ghz",
    "mhz",
    "hz",
    "rpm",
    "mp",
    "megapixels",
    "megapixel",
    "inches",
    "inch",
    "in",
    "cm",
    "mm",
    "lbs",
    "lb",
    "kg",
    "g",
    "oz",
    "watts",
    "watt",
    "w",
    "volts",
    "volt",
    "v",
    "mah",
    "ms",
    "mbps",
    "mbs",
)

_UNIT_RE = re.compile(
    r"^(?P<number>\d+(?:\.\d+)?)\s*(?P<unit>" + "|".join(_UNIT_SUFFIXES) + r")$"
)


def normalize_attribute_name(name: str) -> str:
    """Canonicalise an attribute name for identity comparison.

    Lower-cases, removes punctuation and collapses whitespace so that
    ``"Mfr. Part #"`` and ``"mfr part"`` compare equal, while genuinely
    different names (``"Capacity"`` vs ``"Hard Disk Size"``) stay distinct.

    Examples
    --------
    >>> normalize_attribute_name("  Hard  Disk   Size ")
    'hard disk size'
    >>> normalize_attribute_name("Mfr. Part #")
    'mfr part'
    """
    if not name:
        return ""
    lowered = name.lower()
    no_punct = _NAME_PUNCT_RE.sub(" ", lowered)
    return _WHITESPACE_RE.sub(" ", no_punct).strip()


def normalize_value(value: str) -> str:
    """Canonicalise an attribute value for loose comparison.

    Keeps decimal points (``3.5``) but removes other punctuation, collapses
    whitespace and lower-cases.

    Examples
    --------
    >>> normalize_value("Serial ATA-300")
    'serial ata 300'
    >>> normalize_value("500 GB")
    '500 gb'
    """
    if not value:
        return ""
    lowered = value.lower()
    no_punct = _VALUE_PUNCT_RE.sub(" ", lowered)
    return _WHITESPACE_RE.sub(" ", no_punct).strip()


def normalize_key_value(value: str) -> str:
    """Canonicalise a key-attribute value (MPN, UPC, EAN) for clustering.

    Key identifiers must compare equal regardless of case, hyphens or
    whitespace: ``"HDT725050VLA360"`` == ``"hdt-725050 vla360"``.

    Examples
    --------
    >>> normalize_key_value("HDT-725050 VLA360")
    'hdt725050vla360'
    """
    if not value:
        return ""
    return _KEY_PUNCT_RE.sub("", value.lower())


def strip_units(value: str) -> str:
    """Remove a trailing measurement unit from a numeric value.

    Returns the original (normalised) value when no unit suffix is
    recognised.

    Examples
    --------
    >>> strip_units("500GB")
    '500'
    >>> strip_units("7200 rpm")
    '7200'
    >>> strip_units("Windows Vista")
    'windows vista'
    """
    normalised = normalize_value(value)
    compact = normalised.replace(" ", "")
    match = _UNIT_RE.match(compact)
    if match:
        return match.group("number")
    return normalised


def canonical_number(value: str) -> Optional[float]:
    """Parse a value as a number after stripping units, or return ``None``.

    Examples
    --------
    >>> canonical_number("16 MB")
    16.0
    >>> canonical_number("3.5\\"")
    3.5
    >>> canonical_number("Seagate") is None
    True
    """
    stripped = strip_units(value)
    stripped = stripped.strip().strip('"')
    if _NUMBER_RE.match(stripped):
        return float(stripped)
    return None
