"""Text processing substrate used throughout the product-synthesis pipeline.

The modules in this package are deliberately dependency-light (standard
library plus numpy) because every higher layer of the reproduction —
corpus generation, attribute extraction, distributional features,
baseline matchers and value fusion — builds on them.

Public surface
--------------
``tokenize``
    Tokenisers for attribute values, offer titles and merchant page text.
``normalize``
    Canonicalisation of attribute names and values (units, casing, digits).
``distributions``
    Bags of words and term probability distributions.
``divergence``
    Kullback-Leibler and Jensen-Shannon divergence (paper Section 3.1).
``setsim``
    Jaccard, Dice, overlap and cosine set/vector similarities.
``string_metrics``
    Edit distance, Jaro, Jaro-Winkler and character n-gram similarity.
``tfidf``
    TF-IDF weighting and the SoftTFIDF hybrid measure used by DUMAS.
"""

from repro.text.distributions import BagOfWords, TermDistribution
from repro.text.divergence import jensen_shannon_divergence, kl_divergence
from repro.text.normalize import normalize_attribute_name, normalize_value
from repro.text.setsim import (
    cosine_similarity,
    dice_coefficient,
    jaccard_coefficient,
    overlap_coefficient,
)
from repro.text.string_metrics import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    ngram_similarity,
    token_set_similarity,
)
from repro.text.memo import clear_text_caches, text_cache_info
from repro.text.tfidf import IncrementalTfIdf, SoftTfIdf, TfIdfVectorizer
from repro.text.tokenize import tokenize, tokenize_title, tokenize_value

__all__ = [
    "BagOfWords",
    "TermDistribution",
    "jensen_shannon_divergence",
    "kl_divergence",
    "normalize_attribute_name",
    "normalize_value",
    "cosine_similarity",
    "dice_coefficient",
    "jaccard_coefficient",
    "overlap_coefficient",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "ngram_similarity",
    "token_set_similarity",
    "IncrementalTfIdf",
    "SoftTfIdf",
    "TfIdfVectorizer",
    "clear_text_caches",
    "text_cache_info",
    "tokenize",
    "tokenize_title",
    "tokenize_value",
]
