"""Set- and vector-based similarity coefficients.

The Jaccard coefficient is the second distributional-similarity measure
used by the attribute-correspondence classifier (paper Section 3.1,
"The Jaccard coefficient considers only counts for the different terms,
and it is computed as J(A,B) = |A ∩ B| / |A ∪ B|").  Dice, overlap and
cosine are included because the COMA++-style baseline matchers combine
several token-level similarities.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Set, Union

from repro.text.distributions import BagOfWords, TermDistribution

__all__ = [
    "jaccard_coefficient",
    "dice_coefficient",
    "overlap_coefficient",
    "cosine_similarity",
]

SetLike = Union[Set[str], frozenset, BagOfWords, TermDistribution, Iterable[str]]


def _as_term_set(obj: SetLike) -> frozenset:
    if isinstance(obj, BagOfWords):
        return obj.term_set()
    if isinstance(obj, TermDistribution):
        return obj.support()
    if isinstance(obj, (set, frozenset)):
        return frozenset(obj)
    return frozenset(obj)


def jaccard_coefficient(a: SetLike, b: SetLike) -> float:
    """Jaccard coefficient ``|A ∩ B| / |A ∪ B|`` over distinct terms.

    Both sets empty is defined as similarity 0.0 (no evidence of overlap),
    matching how the feature extractor treats attributes with no observed
    values.

    Examples
    --------
    >>> jaccard_coefficient({"ata", "ide", "133"}, {"ata", "ide", "100"})
    0.5
    """
    set_a = _as_term_set(a)
    set_b = _as_term_set(b)
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def dice_coefficient(a: SetLike, b: SetLike) -> float:
    """Sørensen-Dice coefficient ``2|A ∩ B| / (|A| + |B|)``."""
    set_a = _as_term_set(a)
    set_b = _as_term_set(b)
    denominator = len(set_a) + len(set_b)
    if denominator == 0:
        return 0.0
    return 2.0 * len(set_a & set_b) / denominator


def overlap_coefficient(a: SetLike, b: SetLike) -> float:
    """Overlap (Szymkiewicz-Simpson) coefficient ``|A ∩ B| / min(|A|, |B|)``."""
    set_a = _as_term_set(a)
    set_b = _as_term_set(b)
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller


def cosine_similarity(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """Cosine similarity between two sparse term-weight vectors.

    Accepts any mapping from term to weight (counts, probabilities or
    TF-IDF weights).  Returns 0.0 when either vector is all-zero.
    """
    if not a or not b:
        return 0.0
    # Iterate over the smaller vector for the dot product.
    if len(a) > len(b):
        a, b = b, a
    dot = sum(weight * b.get(term, 0.0) for term, weight in a.items())
    norm_a = math.sqrt(sum(weight * weight for weight in a.values()))
    norm_b = math.sqrt(sum(weight * weight for weight in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)
