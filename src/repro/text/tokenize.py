"""Tokenisers for attribute values, names, offer titles and page text.

The paper builds "bags of words" from attribute values (Section 3.1) and
treats values as bags of terms during value fusion (Appendix A) and in the
instance-based Naive Bayes matcher (Appendix C).  A single shared tokeniser
keeps those code paths consistent.

Tokenisation rules
------------------
* Unicode text is lower-cased.
* Alphanumeric runs are kept together (``500gb`` stays one token) but
  punctuation splits tokens (``SATA-300`` -> ``sata``, ``300``... no:
  hyphens between alphanumerics split, which matches how merchants vary
  between ``SATA-300`` and ``SATA 300``).
* Pure punctuation is dropped.
* Numeric tokens keep a decimal point when it is internal (``3.5`` is one
  token) so that form factors and sizes survive tokenisation.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence

__all__ = [
    "tokenize",
    "tokenize_value",
    "tokenize_title",
    "tokenize_attribute_name",
    "sliding_ngrams",
]

# A token is either a number (possibly with an internal decimal point) or a
# run of letters/digits.  ``3.5`` and ``500gb`` survive as single tokens,
# while ``SATA-300`` becomes ``sata`` and ``300``.
_TOKEN_RE = re.compile(r"\d+\.\d+|[a-z0-9]+")

# Attribute names frequently embed separators such as "/" or "&" which carry
# no meaning ("Storage Hard Drive / Capacity").
_NAME_SEPARATOR_RE = re.compile(r"[/&|,;:()\[\]{}]")

_WHITESPACE_RE = re.compile(r"\s+")


def tokenize(text: str) -> List[str]:
    """Tokenise arbitrary text into lower-case alphanumeric tokens.

    Parameters
    ----------
    text:
        Any string; ``None``-safe callers should pass ``""`` instead.

    Returns
    -------
    list of str
        Tokens in their original order (duplicates preserved).

    Examples
    --------
    >>> tokenize("Hitachi 500GB S/ATA2 7200rpm")
    ['hitachi', '500gb', 's', 'ata2', '7200rpm']
    >>> tokenize("3.5\\" x 1/3H")
    ['3.5', 'x', '1', '3h']
    """
    if not text:
        return []
    return _TOKEN_RE.findall(text.lower())


def tokenize_value(value: str) -> List[str]:
    """Tokenise an attribute value.

    Currently identical to :func:`tokenize`; exists as a separate entry
    point so value-specific handling (e.g. unit splitting) can evolve
    without touching title tokenisation.
    """
    return tokenize(value)


def tokenize_title(title: str) -> List[str]:
    """Tokenise an offer title (short free-text product description)."""
    return tokenize(title)


def tokenize_attribute_name(name: str) -> List[str]:
    """Tokenise an attribute name.

    Attribute names use separators (``Storage Hard Drive / Capacity``) and
    abbreviations with periods (``Mfr. Part #``).  Separators are removed
    before the generic tokeniser runs.

    Examples
    --------
    >>> tokenize_attribute_name("Storage Hard Drive / Capacity")
    ['storage', 'hard', 'drive', 'capacity']
    >>> tokenize_attribute_name("Mfr. Part #")
    ['mfr', 'part']
    """
    if not name:
        return []
    cleaned = _NAME_SEPARATOR_RE.sub(" ", name)
    return tokenize(cleaned)


def sliding_ngrams(tokens: Sequence[str], n: int) -> List[str]:
    """Return token n-grams (joined with a single space).

    Used by the title-based category classifier to capture short phrases
    such as "hard drive" and "digital camera".

    Raises
    ------
    ValueError
        If ``n`` is not a positive integer.
    """
    if n < 1:
        raise ValueError(f"n-gram order must be >= 1, got {n}")
    if len(tokens) < n:
        return []
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def join_tokens(tokens: Iterable[str]) -> str:
    """Join tokens back into a single normalised string."""
    return " ".join(tokens)
