"""TF-IDF weighting and the SoftTFIDF hybrid similarity.

The DUMAS baseline (paper Appendix C) scores the similarity of two field
values with **SoftTFIDF**: a token-level cosine similarity where tokens are
weighted by TF-IDF and two tokens are considered "the same" when their
Jaro-Winkler similarity exceeds a threshold.  This module provides:

* :class:`TfIdfVectorizer` — a small corpus-statistics object producing
  sparse TF-IDF vectors for strings;
* :class:`SoftTfIdf` — the soft cosine similarity of Cohen et al. used by
  DUMAS.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.text.setsim import cosine_similarity
from repro.text.string_metrics import jaro_winkler_similarity
from repro.text.tokenize import tokenize_value

__all__ = ["IncrementalTfIdf", "TfIdfVectorizer", "SoftTfIdf"]


class IncrementalTfIdf:
    """Updatable TF-IDF statistics over a growing corpus of short strings.

    Unlike :class:`TfIdfVectorizer`, which freezes its IDF table at
    construction time, this class keeps raw document frequencies and
    derives IDF values on demand, so documents can be appended at any
    point (``add`` / ``extend``) without rebuilding anything — the
    statistics the run-time engine maintains per category across
    micro-batches.  Two instances built on disjoint corpus halves can be
    combined with :meth:`merge`, which is what lets sharded ingestion
    compute statistics in parallel and still agree with a serial pass.

    Unknown tokens at query time receive the maximum IDF, the conventional
    smoothing for out-of-vocabulary terms.

    Examples
    --------
    >>> stats = IncrementalTfIdf(["Seagate Barracuda"])
    >>> stats.extend(["Seagate Momentus", "WD Raptor"])
    >>> stats.num_documents
    3
    >>> stats.idf("seagate") < stats.idf("raptor")
    True
    """

    def __init__(self, corpus: Iterable[str] = ()) -> None:
        self._num_documents = 0
        self._document_frequency: Dict[str, int] = {}
        self.extend(corpus)

    # -- updates ---------------------------------------------------------------

    def add(self, text: str) -> None:
        """Account one document's tokens into the statistics."""
        self._num_documents += 1
        for token in set(tokenize_value(text)):
            self._document_frequency[token] = self._document_frequency.get(token, 0) + 1

    def extend(self, corpus: Iterable[str]) -> None:
        """Account a batch of documents into the statistics."""
        for text in corpus:
            self.add(text)

    def discard(self, text: str) -> None:
        """Remove one previously :meth:`add`-ed document from the statistics.

        The exact inverse of :meth:`add`: after ``discard(text)`` the
        statistics are indistinguishable from never having added
        ``text``.  The serving-side catalog index relies on this to
        replace a product document in place when a cluster re-fuses
        (its product id is stable but its title/attributes change).

        Raises
        ------
        ValueError
            If ``text`` contains a token the statistics never counted —
            a document frequency can never go negative, so this always
            indicates the caller discarding something it never added.
        """
        if self._num_documents == 0:
            raise ValueError("cannot discard from empty TF-IDF statistics")
        tokens = set(tokenize_value(text))
        for token in tokens:
            frequency = self._document_frequency.get(token, 0)
            if frequency == 0:
                raise ValueError(
                    f"cannot discard document: token {token!r} was never added"
                )
        self._num_documents -= 1
        for token in tokens:
            frequency = self._document_frequency[token]
            if frequency == 1:
                del self._document_frequency[token]
            else:
                self._document_frequency[token] = frequency - 1

    def merge(self, other: "IncrementalTfIdf") -> None:
        """Fold another statistics object (built on disjoint documents) in."""
        self._num_documents += other._num_documents
        for token, frequency in other._document_frequency.items():
            self._document_frequency[token] = (
                self._document_frequency.get(token, 0) + frequency
            )

    # -- persistence -----------------------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        """The raw statistics as a JSON-compatible dict (see :meth:`from_state_dict`)."""
        return {
            "num_documents": self._num_documents,
            "document_frequency": dict(self._document_frequency),
        }

    @classmethod
    def from_state_dict(cls, state: Dict[str, object]) -> "IncrementalTfIdf":
        """Rebuild statistics previously captured with :meth:`state_dict`.

        The restored object is indistinguishable from the original: same
        document count, same document frequencies, hence identical IDF
        values — what lets a durable catalog store resume per-category
        statistics across process restarts.
        """
        stats = cls()
        stats._num_documents = int(state.get("num_documents", 0))
        frequencies = state.get("document_frequency", {})
        stats._document_frequency = {
            str(token): int(frequency)
            for token, frequency in frequencies.items()  # type: ignore[union-attr]
        }
        return stats

    # -- statistics ------------------------------------------------------------

    def _idf_value(self, document_frequency: int) -> float:
        # Smoothed IDF; never zero so every token contributes a little.
        return math.log((1 + self._num_documents) / (1 + document_frequency)) + 1.0

    @property
    def num_documents(self) -> int:
        """Number of documents the IDF statistics were computed from."""
        return self._num_documents

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens observed so far."""
        return len(self._document_frequency)

    def document_frequency(self, token: str) -> int:
        """How many documents ``token`` appeared in (0 when unseen)."""
        return self._document_frequency.get(token, 0)

    def idf(self, token: str) -> float:
        """The (smoothed) inverse document frequency of ``token``."""
        frequency = self._document_frequency.get(token)
        if frequency is None:
            return self._idf_value(1) if self._num_documents else 1.0
        return self._idf_value(frequency)

    def transform(self, text: str) -> Dict[str, float]:
        """Return the L2-normalised TF-IDF vector of ``text``."""
        tokens = tokenize_value(text)
        if not tokens:
            return {}
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        weights = {
            token: (count / len(tokens)) * self.idf(token)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(value * value for value in weights.values()))
        if norm == 0.0:
            return {}
        return {token: value / norm for token, value in weights.items()}

    def similarity(self, a: str, b: str) -> float:
        """Plain TF-IDF cosine similarity between two strings."""
        return cosine_similarity(self.transform(a), self.transform(b))


class TfIdfVectorizer(IncrementalTfIdf):
    """Frozen-corpus TF-IDF vectors (the historical batch-mode interface).

    The corpus is supplied up front (one "document" per string — typically
    one attribute value per document).  The class is a thin freeze over
    :class:`IncrementalTfIdf`: the statistics are identical, only the
    contract differs (no post-construction updates), which keeps the
    offline DUMAS baseline and the run-time engine on one implementation.

    Examples
    --------
    >>> vec = TfIdfVectorizer(["Seagate Barracuda", "Seagate Momentus", "WD Raptor"])
    >>> weights = vec.transform("Seagate Barracuda")
    >>> weights["barracuda"] > weights["seagate"]
    True
    """

    def __init__(self, corpus: Iterable[str]) -> None:
        self._frozen = False
        super().__init__(corpus)
        self._frozen = True
        # Freezing lets IDF values be tabulated once instead of recomputed
        # per lookup — transform() is the SoftTFIDF/DUMAS hot path.
        self._idf_table: Dict[str, float] = {
            token: self._idf_value(frequency)
            for token, frequency in self._document_frequency.items()
        }
        self._default_idf = self._idf_value(1) if self._num_documents else 1.0

    def _frozen_error(self) -> TypeError:
        return TypeError(
            "TfIdfVectorizer statistics are frozen at construction time; "
            "use IncrementalTfIdf for updatable statistics"
        )

    def add(self, text: str) -> None:
        """Refuse updates once the statistics are frozen."""
        if self._frozen:
            raise self._frozen_error()
        super().add(text)

    def discard(self, text: str) -> None:
        """Always refuse: frozen statistics cannot drop documents."""
        raise self._frozen_error()

    def merge(self, other: IncrementalTfIdf) -> None:
        """Always refuse: frozen statistics cannot absorb another corpus."""
        raise self._frozen_error()

    def idf(self, token: str) -> float:
        """The (smoothed) inverse document frequency of ``token``."""
        return self._idf_table.get(token, self._default_idf)


class SoftTfIdf:
    """SoftTFIDF similarity (Cohen, Ravikumar & Fienberg) used by DUMAS.

    Two strings are compared as token bags.  Tokens from the first string
    are softly aligned to their most Jaro-Winkler-similar counterpart in
    the second string; aligned pairs above ``threshold`` contribute the
    product of their TF-IDF weights scaled by the inner similarity.

    Parameters
    ----------
    corpus:
        Strings used to estimate IDF statistics.
    threshold:
        Minimum Jaro-Winkler similarity for two tokens to be considered a
        soft match (0.9 in the original formulation).
    """

    def __init__(self, corpus: Iterable[str], threshold: float = 0.9) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._vectorizer = TfIdfVectorizer(corpus)
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        """The inner Jaro-Winkler acceptance threshold."""
        return self._threshold

    def similarity(self, a: str, b: str) -> float:
        """SoftTFIDF similarity of two strings, in [0, 1].

        Examples
        --------
        >>> soft = SoftTfIdf(["Seagate Barracuda HD", "WD Raptor HDD"])
        >>> soft.similarity("Seagate Barracuda", "Seagate Barracuda HD") > 0.8
        True
        """
        weights_a = self._vectorizer.transform(a)
        weights_b = self._vectorizer.transform(b)
        if not weights_a or not weights_b:
            return 0.0

        total = 0.0
        for token_a, weight_a in weights_a.items():
            best_similarity = 0.0
            best_token: Optional[str] = None
            for token_b in weights_b:
                inner = (
                    1.0
                    if token_a == token_b
                    else jaro_winkler_similarity(token_a, token_b)
                )
                if inner > best_similarity:
                    best_similarity = inner
                    best_token = token_b
            if best_token is not None and best_similarity >= self._threshold:
                total += weight_a * weights_b[best_token] * best_similarity
        # The vectors are already L2-normalised, so the accumulated score is
        # a (soft) cosine and stays within [0, 1] modulo floating point.
        return min(max(total, 0.0), 1.0)

    def pairwise_matrix(
        self, rows: Sequence[str], columns: Sequence[str]
    ) -> List[List[float]]:
        """Similarity matrix between two lists of strings (rows x columns)."""
        return [[self.similarity(row, column) for column in columns] for row in rows]
