"""TF-IDF weighting and the SoftTFIDF hybrid similarity.

The DUMAS baseline (paper Appendix C) scores the similarity of two field
values with **SoftTFIDF**: a token-level cosine similarity where tokens are
weighted by TF-IDF and two tokens are considered "the same" when their
Jaro-Winkler similarity exceeds a threshold.  This module provides:

* :class:`TfIdfVectorizer` — a small corpus-statistics object producing
  sparse TF-IDF vectors for strings;
* :class:`SoftTfIdf` — the soft cosine similarity of Cohen et al. used by
  DUMAS.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.text.setsim import cosine_similarity
from repro.text.string_metrics import jaro_winkler_similarity
from repro.text.tokenize import tokenize_value

__all__ = ["TfIdfVectorizer", "SoftTfIdf"]


class TfIdfVectorizer:
    """Compute sparse TF-IDF vectors over a corpus of short strings.

    The corpus is supplied up front (one "document" per string — typically
    one attribute value per document); IDF statistics are frozen at
    construction time.  Unknown tokens at query time receive the maximum
    IDF, which is the conventional smoothing for out-of-vocabulary terms.

    Examples
    --------
    >>> vec = TfIdfVectorizer(["Seagate Barracuda", "Seagate Momentus", "WD Raptor"])
    >>> weights = vec.transform("Seagate Barracuda")
    >>> weights["barracuda"] > weights["seagate"]
    True
    """

    def __init__(self, corpus: Iterable[str]) -> None:
        documents = [tokenize_value(text) for text in corpus]
        self._num_documents = len(documents)
        document_frequency: Dict[str, int] = {}
        for tokens in documents:
            for token in set(tokens):
                document_frequency[token] = document_frequency.get(token, 0) + 1
        self._idf: Dict[str, float] = {
            token: self._idf_value(frequency)
            for token, frequency in document_frequency.items()
        }
        self._max_idf = self._idf_value(1) if self._num_documents else 1.0

    def _idf_value(self, document_frequency: int) -> float:
        # Smoothed IDF; never zero so every token contributes a little.
        return math.log((1 + self._num_documents) / (1 + document_frequency)) + 1.0

    @property
    def num_documents(self) -> int:
        """Number of documents the IDF statistics were computed from."""
        return self._num_documents

    def idf(self, token: str) -> float:
        """The (smoothed) inverse document frequency of ``token``."""
        return self._idf.get(token, self._max_idf)

    def transform(self, text: str) -> Dict[str, float]:
        """Return the L2-normalised TF-IDF vector of ``text``."""
        tokens = tokenize_value(text)
        if not tokens:
            return {}
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        weights = {
            token: (count / len(tokens)) * self.idf(token)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(value * value for value in weights.values()))
        if norm == 0.0:
            return {}
        return {token: value / norm for token, value in weights.items()}

    def similarity(self, a: str, b: str) -> float:
        """Plain TF-IDF cosine similarity between two strings."""
        return cosine_similarity(self.transform(a), self.transform(b))


class SoftTfIdf:
    """SoftTFIDF similarity (Cohen, Ravikumar & Fienberg) used by DUMAS.

    Two strings are compared as token bags.  Tokens from the first string
    are softly aligned to their most Jaro-Winkler-similar counterpart in
    the second string; aligned pairs above ``threshold`` contribute the
    product of their TF-IDF weights scaled by the inner similarity.

    Parameters
    ----------
    corpus:
        Strings used to estimate IDF statistics.
    threshold:
        Minimum Jaro-Winkler similarity for two tokens to be considered a
        soft match (0.9 in the original formulation).
    """

    def __init__(self, corpus: Iterable[str], threshold: float = 0.9) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self._vectorizer = TfIdfVectorizer(corpus)
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        """The inner Jaro-Winkler acceptance threshold."""
        return self._threshold

    def similarity(self, a: str, b: str) -> float:
        """SoftTFIDF similarity of two strings, in [0, 1].

        Examples
        --------
        >>> soft = SoftTfIdf(["Seagate Barracuda HD", "WD Raptor HDD"])
        >>> soft.similarity("Seagate Barracuda", "Seagate Barracuda HD") > 0.8
        True
        """
        weights_a = self._vectorizer.transform(a)
        weights_b = self._vectorizer.transform(b)
        if not weights_a or not weights_b:
            return 0.0

        total = 0.0
        for token_a, weight_a in weights_a.items():
            best_similarity = 0.0
            best_token: Optional[str] = None
            for token_b in weights_b:
                inner = (
                    1.0
                    if token_a == token_b
                    else jaro_winkler_similarity(token_a, token_b)
                )
                if inner > best_similarity:
                    best_similarity = inner
                    best_token = token_b
            if best_token is not None and best_similarity >= self._threshold:
                total += weight_a * weights_b[best_token] * best_similarity
        # The vectors are already L2-normalised, so the accumulated score is
        # a (soft) cosine and stays within [0, 1] modulo floating point.
        return min(max(total, 0.0), 1.0)

    def pairwise_matrix(
        self, rows: Sequence[str], columns: Sequence[str]
    ) -> List[List[float]]:
        """Similarity matrix between two lists of strings (rows x columns)."""
        return [[self.similarity(row, column) for column in columns] for row in rows]
