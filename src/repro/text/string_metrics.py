"""Character- and token-level string similarity metrics.

These metrics back two of the comparison systems re-implemented for the
paper's evaluation section:

* the **COMA++-style name matchers** (Figure 8/9) use edit-distance,
  character-trigram and token similarities between attribute names;
* the **DUMAS** baseline (Appendix C) uses SoftTFIDF, whose inner
  similarity is Jaro-Winkler (:func:`jaro_winkler_similarity`).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.text.tokenize import tokenize_attribute_name

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "character_ngrams",
    "ngram_similarity",
    "token_set_similarity",
]


def levenshtein_distance(a: str, b: str) -> int:
    """Classic Levenshtein edit distance (insert/delete/substitute, cost 1).

    Examples
    --------
    >>> levenshtein_distance("capacity", "capacty")
    1
    >>> levenshtein_distance("", "abc")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension for memory locality.
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if char_a == char_b else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance converted to a similarity in [0, 1].

    ``1 - distance / max(len(a), len(b))``; two empty strings are defined
    as similarity 1.0.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings, in [0, 1]."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0

    match_window = max(len_a, len_b) // 2 - 1
    match_window = max(match_window, 0)

    a_matched = [False] * len_a
    b_matched = [False] * len_b
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_b)
        for j in range(start, end):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0

    # Count transpositions between the matched characters.
    transpositions = 0
    j = 0
    for i in range(len_a):
        if not a_matched[i]:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix (up to 4 chars).

    Raises
    ------
    ValueError
        If ``prefix_weight`` is outside (0, 0.25]; larger weights can push
        the similarity above 1.
    """
    if not 0.0 < prefix_weight <= 0.25:
        raise ValueError(
            f"prefix_weight must be in (0, 0.25], got {prefix_weight}"
        )
    jaro = jaro_similarity(a, b)
    prefix_length = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_weight * (1.0 - jaro)


def character_ngrams(text: str, n: int = 3, pad: bool = True) -> List[str]:
    """Character n-grams of ``text`` (default trigrams), optionally padded.

    Padding with ``#`` emphasises prefixes/suffixes, which is how the
    COMA++ trigram matcher behaves.

    Raises
    ------
    ValueError
        If ``n`` is not a positive integer.
    """
    if n < 1:
        raise ValueError(f"n-gram size must be >= 1, got {n}")
    if not text:
        return []
    padded = f"{'#' * (n - 1)}{text.lower()}{'#' * (n - 1)}" if pad else text.lower()
    if len(padded) < n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def ngram_similarity(a: str, b: str, n: int = 3) -> float:
    """Dice similarity between the character n-gram sets of two strings."""
    grams_a = set(character_ngrams(a, n=n))
    grams_b = set(character_ngrams(b, n=n))
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    return 2.0 * len(grams_a & grams_b) / (len(grams_a) + len(grams_b))


def token_set_similarity(a: str, b: str) -> float:
    """Jaccard similarity between the token sets of two attribute names.

    ``"Storage Hard Drive / Capacity"`` and ``"Capacity"`` share the token
    ``capacity`` and therefore have non-zero similarity even though their
    edit distance is large.
    """
    tokens_a = set(tokenize_attribute_name(a))
    tokens_b = set(tokenize_attribute_name(b))
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 0.0
    return len(tokens_a & tokens_b) / len(union)


def best_alignment_score(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
    """Average best Jaro-Winkler alignment of tokens in ``tokens_a`` to ``tokens_b``.

    A light-weight version of the Monge-Elkan similarity used when the
    COMA++-style combined matcher compares multi-token attribute names.
    Returns 0.0 when either side is empty.
    """
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(jaro_winkler_similarity(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)
