"""Bags of words and term probability distributions.

Paper Section 3.1: for every candidate correspondence the system collects
"a bag of words ... that contains all the values for attribute A_p of
products of P" and the analogous bag for the offer attribute, then turns
each bag into a term distribution

    p_A(t) = (number of times t appears in A) / (total number of elements in A)

These two small classes implement exactly that and are the substrate on
which the Jensen-Shannon and Jaccard features are computed.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

from repro.text.tokenize import tokenize_value

__all__ = ["BagOfWords", "TermDistribution"]


class BagOfWords:
    """A multiset of terms accumulated from attribute values.

    The bag is mutable while being assembled (``add_value`` / ``add_terms``)
    and is converted to an immutable :class:`TermDistribution` when the
    similarity features are computed.

    Examples
    --------
    >>> bag = BagOfWords()
    >>> bag.add_value("ATA 100")
    >>> bag.add_value("IDE 133")
    >>> sorted(bag.terms())
    ['100', '133', 'ata', 'ide']
    >>> bag.total
    4
    """

    __slots__ = ("_counts", "_total")

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._counts: Counter = Counter()
        self._total = 0
        self.add_terms(terms)

    # -- construction -----------------------------------------------------

    def add_value(self, value: str) -> None:
        """Tokenise ``value`` and add its terms to the bag."""
        self.add_terms(tokenize_value(value))

    def add_values(self, values: Iterable[str]) -> None:
        """Add several attribute values at once."""
        for value in values:
            self.add_value(value)

    def add_terms(self, terms: Iterable[str]) -> None:
        """Add pre-tokenised terms to the bag."""
        for term in terms:
            self._counts[term] += 1
            self._total += 1

    def merge(self, other: "BagOfWords") -> "BagOfWords":
        """Return a new bag containing the terms of both operands."""
        merged = BagOfWords()
        merged._counts = self._counts + other._counts
        merged._total = self._total + other._total
        return merged

    # -- inspection -------------------------------------------------------

    @property
    def total(self) -> int:
        """Total number of term occurrences (with multiplicity)."""
        return self._total

    def count(self, term: str) -> int:
        """Occurrences of ``term`` in the bag."""
        return self._counts.get(term, 0)

    def terms(self) -> List[str]:
        """Distinct terms present in the bag."""
        return list(self._counts.keys())

    def term_set(self) -> frozenset:
        """Distinct terms as a frozenset (used by Jaccard)."""
        return frozenset(self._counts.keys())

    def counts(self) -> Dict[str, int]:
        """A copy of the term -> count mapping."""
        return dict(self._counts)

    def most_common(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most frequent terms, most frequent first."""
        return self._counts.most_common(n)

    def __len__(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return self._total > 0

    def __contains__(self, term: str) -> bool:
        return term in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BagOfWords):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{t}:{c}" for t, c in self._counts.most_common(5))
        return f"BagOfWords(total={self._total}, top=[{preview}])"

    # -- conversion -------------------------------------------------------

    def distribution(self) -> "TermDistribution":
        """Convert the bag into a :class:`TermDistribution`."""
        return TermDistribution.from_counts(self._counts)


class TermDistribution:
    """An immutable probability distribution over terms.

    Probabilities always sum to 1 (within floating point error) unless the
    distribution is empty.
    """

    __slots__ = ("_probs",)

    def __init__(self, probabilities: Mapping[str, float]) -> None:
        self._probs: Dict[str, float] = dict(probabilities)

    @classmethod
    def from_counts(cls, counts: Mapping[str, int]) -> "TermDistribution":
        """Build a distribution from raw term counts."""
        total = sum(counts.values())
        if total <= 0:
            return cls({})
        return cls({term: count / total for term, count in counts.items()})

    @classmethod
    def from_values(cls, values: Iterable[str]) -> "TermDistribution":
        """Build a distribution directly from attribute values."""
        bag = BagOfWords()
        bag.add_values(values)
        return bag.distribution()

    # -- inspection -------------------------------------------------------

    def probability(self, term: str) -> float:
        """P(term), zero for unseen terms."""
        return self._probs.get(term, 0.0)

    def support(self) -> frozenset:
        """Terms with non-zero probability."""
        return frozenset(self._probs.keys())

    def items(self) -> Iterable[Tuple[str, float]]:
        """(term, probability) pairs of the distribution."""
        return self._probs.items()

    def as_dict(self) -> Dict[str, float]:
        """A plain dict copy of the term probabilities."""
        return dict(self._probs)

    def is_empty(self) -> bool:
        """Whether the distribution has no support at all."""
        return not self._probs

    def __len__(self) -> int:
        return len(self._probs)

    def __contains__(self, term: str) -> bool:
        return term in self._probs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        top = sorted(self._probs.items(), key=lambda kv: -kv[1])[:5]
        preview = ", ".join(f"{t}:{p:.3f}" for t, p in top)
        return f"TermDistribution(size={len(self._probs)}, top=[{preview}])"

    # -- algebra ----------------------------------------------------------

    def mixture(self, other: "TermDistribution", weight: float = 0.5) -> "TermDistribution":
        """Return the mixture ``weight * self + (1 - weight) * other``.

        The Jensen-Shannon divergence uses the equal-weight mixture
        ("average" distribution) of the two operand distributions.

        Raises
        ------
        ValueError
            If ``weight`` is outside [0, 1].
        """
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"mixture weight must be within [0, 1], got {weight}")
        mixed: Dict[str, float] = {}
        for term, prob in self._probs.items():
            mixed[term] = weight * prob
        for term, prob in other._probs.items():
            mixed[term] = mixed.get(term, 0.0) + (1.0 - weight) * prob
        return TermDistribution(mixed)
