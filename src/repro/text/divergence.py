"""Kullback-Leibler and Jensen-Shannon divergence between term distributions.

Paper Section 3.1 defines the distributional-similarity feature used by the
attribute-correspondence classifier:

    JS(p_A || p_B) = 1/2 KL(p_A || p_M) + 1/2 KL(p_B || p_M)

where ``p_M = 1/2 p_A + 1/2 p_B`` is the average distribution and KL is the
Kullback-Leibler divergence.  Because every term of ``p_A`` also appears in
``p_M`` with at least half of its probability, the JS divergence is always
finite and bounded by ``ln 2`` (natural log) or 1 bit (log base 2).
"""

from __future__ import annotations

import math
from typing import Union

from repro.text.distributions import BagOfWords, TermDistribution

__all__ = [
    "kl_divergence",
    "jensen_shannon_divergence",
    "jensen_shannon_similarity",
    "MAX_JS_DIVERGENCE",
]

DistributionLike = Union[TermDistribution, BagOfWords]

#: Upper bound of the JS divergence in base-2 logarithm (1 bit).
MAX_JS_DIVERGENCE = 1.0


def _as_distribution(dist: DistributionLike) -> TermDistribution:
    if isinstance(dist, BagOfWords):
        return dist.distribution()
    if isinstance(dist, TermDistribution):
        return dist
    raise TypeError(
        f"expected TermDistribution or BagOfWords, got {type(dist).__name__}"
    )


def kl_divergence(
    p: DistributionLike, q: DistributionLike, base: float = 2.0
) -> float:
    """Kullback-Leibler divergence ``KL(p || q)``.

    Terms with ``p(t) == 0`` contribute nothing.  Terms with ``p(t) > 0``
    but ``q(t) == 0`` make the divergence infinite; this situation never
    arises inside the JS computation (the mixture dominates both operands)
    but can arise when KL is called directly, in which case ``math.inf`` is
    returned.

    Parameters
    ----------
    p, q:
        Term distributions (or bags of words, converted automatically).
    base:
        Logarithm base; the paper reports values consistent with base 2.

    Raises
    ------
    ValueError
        If either distribution is empty or ``base`` is not greater than 1.
    """
    if base <= 1.0:
        raise ValueError(f"logarithm base must be > 1, got {base}")
    p_dist = _as_distribution(p)
    q_dist = _as_distribution(q)
    if p_dist.is_empty() or q_dist.is_empty():
        raise ValueError("KL divergence is undefined for empty distributions")

    log_base = math.log(base)
    total = 0.0
    for term, p_t in p_dist.items():
        if p_t <= 0.0:
            continue
        q_t = q_dist.probability(term)
        if q_t <= 0.0:
            return math.inf
        total += p_t * (math.log(p_t / q_t) / log_base)
    # Floating point noise can produce a tiny negative number when the two
    # distributions are identical.
    return max(total, 0.0)


def jensen_shannon_divergence(
    p: DistributionLike, q: DistributionLike, base: float = 2.0
) -> float:
    """Jensen-Shannon divergence between two term distributions.

    Symmetric, finite, and bounded by 1.0 when ``base=2``.  Two identical
    distributions have divergence 0; distributions with disjoint support
    have divergence 1 (base 2).

    When exactly one of the distributions is empty the divergence is
    defined here as the maximum (1.0): an attribute with no observed
    values carries no evidence of similarity.  When both are empty the
    divergence is also the maximum, mirroring how the feature extractor
    treats missing evidence.

    Examples
    --------
    >>> from repro.text.distributions import TermDistribution
    >>> speed = TermDistribution.from_values(["5400", "7200", "5400", "7200"])
    >>> rpm = TermDistribution.from_values(["5400", "7200", "5400", "7200"])
    >>> jensen_shannon_divergence(speed, rpm)
    0.0
    """
    p_dist = _as_distribution(p)
    q_dist = _as_distribution(q)
    if p_dist.is_empty() or q_dist.is_empty():
        return MAX_JS_DIVERGENCE

    mixture = p_dist.mixture(q_dist, weight=0.5)
    left = kl_divergence(p_dist, mixture, base=base)
    right = kl_divergence(q_dist, mixture, base=base)
    value = 0.5 * left + 0.5 * right
    # Clamp against floating point drift slightly above the theoretical max.
    return min(max(value, 0.0), MAX_JS_DIVERGENCE)


def jensen_shannon_similarity(
    p: DistributionLike, q: DistributionLike, base: float = 2.0
) -> float:
    """Similarity counterpart of the JS divergence: ``1 - JS(p, q)``.

    The correspondence classifier consumes similarities (higher = more
    alike), so this helper converts the divergence into [0, 1] where 1
    means identical distributions.
    """
    return MAX_JS_DIVERGENCE - jensen_shannon_divergence(p, q, base=base)
