"""The Web-page Attribute Extraction component.

Used in both phases of the architecture (paper Figure 4): during Offline
Learning it supplies attribute-value pairs for historical offers, and in
the Run-Time Offer Processing pipeline it supplies them for incoming
offers.  The extractor is deliberately simple and noisy — the paper's key
claim is that schema reconciliation downstream filters the noise out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.corpus.webstore import PageNotFoundError, WebStore
from repro.extraction.dom import parse_html
from repro.extraction.tables import extract_pairs_from_tables
from repro.model.attributes import Specification
from repro.model.offers import Offer

__all__ = ["ExtractionResult", "WebPageAttributeExtractor"]


@dataclass
class ExtractionResult:
    """Statistics of one extraction run over a batch of offers."""

    offers_processed: int = 0
    offers_with_pairs: int = 0
    offers_missing_page: int = 0
    total_pairs: int = 0

    def coverage(self) -> float:
        """Fraction of offers for which at least one pair was extracted."""
        if self.offers_processed == 0:
            return 0.0
        return self.offers_with_pairs / self.offers_processed


class WebPageAttributeExtractor:
    """Extract offer specifications from merchant landing pages.

    Parameters
    ----------
    web:
        The page store used to resolve offer URLs.

    Examples
    --------
    >>> from repro.corpus.webstore import WebStore
    >>> store = WebStore()
    >>> store.put("http://m.example.com/1",
    ...     "<table><tr><td>Brand</td><td>Hitachi</td></tr></table>")
    >>> extractor = WebPageAttributeExtractor(store)
    >>> extractor.extract_from_url("http://m.example.com/1").get("Brand")
    'Hitachi'
    """

    def __init__(self, web: WebStore) -> None:
        self._web = web

    # -- single page ---------------------------------------------------------

    def extract_from_html(self, html_text: str) -> Specification:
        """Extract attribute-value pairs from raw HTML."""
        root = parse_html(html_text)
        return Specification(extract_pairs_from_tables(root))

    def extract_from_url(self, url: str) -> Specification:
        """Extract attribute-value pairs from the page behind ``url``.

        Returns an empty specification when the page is missing — a real
        crawler faces dead links too, and the pipeline must tolerate them.
        """
        try:
            html_text = self._web.fetch(url)
        except PageNotFoundError:
            return Specification()
        return self.extract_from_html(html_text)

    # -- batches ---------------------------------------------------------------

    def extract_offer(self, offer: Offer) -> Offer:
        """Return a copy of ``offer`` with its specification extracted."""
        specification = self.extract_from_url(offer.url)
        return offer.with_specification(specification)

    def extract_offers(
        self, offers: Iterable[Offer]
    ) -> "tuple[List[Offer], ExtractionResult]":
        """Extract specifications for a batch of offers.

        Returns the enriched offers (same order) and the run statistics.
        """
        enriched: List[Offer] = []
        result = ExtractionResult()
        for offer in offers:
            result.offers_processed += 1
            if not self._web.has(offer.url):
                result.offers_missing_page += 1
                enriched.append(offer.with_specification(Specification()))
                continue
            specification = self.extract_from_url(offer.url)
            if len(specification) > 0:
                result.offers_with_pairs += 1
                result.total_pairs += len(specification)
            enriched.append(offer.with_specification(specification))
        return enriched, result
