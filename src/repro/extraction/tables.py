"""Table discovery and attribute-value harvesting from parsed pages."""

from __future__ import annotations

from typing import List

from repro.extraction.dom import DomNode
from repro.model.attributes import AttributeValue

__all__ = ["find_tables", "table_to_rows", "extract_pairs_from_tables"]

#: Attribute names longer than this are almost certainly page noise
#: (review sentences picked up as a cell) and are dropped at extraction
#: time; genuine attribute names are short.
_MAX_NAME_LENGTH = 60
#: Values longer than this are dropped for the same reason.
_MAX_VALUE_LENGTH = 200


def find_tables(root: DomNode) -> List[DomNode]:
    """All ``<table>`` elements in the page, in document order.

    Nested tables are returned as separate entries (their rows would
    otherwise be double-counted by :func:`table_to_rows`, which only looks
    at direct rows).
    """
    return root.find_all("table")


def table_to_rows(table: DomNode) -> List[List[str]]:
    """The text content of each row's cells.

    Both ``<td>`` and ``<th>`` cells are included; rows belonging to nested
    tables are excluded.
    """
    rows: List[List[str]] = []
    nested_tables = set(id(node) for node in table.find_all("table"))
    for row in table.find_all("tr"):
        if _is_inside_nested_table(row, table, nested_tables):
            continue
        cells = [
            cell.text_content()
            for cell in row.children
            if cell.tag in ("td", "th")
        ]
        # Some markup nests cells below intermediate elements; fall back to a
        # full descendant scan when the direct-children scan finds nothing.
        if not cells:
            cells = [cell.text_content() for cell in row.find_all("td") + row.find_all("th")]
        if cells:
            rows.append(cells)
    return rows


def _is_inside_nested_table(row: DomNode, table: DomNode, nested_ids: set) -> bool:
    node = row.parent
    while node is not None and node is not table:
        if id(node) in nested_ids:
            return True
        node = node.parent
    return False


def extract_pairs_from_tables(root: DomNode) -> List[AttributeValue]:
    """Attribute-value pairs from every two-column table row on the page.

    This is exactly the paper's extractor: each two-column row becomes one
    pair with the first cell as the attribute name and the second as the
    value.  Rows with any other number of columns are ignored, as are rows
    whose name or value is empty or implausibly long.
    """
    pairs: List[AttributeValue] = []
    for table in find_tables(root):
        for cells in table_to_rows(table):
            if len(cells) != 2:
                continue
            name, value = cells[0].strip(), cells[1].strip()
            if not name or not value:
                continue
            if len(name) > _MAX_NAME_LENGTH or len(value) > _MAX_VALUE_LENGTH:
                continue
            pairs.append(AttributeValue(name=name, value=value))
    return pairs
