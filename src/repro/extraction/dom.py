"""A lightweight DOM tree built on the standard library's ``html.parser``.

The extractor only needs element names, attributes, text content and
descendant traversal — a full-blown HTML5 tree builder is unnecessary.
The parser is forgiving: unclosed tags are closed implicitly when an
enclosing element ends, and void elements (``br``, ``img``, ...) never
expect a closing tag, so the messy markup found on real merchant pages
does not crash extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Dict, Iterator, List, Optional

__all__ = ["DomNode", "parse_html"]

#: Elements that never have closing tags.
_VOID_ELEMENTS = frozenset(
    {
        "area",
        "base",
        "br",
        "col",
        "embed",
        "hr",
        "img",
        "input",
        "link",
        "meta",
        "param",
        "source",
        "track",
        "wbr",
    }
)

#: Start tags that implicitly close still-open elements (a small subset of the
#: HTML5 implied-end-tag rules, enough for messy merchant tables and lists).
_IMPLICIT_CLOSERS = {
    "td": ("td", "th"),
    "th": ("td", "th"),
    "tr": ("td", "th", "tr"),
    "li": ("li",),
    "option": ("option",),
    "p": ("p",),
}


@dataclass
class DomNode:
    """A node of the parsed DOM tree.

    ``tag`` is ``None`` for text nodes (whose content lives in ``text``).
    """

    tag: Optional[str]
    attributes: Dict[str, str] = field(default_factory=dict)
    children: List["DomNode"] = field(default_factory=list)
    text: str = ""
    parent: Optional["DomNode"] = None

    # -- construction -------------------------------------------------------

    def add_child(self, child: "DomNode") -> "DomNode":
        """Attach ``child`` and return it."""
        child.parent = self
        self.children.append(child)
        return child

    # -- traversal ----------------------------------------------------------

    def is_text(self) -> bool:
        """Whether this is a text node."""
        return self.tag is None

    def iter_descendants(self) -> Iterator["DomNode"]:
        """Depth-first iterator over all descendants (excluding ``self``)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_all(self, tag: str) -> List["DomNode"]:
        """All descendant elements with the given tag name."""
        wanted = tag.lower()
        return [node for node in self.iter_descendants() if node.tag == wanted]

    def find_first(self, tag: str) -> Optional["DomNode"]:
        """The first descendant element with the given tag name, or ``None``."""
        wanted = tag.lower()
        for node in self.iter_descendants():
            if node.tag == wanted:
                return node
        return None

    def direct_children(self, tag: str) -> List["DomNode"]:
        """Direct children with the given tag name."""
        wanted = tag.lower()
        return [child for child in self.children if child.tag == wanted]

    def get_attribute(self, name: str, default: str = "") -> str:
        """Value of an HTML attribute, or ``default``."""
        return self.attributes.get(name.lower(), default)

    def text_content(self) -> str:
        """Concatenated, whitespace-normalised text of this subtree."""
        fragments: List[str] = []
        if self.is_text():
            fragments.append(self.text)
        for node in self.iter_descendants():
            if node.is_text():
                fragments.append(node.text)
        return " ".join(" ".join(fragments).split())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_text():
            return f"DomNode(text={self.text[:30]!r})"
        return f"DomNode(<{self.tag}>, children={len(self.children)})"


class _TreeBuilder(HTMLParser):
    """Builds a :class:`DomNode` tree while tolerating sloppy markup."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.root = DomNode(tag="document")
        self._stack: List[DomNode] = [self.root]

    # -- HTMLParser callbacks -------------------------------------------------

    def handle_starttag(self, tag: str, attrs) -> None:  # type: ignore[override]
        """Open a tag, auto-closing siblings that cannot nest under it."""
        tag = tag.lower()
        closes = _IMPLICIT_CLOSERS.get(tag)
        if closes:
            while len(self._stack) > 1 and self._stack[-1].tag in closes:
                self._stack.pop()
        node = DomNode(tag=tag, attributes={name.lower(): (value or "") for name, value in attrs})
        self._stack[-1].add_child(node)
        if tag not in _VOID_ELEMENTS:
            self._stack.append(node)

    def handle_startendtag(self, tag: str, attrs) -> None:  # type: ignore[override]
        """Add a self-closing element without pushing it on the stack."""
        tag = tag.lower()
        node = DomNode(tag=tag, attributes={name.lower(): (value or "") for name, value in attrs})
        self._stack[-1].add_child(node)

    def handle_endtag(self, tag: str) -> None:  # type: ignore[override]
        """Close the innermost matching open tag, ignoring strays."""
        tag = tag.lower()
        if tag in _VOID_ELEMENTS:
            return
        # Pop until the matching open tag (or leave the stack untouched when
        # the closing tag was never opened).
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return

    def handle_data(self, data: str) -> None:  # type: ignore[override]
        """Attach non-blank text as a leaf node of the open element."""
        if not data or not data.strip():
            return
        self._stack[-1].add_child(DomNode(tag=None, text=data.strip()))


def parse_html(html_text: str) -> DomNode:
    """Parse an HTML document into a :class:`DomNode` tree.

    The returned node is a synthetic ``document`` root; use
    :meth:`DomNode.find_all` to locate elements.

    Examples
    --------
    >>> root = parse_html("<table><tr><td>Brand</td><td>Hitachi</td></tr></table>")
    >>> [cell.text_content() for cell in root.find_all("td")]
    ['Brand', 'Hitachi']
    """
    builder = _TreeBuilder()
    builder.feed(html_text or "")
    builder.close()
    return builder.root
