"""Web-page attribute extraction.

Paper Section 4: "We have implemented a simple extractor that parses the
DOM tree of the Web page and returns all tables on the page.  It also
selects the attribute-value pairs from the tables, i.e., rows with two
columns, where we consider the first column to be the attribute name and
the second column to be the attribute value."

The package contains a lightweight DOM built on the standard library's
``html.parser`` (:mod:`repro.extraction.dom`), table discovery and
attribute-value harvesting (:mod:`repro.extraction.tables`) and the
user-facing :class:`~repro.extraction.extractor.WebPageAttributeExtractor`.
"""

from repro.extraction.dom import DomNode, parse_html
from repro.extraction.extractor import ExtractionResult, WebPageAttributeExtractor
from repro.extraction.tables import extract_pairs_from_tables, find_tables, table_to_rows

__all__ = [
    "DomNode",
    "parse_html",
    "ExtractionResult",
    "WebPageAttributeExtractor",
    "extract_pairs_from_tables",
    "find_tables",
    "table_to_rows",
]
