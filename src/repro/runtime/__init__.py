"""High-throughput batched runtime for the offer-synthesis pipeline.

The paper's Run-Time Offer Processing Pipeline (Figure 4) absorbs
continuous merchant feeds; this package provides the executor that makes
that practical at scale:

``engine``
    :class:`~repro.runtime.engine.SynthesisEngine` — a sharded,
    micro-batched, incrementally clustering wrapper around the pipeline
    stages.  Feed it a stream with repeated ``ingest(offers)`` calls.
``cluster``
    Horizontal scaling: a :class:`~repro.runtime.cluster.ShardCoordinator`
    partitions category shards across N engine nodes over one shared
    store, with per-shard epoch fencing so a lagging or crashed node can
    never commit stale cluster state;
    :class:`~repro.runtime.cluster.MultiNodeEngine` is the single-engine-
    compatible facade (join/leave/fence, crash recovery via rollback),
    and :class:`~repro.runtime.cluster.LoadSkewWatcher` closes the loop
    with automatic load-aware rebalancing.
``procnode``
    True multi-*process* nodes: :class:`~repro.runtime.procnode.MultiProcessEngine`
    runs each node in its own OS process with a private store connection
    and mirror over the shared WAL file, coordinated through a small
    message protocol (ingest, commit-barrier vote, fence/handoff,
    shutdown) — same byte-identity contract, real multi-core scaling.
``state`` / ``store``
    The pluggable catalog state layer: a
    :class:`~repro.runtime.state.CatalogStore` protocol with an
    in-memory backend (zero-copy default) and a durable WAL-mode SQLite
    backend (per-ingest commits, snapshot/restore across restarts).
``delta``
    The delta re-fusion protocol: process workers keep shard-resident
    cluster state and receive only new offers per batch, resyncing from
    the store when they restart or fall behind.
``executors``
    Pluggable shard executors (serial / thread pool / process pool) with
    identical outputs and different wall-clock profiles.
``sharding``
    Stable (cross-process deterministic) category sharding.
"""

from repro.runtime.cluster import (
    FencedStoreView,
    LoadSkewWatcher,
    MultiNodeEngine,
    NodeStats,
    ShardCoordinator,
    ShardLease,
)
from repro.runtime.delta import TransportStats
from repro.runtime.procnode import MultiProcessEngine, NodeDeadError, ProcessNode
from repro.runtime.engine import CommitEvent, EngineSnapshot, IngestReport, SynthesisEngine
from repro.runtime.executors import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ThreadPoolShardExecutor,
    resolve_executor,
)
from repro.runtime.sharding import partition_by_shard, shard_for_category
from repro.runtime.state import CatalogStore, ClusterState, StaleEpochError, resolve_store
from repro.runtime.store import MemoryCatalogStore, SqliteCatalogStore

__all__ = [
    "SynthesisEngine",
    "CommitEvent",
    "IngestReport",
    "EngineSnapshot",
    "MultiNodeEngine",
    "MultiProcessEngine",
    "ProcessNode",
    "NodeDeadError",
    "ShardCoordinator",
    "ShardLease",
    "FencedStoreView",
    "LoadSkewWatcher",
    "NodeStats",
    "StaleEpochError",
    "SerialExecutor",
    "ThreadPoolShardExecutor",
    "ProcessPoolShardExecutor",
    "resolve_executor",
    "partition_by_shard",
    "shard_for_category",
    "CatalogStore",
    "ClusterState",
    "resolve_store",
    "MemoryCatalogStore",
    "SqliteCatalogStore",
    "TransportStats",
]
