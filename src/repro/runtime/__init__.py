"""High-throughput batched runtime for the offer-synthesis pipeline.

The paper's Run-Time Offer Processing Pipeline (Figure 4) absorbs
continuous merchant feeds; this package provides the executor that makes
that practical at scale:

``engine``
    :class:`~repro.runtime.engine.SynthesisEngine` — a sharded,
    micro-batched, incrementally clustering wrapper around the pipeline
    stages.  Feed it a stream with repeated ``ingest(offers)`` calls.
``cluster``
    Horizontal scaling: a :class:`~repro.runtime.cluster.ShardCoordinator`
    partitions category shards across N engine nodes over one shared
    store, with per-shard epoch fencing so a lagging or crashed node can
    never commit stale cluster state;
    :class:`~repro.runtime.cluster.MultiNodeEngine` is the single-engine-
    compatible facade (join/leave/fence, crash recovery via rollback).
``state`` / ``store``
    The pluggable catalog state layer: a
    :class:`~repro.runtime.state.CatalogStore` protocol with an
    in-memory backend (zero-copy default) and a durable WAL-mode SQLite
    backend (per-ingest commits, snapshot/restore across restarts).
``delta``
    The delta re-fusion protocol: process workers keep shard-resident
    cluster state and receive only new offers per batch, resyncing from
    the store when they restart or fall behind.
``executors``
    Pluggable shard executors (serial / thread pool / process pool) with
    identical outputs and different wall-clock profiles.
``sharding``
    Stable (cross-process deterministic) category sharding.
"""

from repro.runtime.cluster import (
    FencedStoreView,
    MultiNodeEngine,
    NodeStats,
    ShardCoordinator,
    ShardLease,
)
from repro.runtime.delta import TransportStats
from repro.runtime.engine import EngineSnapshot, IngestReport, SynthesisEngine
from repro.runtime.executors import (
    ProcessPoolShardExecutor,
    SerialExecutor,
    ThreadPoolShardExecutor,
    resolve_executor,
)
from repro.runtime.sharding import partition_by_shard, shard_for_category
from repro.runtime.state import CatalogStore, ClusterState, StaleEpochError, resolve_store
from repro.runtime.store import MemoryCatalogStore, SqliteCatalogStore

__all__ = [
    "SynthesisEngine",
    "IngestReport",
    "EngineSnapshot",
    "MultiNodeEngine",
    "ShardCoordinator",
    "ShardLease",
    "FencedStoreView",
    "NodeStats",
    "StaleEpochError",
    "SerialExecutor",
    "ThreadPoolShardExecutor",
    "ProcessPoolShardExecutor",
    "resolve_executor",
    "partition_by_shard",
    "shard_for_category",
    "CatalogStore",
    "ClusterState",
    "resolve_store",
    "MemoryCatalogStore",
    "SqliteCatalogStore",
    "TransportStats",
]
