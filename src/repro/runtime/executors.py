"""Pluggable shard executors for the run-time engine.

The engine hands each executor a pure function plus one payload per
shard; the executor returns the results **in payload order**, which is
what lets serial, thread-pool and process-pool execution produce
byte-identical engine output — the only difference is wall-clock time.

``ProcessPoolShardExecutor`` requires the mapped function and payloads to
be picklable (the engine's shard-fusion function is a module-level
function over plain dataclasses, so it is).  Pools are created lazily on
first use and reused across ``ingest`` calls; call :meth:`close` (or use
the engine as a context manager) to release workers.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, List, Optional, Sequence, Union

__all__ = [
    "SerialExecutor",
    "ThreadPoolShardExecutor",
    "ProcessPoolShardExecutor",
    "ShardExecutor",
    "resolve_executor",
]


class SerialExecutor:
    """Run shard tasks one after another in the calling thread."""

    name = "serial"

    def map_shards(self, function: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        """Apply ``function`` to each payload, preserving order."""
        return [function(payload) for payload in payloads]

    def close(self) -> None:
        """Nothing to release."""


class _PoolExecutorBase:
    """Shared lazy-pool plumbing for thread and process executors."""

    name = "pool"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._pool: Optional[concurrent.futures.Executor] = None

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def map_shards(self, function: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        """Apply ``function`` to each payload concurrently, preserving order."""
        if len(payloads) <= 1:
            # Not worth the dispatch overhead — and keeps single-shard
            # engines usable even where worker processes cannot start.
            return [function(payload) for payload in payloads]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(function, payloads))

    def close(self) -> None:
        """Shut the pool down (it is re-created lazily if used again)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ThreadPoolShardExecutor(_PoolExecutorBase):
    """Fan shards out over a thread pool.

    Threads share the in-process memo caches, so this executor benefits
    most from warm caches; CPU-bound fusion still contends on the GIL.
    """

    name = "thread"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self._max_workers)


class ProcessPoolShardExecutor(_PoolExecutorBase):
    """Fan shards out over a process pool (true CPU parallelism)."""

    name = "process"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=self._max_workers)


#: Anything accepted by :func:`resolve_executor`.
ShardExecutor = Union[SerialExecutor, ThreadPoolShardExecutor, ProcessPoolShardExecutor]

_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadPoolShardExecutor,
    "process": ProcessPoolShardExecutor,
}


def resolve_executor(
    executor: Union[str, ShardExecutor, None],
    max_workers: Optional[int] = None,
) -> ShardExecutor:
    """Turn an executor name (or instance, or ``None``) into an executor.

    ``None`` and ``"serial"`` give the serial executor; ``"thread"`` and
    ``"process"`` give the corresponding pool executor.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        try:
            factory = _EXECUTORS[executor]
        except KeyError:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
            ) from None
        if factory is SerialExecutor:
            return SerialExecutor()
        return factory(max_workers=max_workers)
    return executor
