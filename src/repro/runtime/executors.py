"""Pluggable shard executors for the run-time engine.

The engine hands each executor a pure function plus one payload per
shard; the executor returns the results **in payload order**, which is
what lets serial, thread-pool and process-pool execution produce
byte-identical engine output — the only difference is wall-clock time.

``ProcessPoolShardExecutor`` requires the mapped function and payloads to
be picklable (the engine's shard-fusion function is a module-level
function over plain dataclasses, so it is).  Pools are created lazily on
first use and reused across ``ingest`` calls; call :meth:`close` (or use
the engine as a context manager) to release workers.
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "SerialExecutor",
    "ThreadPoolShardExecutor",
    "ProcessPoolShardExecutor",
    "ShardExecutor",
    "resolve_executor",
]


class SerialExecutor:
    """Run shard tasks one after another in the calling thread."""

    name = "serial"
    #: Whether ``map_pinned`` routes equal keys to the same worker across
    #: calls — the property the delta re-fusion protocol builds on.
    supports_pinning = False

    def map_shards(self, function: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        """Apply ``function`` to each payload, preserving order."""
        return [function(payload) for payload in payloads]

    def close(self) -> None:
        """Nothing to release."""


class _PoolExecutorBase:
    """Shared lazy-pool plumbing for thread and process executors."""

    name = "pool"
    supports_pinning = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._pool: Optional[concurrent.futures.Executor] = None

    def _make_pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def map_shards(self, function: Callable[[Any], Any], payloads: Sequence[Any]) -> List[Any]:
        """Apply ``function`` to each payload concurrently, preserving order."""
        if len(payloads) <= 1:
            # Not worth the dispatch overhead — and keeps single-shard
            # engines usable even where worker processes cannot start.
            return [function(payload) for payload in payloads]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(function, payloads))

    def close(self) -> None:
        """Shut the pool down (it is re-created lazily if used again)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ThreadPoolShardExecutor(_PoolExecutorBase):
    """Fan shards out over a thread pool.

    Threads share the in-process memo caches, so this executor benefits
    most from warm caches; CPU-bound fusion still contends on the GIL.
    """

    name = "thread"

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ThreadPoolExecutor(max_workers=self._max_workers)


class ProcessPoolShardExecutor(_PoolExecutorBase):
    """Fan shards out over a process pool (true CPU parallelism).

    Besides the plain ``map_shards`` pool, this executor maintains a set
    of *pinned* single-worker pools for :meth:`map_pinned`: payloads with
    the same key always land in the same worker process across calls.
    That stable shard→worker affinity is what lets workers keep
    shard-resident cluster state between batches (the delta re-fusion
    protocol, :mod:`repro.runtime.delta`) instead of receiving full
    cluster contents every time.
    """

    name = "process"
    supports_pinning = True

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__(max_workers=max_workers)
        self._pinned_pools: Dict[int, concurrent.futures.ProcessPoolExecutor] = {}

    def _make_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(max_workers=self._max_workers)

    def _num_slots(self) -> int:
        return self._max_workers or os.cpu_count() or 1

    def map_pinned(
        self,
        function: Callable[[Any], Any],
        payloads: Sequence[Any],
        keys: Sequence[int],
    ) -> List[Any]:
        """Apply ``function`` to each payload on its key's pinned worker.

        Payloads are dispatched concurrently (one single-worker pool per
        key slot, created lazily) and results come back in payload order.
        Equal keys — and keys congruent modulo the worker count — are
        guaranteed to run in the same OS process across calls, for the
        lifetime of this executor.
        """
        if len(payloads) != len(keys):
            raise ValueError(
                f"payloads and keys must parallel each other, "
                f"got {len(payloads)} payloads and {len(keys)} keys"
            )
        num_slots = self._num_slots()
        futures = []
        for payload, key in zip(payloads, keys):
            slot = key % num_slots
            pool = self._pinned_pools.get(slot)
            if pool is None:
                pool = concurrent.futures.ProcessPoolExecutor(max_workers=1)
                self._pinned_pools[slot] = pool
            futures.append(pool.submit(function, payload))
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut all pools down (they are re-created lazily if used again)."""
        super().close()
        pinned, self._pinned_pools = self._pinned_pools, {}
        for pool in pinned.values():
            pool.shutdown()


#: Anything accepted by :func:`resolve_executor`.
ShardExecutor = Union[SerialExecutor, ThreadPoolShardExecutor, ProcessPoolShardExecutor]

_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadPoolShardExecutor,
    "process": ProcessPoolShardExecutor,
}


def resolve_executor(
    executor: Union[str, ShardExecutor, None],
    max_workers: Optional[int] = None,
) -> ShardExecutor:
    """Turn an executor name (or instance, or ``None``) into an executor.

    ``None`` and ``"serial"`` give the serial executor; ``"thread"`` and
    ``"process"`` give the corresponding pool executor.
    """
    if executor is None:
        return SerialExecutor()
    if isinstance(executor, str):
        try:
            factory = _EXECUTORS[executor]
        except KeyError:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {sorted(_EXECUTORS)}"
            ) from None
        if factory is SerialExecutor:
            return SerialExecutor()
        return factory(max_workers=max_workers)
    return executor
