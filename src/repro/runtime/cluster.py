"""Multi-node shard coordination with per-shard version fencing.

One :class:`~repro.runtime.engine.SynthesisEngine` scales vertically
(sharded executors); this module scales it *horizontally*: a
:class:`ShardCoordinator` partitions the category shards across N engine
nodes that cooperate over one shared :class:`~repro.runtime.state.CatalogStore`
— the paper's catalog-at-web-scale scenario, with the authoritative
state kept in a single fenced store and only compact per-batch deltas
moving between processes.

The safety mechanism is **epoch fencing**.  Every shard carries a
monotonic *epoch* in the store (distinct from the delta protocol's
per-dispatch *version* counter): granting a shard to a node bumps the
epoch, and the grant — a :class:`ShardLease` — records the epoch the
node was given.  Every cluster write a node issues travels through its
:class:`FencedStoreView`, carries the leased epoch, and is checked
against the store's authoritative epoch
(:meth:`~repro.runtime.state.CatalogStore.check_shard_epoch`).  A node
that lags, restarts, or loses a shard to reassignment therefore cannot
commit stale cluster state: its next write (or at latest its commit)
raises :class:`~repro.runtime.state.StaleEpochError`.

:class:`MultiNodeEngine` is the facade: it exposes the same ``ingest`` /
``products`` / ``snapshot`` API as a single engine, routes each batch to
the owning nodes (category -> shard -> node), and handles membership:

* **join** (:meth:`MultiNodeEngine.add_node`) — the coordinator
  rebalances; moved shards get fresh epochs and the new node's workers
  resync cluster state through the existing delta protocol (from the
  durable store, or via a one-time full re-ship).
* **leave** (:meth:`MultiNodeEngine.remove_node`) — drain (ingest is a
  batch barrier, so the node is quiescent between batches and its state
  already lives in the shared store), reassign with fresh epochs, release
  the node's workers.
* **crash** (:meth:`MultiNodeEngine.fence_node`, or automatic when a
  node dies mid-batch) — the store is rolled back to the last commit
  barrier, the dead node's epochs are fenced, its shards are reassigned,
  and the in-flight batch is replayed on the survivors.  With a durable
  store the resumed catalog is byte-identical to an uninterrupted run.

Determinism: batches commit through a single barrier per cluster ingest,
offers of one category always land on one node in stream order, and
fusion is content-deterministic — so the product set is byte-identical
to a single engine's for any node count, dispatch mode, and store
backend (the property-based equivalence suite pins this down).
"""

from __future__ import annotations

import concurrent.futures
import itertools
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.correspondence import CorrespondenceSet
from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.model.products import Product
from repro.obs import get_registry
from repro.runtime.delta import TransportStats
from repro.runtime.engine import EngineSnapshot, IngestReport, SynthesisEngine
from repro.runtime.executors import ShardExecutor
from repro.runtime.sharding import shard_for_category
from repro.runtime.state import (
    CatalogStore,
    ClusterId,
    ClusterState,
    StaleEpochError,
    resolve_store,
)
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer
from repro.synthesis.fusion import CentroidValueFusion
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = [
    "ShardLease",
    "FencedStoreView",
    "ShardCoordinator",
    "CategoryHinter",
    "LoadSkewWatcher",
    "NodeStats",
    "MultiNodeEngine",
    "ProcessNode",
    "MultiProcessEngine",
]


@dataclass
class ShardLease:
    """The shards one node currently holds, with their granted epochs.

    The coordinator mutates the lease in place on every grant or
    revocation, so the node's :class:`FencedStoreView` always writes with
    the epochs it actually holds.  When a node is *fenced* the lease is
    deliberately left stale instead: its epochs no longer match the
    store, which is exactly what makes the node's writes bounce.
    """

    node_id: str
    #: shard index -> epoch the store had when the shard was granted.
    epochs: Dict[int, int] = field(default_factory=dict)
    #: Set (never cleared) when the coordinator forcibly fences the node.
    #: The in-process fast path: a fenced node's very first write raises,
    #: before it can touch even the globally-scoped state.  The epochs
    #: above stay authoritative for writers the coordinator cannot reach
    #: (a lagging node fenced by someone else hits the store-side check).
    fenced: bool = False

    def shards(self) -> List[int]:
        """The shard indices this lease covers, ascending."""
        return sorted(self.epochs)


class FencedStoreView(CatalogStore):
    """One node's epoch-carrying, lock-serialised view of a shared store.

    Reads and global writes delegate to the base store under the cluster
    lock; cluster-scoped writes (create/append/product/version) first
    present the leased epoch of the target shard for validation, so a
    fenced-out node fails fast instead of corrupting reassigned shards.
    Global writes are fenced at the commit barrier: ``commit`` validates
    the whole lease before anything is flushed.

    With ``deferred_commit=True`` (how :class:`MultiNodeEngine` mounts
    it) the view's ``commit`` only validates — the cluster engine flushes
    the base store once per cluster batch, giving all nodes one shared
    commit barrier.
    """

    def __init__(
        self,
        base: CatalogStore,
        lease: ShardLease,
        lock: Optional[threading.RLock] = None,
        deferred_commit: bool = False,
    ) -> None:
        super().__init__()
        self._base = base
        self._lease = lease
        self._lock = lock if lock is not None else threading.RLock()
        self._deferred_commit = deferred_commit
        # The delta protocol keys worker-resident caches on the token:
        # views must share the base store's generation, or every node
        # restart would needlessly orphan worker state.
        self.token = base.token
        self.name = f"fenced-{base.name}"
        self._num_shards = base.num_shards

    @property
    def lease(self) -> ShardLease:
        """The shard lease this view writes under."""
        return self._lease

    @property
    def base(self) -> CatalogStore:
        """The shared store this view delegates to."""
        return self._base

    @property
    def commit_count(self) -> int:
        """The *base* store's snapshot counter.

        The view never counts commits itself: with ``deferred_commit``
        its ``commit`` only validates the lease, and either way the
        snapshot identity readers care about is the shared store's.  A
        node engine's commit listeners therefore see the same counter a
        reader of the shared file would.
        """
        return self._base.commit_count

    # -- fencing ---------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._lease.fenced:
            raise StaleEpochError(
                f"node {self._lease.node_id!r} was fenced: its lease is "
                "revoked and no write of it may reach the shared store"
            )

    def _check_shard(self, shard_index: int) -> None:
        self._check_writable()
        epoch = self._lease.epochs.get(shard_index)
        if epoch is None:
            raise StaleEpochError(
                f"node {self._lease.node_id!r} holds no lease on shard "
                f"{shard_index}: the shard was reassigned (or never granted)"
            )
        self._base.check_shard_epoch(shard_index, epoch)

    def validate_lease(self) -> None:
        """Raise :class:`StaleEpochError` unless every held epoch is current."""
        self._check_writable()
        for shard_index, epoch in self._lease.epochs.items():
            self._base.check_shard_epoch(shard_index, epoch)

    # -- lifecycle -------------------------------------------------------------

    def bind(self, num_shards: int) -> None:
        """Validate the engine's shard count against the cluster store's."""
        if num_shards != self._base.num_shards:
            raise ValueError(
                f"node engine wants {num_shards} shards but the cluster "
                f"store is bound to {self._base.num_shards}"
            )
        self._num_shards = num_shards

    def commit(self) -> None:
        """Validate the whole lease; flush the base unless deferred."""
        with self._lock:
            self.validate_lease()
            if not self._deferred_commit:
                self._base.commit()

    def close(self) -> None:
        """Views release nothing: the cluster owns the base store.

        Best-effort commit only — ``close`` must stay safe on any path
        (the ``CatalogStore`` contract), and a fenced node has nothing
        it is allowed to flush anyway.
        """
        try:
            self.commit()
        except StaleEpochError:
            pass

    @property
    def closed(self) -> bool:
        """Whether the shared base store can no longer accept writes."""
        return self._base.closed

    def worker_resync_path(self) -> Optional[str]:
        """The base store's durable resync location (or ``None``)."""
        return self._base.worker_resync_path()

    # -- changed-cluster commit journal (delegated) ----------------------------
    # Mutations delegate to the base store, so the touched-cluster set —
    # and therefore the journal written at the barrier — lives there;
    # the read API follows it.

    def journal_floor(self) -> int:
        """The shared base store's journal floor."""
        with self._lock:
            return self._base.journal_floor()

    def journal_entries(self, since: int):
        """The shared base store's per-commit deltas after ``since``."""
        with self._lock:
            return self._base.journal_entries(since)

    def compact_journal(self, retain_commits: int = 0, auto: bool = False) -> int:
        """Compact the shared base store's journal."""
        with self._lock:
            return self._base.compact_journal(retain_commits, auto=auto)

    # -- seen offers -----------------------------------------------------------

    def is_seen(self, offer_id: str) -> bool:
        """Whether an offer id was absorbed, read under the cluster lock."""
        with self._lock:
            return self._base.is_seen(offer_id)

    def mark_seen(self, offer_id: str) -> bool:
        """Record an offer id (global write; fence flag checked first)."""
        with self._lock:
            self._check_writable()
            return self._base.mark_seen(offer_id)

    def num_seen(self) -> int:
        """Distinct offer ids absorbed cluster-wide."""
        with self._lock:
            return self._base.num_seen()

    # -- assigned categories ---------------------------------------------------

    def record_category(self, offer_id: str, category_id: str) -> None:
        """Remember an offer's category (global, fence-flag-checked write)."""
        with self._lock:
            self._check_writable()
            self._base.record_category(offer_id, category_id)

    def assigned_categories(self) -> Dict[str, str]:
        """A copy of the cluster-wide offer-id -> category-id map."""
        with self._lock:
            return self._base.assigned_categories()

    # -- clusters (epoch-checked writes) ---------------------------------------

    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        """One cluster's shared state, read under the cluster lock."""
        with self._lock:
            return self._base.get_cluster(cluster_id)

    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        """Create a cluster after validating this node's shard epoch."""
        with self._lock:
            self._check_shard(shard_index)
            return self._base.create_cluster(shard_index, cluster_id)

    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        """Append offers after validating the owning shard's epoch."""
        with self._lock:
            state = self._base.get_cluster(cluster_id)
            if state is not None:
                self._check_shard(state.shard_index)
            self._base.append_offers(cluster_id, offers)

    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        """Record a fused product after validating the shard's epoch."""
        with self._lock:
            state = self._base.get_cluster(cluster_id)
            if state is not None:
                self._check_shard(state.shard_index)
            self._base.set_product(cluster_id, product)

    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        """Iterate over a stable copy of every tracked cluster."""
        with self._lock:
            return iter(list(self._base.iter_clusters()))

    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        """Ids of every cluster living in one shard."""
        with self._lock:
            return self._base.shard_cluster_ids(shard_index)

    def num_clusters(self) -> int:
        """Number of clusters tracked cluster-wide."""
        with self._lock:
            return self._base.num_clusters()

    # -- per-category statistics -----------------------------------------------

    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        # The returned object is mutated lock-free by the engine: safe,
        # because one category belongs to one shard and so to one node.
        """Mutable TF-IDF statistics of an owned category (fence-checked)."""
        with self._lock:
            self._check_writable()
            return self._base.category_stats_for_update(category_id)

    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """Read-only TF-IDF statistics of one category (or ``None``)."""
        with self._lock:
            return self._base.category_stats(category_id)

    def category_vocabulary(self) -> Dict[str, int]:
        """category_id -> vocabulary size, cluster-wide."""
        with self._lock:
            return self._base.category_vocabulary()

    # -- reconciliation stats --------------------------------------------------

    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        """Fold batch counters into the shared totals (fence-checked)."""
        with self._lock:
            self._check_writable()
            self._base.merge_reconciliation_stats(stats)

    def reconciliation_stats(self) -> ReconciliationStats:
        """A copy of the cluster-wide reconciliation totals."""
        with self._lock:
            return self._base.reconciliation_stats()

    # -- shard versions / epochs -----------------------------------------------

    def shard_version(self, shard_index: int) -> int:
        """The delta-protocol version counter of one shard."""
        with self._lock:
            return self._base.shard_version(shard_index)

    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        """Bump an owned shard's version counter (epoch-checked)."""
        with self._lock:
            self._check_shard(shard_index)
            return self._base.advance_shard_version(shard_index)

    def shard_epoch(self, shard_index: int) -> int:
        """The authoritative fencing epoch of one shard."""
        with self._lock:
            return self._base.shard_epoch(shard_index)

    def advance_shard_epoch(self, shard_index: int) -> int:
        """Always refused: only the shard coordinator fences shards."""
        raise RuntimeError(
            "only the shard coordinator advances fencing epochs; a node "
            "bumping its own epoch would un-fence itself"
        )


class ShardCoordinator:
    """Authoritative shard -> node assignment with epoch fencing.

    Assignment is deterministic — shard ``i`` belongs to the ``i mod N``-th
    node in node-id order — so any observer can recompute the layout, and
    membership changes move the minimal ``1/N`` slice of shards.  Every
    ownership change bumps the shard's epoch *in the store* before the
    new lease is granted: fence first, hand over second.
    """

    def __init__(self, store: CatalogStore, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._store = store
        self._num_shards = num_shards
        self._assignment: Dict[int, str] = {}
        self._leases: Dict[str, ShardLease] = {}

    @property
    def num_shards(self) -> int:
        """Number of category shards under coordination."""
        return self._num_shards

    def nodes(self) -> List[str]:
        """Registered node ids, ascending."""
        return sorted(self._leases)

    def assignment(self) -> Dict[int, str]:
        """A copy of the current shard -> node-id map."""
        return dict(self._assignment)

    def node_for_shard(self, shard_index: int) -> str:
        """The node currently owning one shard."""
        return self._assignment[shard_index]

    def lease_for(self, node_id: str) -> ShardLease:
        """The live lease of one registered node."""
        return self._leases[node_id]

    def register_node(self, node_id: str, rebalance: bool = True) -> ShardLease:
        """Add a node and rebalance; returns its (live) lease.

        ``rebalance=False`` defers the layout change: callers registering
        several nodes at once (cluster bootstrap) apply one final
        :meth:`apply_layout` instead of re-fencing shards through every
        intermediate membership.
        """
        if node_id in self._leases:
            raise ValueError(f"node {node_id!r} is already registered")
        lease = ShardLease(node_id=node_id)
        self._leases[node_id] = lease
        if rebalance:
            self._rebalance()
        return lease

    def apply_layout(self) -> None:
        """(Re-)apply the deterministic modulo layout for the current
        membership — the explicit finish of deferred registrations."""
        self._rebalance()

    def retire_node(self, node_id: str, fence: bool = False) -> None:
        """Remove a node and reassign its shards (with fresh epochs).

        ``fence=False`` is the graceful leave: the departing lease is
        emptied so the node object, if kept around, knows it holds
        nothing.  ``fence=True`` is the crash path: the lease is left
        *stale* on purpose — a zombie still holding the object presents
        outdated epochs and every write it attempts is rejected.
        """
        if node_id not in self._leases:
            raise ValueError(f"node {node_id!r} is not registered")
        if len(self._leases) == 1:
            raise RuntimeError(
                f"cannot retire {node_id!r}: it is the last node of the cluster"
            )
        lease = self._leases.pop(node_id)
        if fence:
            # Flag first: the zombie's next write bounces before the
            # reassignment below even finishes.
            lease.fenced = True
        self._rebalance()
        if not fence:
            lease.epochs.clear()

    def rebalance_by_load(self, loads: Dict[int, float]) -> Dict[int, str]:
        """Reassign shards greedily by observed load (largest first).

        ``loads`` maps shard index to any monotone load measure (offers
        held, ingest seconds); unknown or zero-load shards weigh 1 so
        they still spread.  Deterministic: ties break on shard index and
        node id.  Every shard that changes owner is re-fenced exactly as
        in a membership change, so in-flight holders are cut off and the
        new owner's workers resync through the delta protocol.  Returns
        the new assignment.
        """
        nodes = self.nodes()
        bins = {node_id: 0.0 for node_id in nodes}
        order = sorted(
            range(self._num_shards),
            key=lambda shard: (-loads.get(shard, 0.0), shard),
        )
        for shard_index in order:
            target = min(nodes, key=lambda node_id: (bins[node_id], node_id))
            bins[target] += loads.get(shard_index, 0.0) or 1.0
            self._grant(shard_index, target)
        return self.assignment()

    def _grant(self, shard_index: int, owner: str) -> None:
        """Move one shard to ``owner`` (no-op if already there).

        Fence first: the epoch is bumped in the store before the new
        lease entry exists, so no previous holder can write in between.
        """
        previous = self._assignment.get(shard_index)
        if previous == owner:
            return
        epoch = self._store.advance_shard_epoch(shard_index)
        if previous is not None and previous in self._leases:
            self._leases[previous].epochs.pop(shard_index, None)
        self._leases[owner].epochs[shard_index] = epoch
        self._assignment[shard_index] = owner

    def _rebalance(self) -> None:
        """Recompute the deterministic modulo layout after a membership
        change (a load-aware layout can be re-applied afterwards via
        :meth:`rebalance_by_load`)."""
        nodes = self.nodes()
        for shard_index in range(self._num_shards):
            self._grant(shard_index, nodes[shard_index % len(nodes)])


def assign_routing_categories(
    offers: Sequence[Offer], classifier: Optional[TitleCategoryClassifier]
) -> List[Offer]:
    """Assign categories for routing (shared by both cluster facades).

    The classifier is per-offer and deterministic, and node engines keep
    pre-assigned categories, so classification happens once per offer no
    matter how many nodes the batch fans out to.  Raises ``ValueError``
    when offers lack categories and no trained classifier is available.
    """
    needs_classification = [offer for offer in offers if offer.category_id is None]
    if not needs_classification:
        return list(offers)
    if classifier is None or not classifier.is_trained:
        raise ValueError("offers without a category require a trained category classifier")
    return classifier.assign_categories(list(offers))


def partition_offers_by_node(
    categorised: Sequence[Offer],
    num_shards: int,
    node_for_shard,
    fallback_node_id: str,
) -> Dict[str, List[Offer]]:
    """Group offers by owning node, preserving stream order per node.

    Offers without a category have no shard: they only need global
    bookkeeping (seen-set, reconciliation counters), which lands the
    same wherever it runs — they go to the stable ``fallback_node_id``.
    Shared by both cluster facades so their routing can never diverge
    (the byte-identity contract hangs on identical placement).
    """
    routed: Dict[str, List[Offer]] = {}
    for offer in categorised:
        if offer.category_id is None:
            node_id = fallback_node_id
        else:
            shard_index = shard_for_category(offer.category_id, num_shards)
            node_id = node_for_shard(shard_index)
        routed.setdefault(node_id, []).append(offer)
    return routed


class CategoryHinter:
    """Cheap per-offer routing hints derived from the real classifier.

    The full classifier scores every category's posterior for every
    title — that sweep is the dominant serial cost when a coordinator
    classifies whole batches before routing them.  A hinter instead
    looks each title feature up in a precomputed ``feature -> dominant
    category`` table (:meth:`TitleCategoryClassifier.routing_hints`) and
    majority-votes, which is an order of magnitude cheaper and needs no
    model state beyond one dict.

    Hints are allowed to be *wrong*: a cluster coordinator routes on the
    hint, the receiving node runs the real classifier, and misrouted
    offers are re-shipped to their true owner before ingest — so hint
    accuracy only affects transport volume, never the output bytes.
    """

    def __init__(self, table: Dict[str, str], features) -> None:
        """Wrap a ``feature -> category`` table and a feature extractor.

        ``features`` may be ``None`` (no trained model): every offer
        without a pre-assigned category then hints ``None`` and falls
        back to the coordinator's stable fallback node.
        """
        self._table = table
        self._features = features

    @classmethod
    def from_classifier(cls, classifier: Optional[TitleCategoryClassifier]) -> "CategoryHinter":
        """Build a hinter from a classifier; untrained/absent = empty table."""
        if classifier is None or not classifier.is_trained:
            return cls({}, None)
        return cls(classifier.routing_hints(), classifier.routing_features)

    def hint(self, offer: Offer) -> Optional[str]:
        """Best-effort category guess for ``offer`` (``None`` = no idea).

        Pre-assigned categories are authoritative (the node-side
        classifier keeps them too, so such hints are always right);
        otherwise the dominant categories of the title's features vote,
        ties breaking on the lexicographically smallest category so the
        guess is deterministic.
        """
        if offer.category_id is not None:
            return offer.category_id
        if self._features is None:
            return None
        votes: Dict[str, int] = {}
        for feature in self._features(offer.title):
            category = self._table.get(feature)
            if category is not None:
                votes[category] = votes.get(category, 0) + 1
        if not votes:
            return None
        return min(votes.items(), key=lambda item: (-item[1], item[0]))[0]


def partition_offers_by_hint(
    offers: Sequence[Offer],
    num_shards: int,
    node_for_shard,
    fallback_node_id: str,
    hinter: CategoryHinter,
) -> Dict[str, List[Tuple[int, Offer]]]:
    """Group *unclassified* offers by hinted owner, tagging each with its
    batch position.

    The position tag is what keeps hint routing byte-identical: after
    nodes classify their hinted sub-batches and re-ship misroutes, every
    true owner sorts its merged offers by position, recovering exactly
    the per-node stream order coordinator-side routing would have
    produced.  Shared by both cluster facades.
    """
    routed: Dict[str, List[Tuple[int, Offer]]] = {}
    for position, offer in enumerate(offers):
        category = hinter.hint(offer)
        if category is None:
            node_id = fallback_node_id
        else:
            node_id = node_for_shard(shard_for_category(category, num_shards))
        routed.setdefault(node_id, []).append((position, offer))
    return routed


class LoadSkewWatcher:
    """Watches per-batch busy-time skew and fires automatic rebalances.

    The coordinator's modulo layout ignores how skewed the category
    distribution is; this watcher closes the manual-`rebalance` gap.
    After every cluster batch it observes each node's busy seconds; when
    the busiest node exceeds ``threshold`` times the mean for
    ``patience`` *consecutive* batches (the hysteresis — one noisy batch
    never triggers a layout change), it reports that a load-aware
    rebalance is due and resets.  Batches with fewer than two nodes or
    no measurable work reset the streak: there is nothing to balance.
    """

    def __init__(self, threshold: float = 1.5, patience: int = 2) -> None:
        """Configure the trigger.

        threshold:
            Minimum ``max(busy) / mean(busy)`` ratio that counts as a
            skewed batch; must be >= 1.0 (1.0 = any imbalance counts).
        patience:
            Consecutive skewed batches required before firing (>= 1).
        """
        if threshold < 1.0:
            raise ValueError(f"threshold must be >= 1.0, got {threshold}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.threshold = threshold
        self.patience = patience
        self._streak = 0

    @property
    def streak(self) -> int:
        """Consecutive skewed batches observed so far (diagnostics)."""
        return self._streak

    def observe(self, busy_by_node: Dict[str, float]) -> bool:
        """Record one batch's per-node busy seconds; ``True`` = rebalance.

        Returns whether the skew streak just reached ``patience`` (the
        caller should run a load-aware rebalance now); the streak resets
        on firing, so back-to-back triggers need the skew to persist for
        another full ``patience`` window after the layout change.
        """
        total = sum(busy_by_node.values())
        if len(busy_by_node) < 2 or total <= 0.0:
            self._streak = 0
            return False
        skew = max(busy_by_node.values()) * len(busy_by_node) / total
        if skew < self.threshold:
            self._streak = 0
            return False
        self._streak += 1
        if self._streak >= self.patience:
            self._streak = 0
            return True
        return False


@dataclass
class NodeStats:
    """Per-node accounting of one :class:`MultiNodeEngine`."""

    node_id: str
    shards: List[int]
    offers_routed: int
    batches: int
    busy_seconds: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        return {
            "node_id": self.node_id,
            "shards": list(self.shards),
            "offers_routed": self.offers_routed,
            "batches": self.batches,
            "busy_seconds": round(self.busy_seconds, 4),
        }


@dataclass
class _EngineNode:
    """One cluster member: its lease, fenced view, and engine."""

    node_id: str
    lease: ShardLease
    view: FencedStoreView
    engine: SynthesisEngine
    offers_routed: int = 0
    batches: int = 0
    busy_seconds: float = 0.0


class _NodeFailure(Exception):
    """Internal: a node died mid-batch; carries who and why."""

    def __init__(self, node_id: str, cause: BaseException) -> None:
        super().__init__(f"node {node_id!r} failed mid-batch: {cause}")
        self.node_id = node_id
        self.cause = cause


class MultiNodeEngine:
    """N cooperating synthesis engines over one shared, fenced store.

    Exposes the same ``ingest`` / ``products`` / ``snapshot`` surface as
    :class:`~repro.runtime.engine.SynthesisEngine`; behind it, each batch
    is routed by category shard to the owning node and every node writes
    through its :class:`FencedStoreView`.

    Parameters mirror the single engine's; the additional ones:

    num_nodes:
        Initial cluster size (nodes are named ``node-1`` ... ``node-N``;
        membership can change later via :meth:`add_node` /
        :meth:`remove_node` / :meth:`fence_node`).
    concurrent:
        Dispatch the per-node sub-batches on one thread per node instead
        of sequentially.  Store access is serialised by the cluster lock
        either way, and the product set is identical — concurrency only
        overlaps the nodes' compute (which pays off when nodes run
        process executors, whose fusion work leaves the interpreter).
    auto_recover:
        When a node raises mid-batch and the store supports rollback,
        roll back to the commit barrier, fence the node, reassign its
        shards, and replay the batch on the survivors (default on).
    auto_rebalance_skew, auto_rebalance_patience:
        Automatic load-aware rebalancing: when set, a
        :class:`LoadSkewWatcher` observes every batch's per-node busy
        seconds and triggers :meth:`rebalance` once the busiest node
        exceeds ``auto_rebalance_skew`` times the mean for
        ``auto_rebalance_patience`` consecutive batches.  ``None``
        (default) keeps rebalancing manual.  Rebalancing never changes
        the synthesized products, only the layout.
    pipeline_depth:
        ``1`` (default) commits every batch before ``ingest`` returns —
        today's semantics.  ``2`` defers the commit barrier of batch N
        until batch N+1 (or any view/membership call) via :meth:`flush`,
        the in-process twin of the multi-process engine's pipelined
        commit window.  Products are byte-identical either way.
    hint_routing:
        Route each batch on a cheap :class:`CategoryHinter` guess and
        run the real classifier on the nodes instead of the
        coordinator, re-shipping misrouted offers to their true owner
        before ingest (position-tagged, so per-node stream order — and
        therefore every output byte — is preserved).  In this
        in-process facade the "node-side" classification still runs on
        the coordinator thread; the knob exists so equivalence tests
        can pin the routing protocol itself against coordinator-side
        classification.

    The ``executor`` argument is built *per node* when given as a name,
    so ``executor="process"`` gives every node its own worker pool.
    """

    def __init__(
        self,
        catalog: Catalog,
        correspondences: CorrespondenceSet,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_classifier: Optional[TitleCategoryClassifier] = None,
        clusterer: Optional[KeyAttributeClusterer] = None,
        fusion: Optional[CentroidValueFusion] = None,
        min_cluster_size: int = 1,
        num_nodes: int = 2,
        num_shards: int = 8,
        executor: Union[str, ShardExecutor, None] = "serial",
        max_workers: Optional[int] = None,
        track_category_statistics: bool = True,
        store: Union[str, CatalogStore, None] = None,
        store_path: Optional[str] = None,
        delta_refusion: Optional[bool] = None,
        concurrent: bool = False,
        auto_recover: bool = True,
        auto_rebalance_skew: Optional[float] = None,
        auto_rebalance_patience: int = 2,
        pipeline_depth: int = 1,
        hint_routing: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if pipeline_depth not in (1, 2):
            raise ValueError(f"pipeline_depth must be 1 or 2, got {pipeline_depth}")
        self._classifier = category_classifier
        self._engine_kwargs = dict(
            catalog=catalog,
            correspondences=correspondences,
            extractor=extractor,
            category_classifier=category_classifier,
            clusterer=clusterer,
            fusion=fusion,
            min_cluster_size=min_cluster_size,
            executor=executor,
            max_workers=max_workers,
            track_category_statistics=track_category_statistics,
            delta_refusion=delta_refusion,
        )
        self._num_shards = num_shards
        self._owns_store = not isinstance(store, CatalogStore)
        self._store = resolve_store(store, path=store_path)
        self._store.bind(num_shards)
        self._lock = threading.RLock()
        self._coordinator = ShardCoordinator(self._store, num_shards)
        self._concurrent = concurrent
        self._auto_recover = auto_recover
        self._skew_watcher: Optional[LoadSkewWatcher] = None
        if auto_rebalance_skew is not None:
            self._skew_watcher = LoadSkewWatcher(
                threshold=auto_rebalance_skew, patience=auto_rebalance_patience
            )
        self._nodes: Dict[str, _EngineNode] = {}
        self._node_counter = itertools.count(1)
        self._retired_transport = TransportStats()
        self._pipeline_depth = pipeline_depth
        self._hint_routing = hint_routing
        self._hinter: Optional[CategoryHinter] = None
        self._pending_commit = False
        # Coordinator-side accounting: misroute counters for hint mode,
        # and the routing / barrier-wait split the cluster bench reports.
        self._coordinator_transport = TransportStats()
        self._routing_seconds = 0.0
        self._barrier_seconds = 0.0
        self._closed = False
        # Observability: the coordinator publishes only its *own*
        # accounting (coordinator + retired transport) — each node engine
        # bridges its transport itself, and counters sum at collection,
        # so the merged view equals transport_stats() without double
        # counting.  Callback gauges hold a weakref only.
        registry = get_registry()
        self._obs = registry
        self._obs_cluster_batches = registry.counter(
            "cluster_batches_total",
            help="Micro-batches absorbed by cluster coordinators.",
        )
        cluster_ref = weakref.ref(self)

        def _coordinator_provider() -> Dict[str, object]:
            cluster = cluster_ref()
            if cluster is None:
                return {}
            stats = TransportStats()
            stats.merge(cluster._retired_transport)
            stats.merge(cluster._coordinator_transport)
            return stats.metrics_fragment()

        self._obs_provider = registry.add_provider(_coordinator_provider)
        registry.gauge(
            "cluster_routing_seconds",
            help="Coordinator time spent deduplicating and routing batches.",
            callback=lambda: (lambda c: 0.0 if c is None else c._routing_seconds)(
                cluster_ref()
            ),
        )
        registry.gauge(
            "cluster_barrier_wait_seconds",
            help="Coordinator time spent waiting on commit barriers.",
            callback=lambda: (lambda c: 0.0 if c is None else c._barrier_seconds)(
                cluster_ref()
            ),
        )
        registry.gauge(
            "cluster_nodes",
            help="Live cluster members.",
            callback=lambda: (lambda c: 0 if c is None else len(c._nodes))(cluster_ref()),
        )
        # Bootstrap membership in one layout pass: registering the nodes
        # first and granting shards once avoids fencing every shard
        # through N-1 intermediate layouts (and, on sqlite, one durable
        # epoch flush per intermediate move).
        for _ in range(num_nodes):
            self.add_node(defer_layout=True)
        self._coordinator.apply_layout()

    # -- membership ------------------------------------------------------------

    def node_ids(self) -> List[str]:
        """Ids of the live cluster members, ascending."""
        return sorted(self._nodes)

    @property
    def coordinator(self) -> ShardCoordinator:
        """The shard coordinator (assignment and fencing authority)."""
        return self._coordinator

    @property
    def store(self) -> CatalogStore:
        """The shared catalog store holding the cluster's state."""
        return self._store

    @property
    def skew_watcher(self) -> Optional["LoadSkewWatcher"]:
        """The automatic-rebalance trigger, or ``None`` when manual."""
        return self._skew_watcher

    def node_view(self, node_id: str) -> FencedStoreView:
        """The fenced store view of one live node (tests, diagnostics)."""
        return self._nodes[node_id].view

    def add_node(self, node_id: Optional[str] = None, defer_layout: bool = False) -> str:
        """Join a node: rebalance, grant a lease, build its engine.

        The moved shards' cluster state needs no explicit transfer — it
        already lives in the shared store, and the new node's delta
        workers resync from it (or get a one-time full re-ship) exactly
        as after a worker restart.  ``defer_layout`` is the bootstrap
        path: leases stay empty until the coordinator applies one final
        layout for the whole initial membership.
        """
        if node_id is None:
            node_id = f"node-{next(self._node_counter)}"
        self.flush()
        lease = self._coordinator.register_node(node_id, rebalance=not defer_layout)
        view = FencedStoreView(self._store, lease, self._lock, deferred_commit=True)
        engine = SynthesisEngine(num_shards=self._num_shards, store=view, **self._engine_kwargs)
        self._nodes[node_id] = _EngineNode(node_id=node_id, lease=lease, view=view, engine=engine)
        return node_id

    def _retire(self, node_id: str, fence: bool) -> _EngineNode:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not a cluster member")
        if len(self._nodes) == 1:
            raise RuntimeError(
                f"cannot retire {node_id!r}: it is the last node of the cluster"
            )
        self.flush()
        node = self._nodes.pop(node_id)
        self._coordinator.retire_node(node_id, fence=fence)
        self._retired_transport.merge(node.engine.transport_stats())
        # The retired totals now carry this engine's counters; its own
        # provider has to go, or the frames would be counted twice.
        node.engine.detach_metrics_provider()
        node.engine.release_workers()
        return node

    def remove_node(self, node_id: str) -> None:
        """Gracefully leave: drain, reassign with fresh epochs, release.

        Ingest is a batch barrier, so between batches the node is
        quiescent and everything it produced is in the shared store
        (committed at the last barrier for durable backends) — the
        "drain + snapshot via the store" half of the handoff protocol.
        """
        self._retire(node_id, fence=False)

    def fence_node(self, node_id: str) -> None:
        """Forcibly fence a node (crash path, or an operator evicting it).

        The node's shards get fresh epochs and new owners; its lease is
        left stale, so any write the zombie still attempts raises
        :class:`~repro.runtime.state.StaleEpochError`.
        """
        self._retire(node_id, fence=True)

    def rebalance(self, loads: Optional[Dict[int, float]] = None) -> Dict[int, str]:
        """Reassign shards by load between batches; returns the layout.

        With ``loads=None`` the observed load is read from the shared
        store (offers held per shard) — the modulo layout membership
        starts from ignores how skewed the category distribution is, and
        a warm cluster can pull its busiest shards apart this way.
        Moved shards are re-fenced and their new owners resync through
        the delta protocol, exactly like a membership handoff.
        """
        self.flush()
        if loads is None:
            loads = {}
            for _, state in self._store.iter_clusters():
                loads[state.shard_index] = loads.get(state.shard_index, 0.0) + state.size()
        return self._coordinator.rebalance_by_load(loads)

    # -- routing ---------------------------------------------------------------

    def _route_categories(self, offers: Sequence[Offer]) -> List[Offer]:
        """Assign categories for routing (mirrors the engine's stage)."""
        return assign_routing_categories(offers, self._classifier)

    def _partition(self, categorised: Sequence[Offer]) -> Dict[str, List[Offer]]:
        """Group offers by owning node, preserving stream order per node."""
        return partition_offers_by_node(
            categorised,
            self._num_shards,
            self._coordinator.node_for_shard,
            fallback_node_id=self.node_ids()[0],
        )

    def _hint_route(self, fresh: Sequence[Offer]) -> Dict[str, List[Offer]]:
        """Route ``fresh`` via hints, classifying on the hinted nodes.

        The in-process emulation of the multi-process classify round:
        each hinted node runs the real classifier over its guessed
        sub-batch (billed to that node's busy time), misroutes are
        counted and re-homed, and every true owner's final sub-batch is
        re-sorted by batch position — byte-identical placement and order
        to coordinator-side classification.
        """
        if any(offer.category_id is None for offer in fresh) and (
            self._classifier is None or not self._classifier.is_trained
        ):
            # Same error contract as assign_routing_categories — checked
            # up front so no node sees a half-routed batch.
            raise ValueError(
                "offers without a category require a trained category classifier"
            )
        if self._hinter is None:
            self._hinter = CategoryHinter.from_classifier(self._classifier)
        fallback = self.node_ids()[0]
        hinted = partition_offers_by_hint(
            fresh, self._num_shards, self._coordinator.node_for_shard, fallback, self._hinter
        )
        # Every fresh offer is routed by hint here; together with the
        # misroute counter below this yields the hint_accuracy gauge.
        self._coordinator_transport.hinted_offers += len(fresh)
        merged: Dict[str, List[Tuple[int, Offer]]] = {}
        for node_id in sorted(hinted):
            node = self._nodes[node_id]
            started = time.perf_counter()
            categorised = node.engine.classify_offers(
                [offer for _, offer in hinted[node_id]]
            )
            node.busy_seconds += time.perf_counter() - started
            for (position, _), offer in zip(hinted[node_id], categorised):
                if offer.category_id is None:
                    owner = fallback
                else:
                    owner = self._coordinator.node_for_shard(
                        shard_for_category(offer.category_id, self._num_shards)
                    )
                if owner != node_id:
                    self._coordinator_transport.misrouted_offers += 1
                merged.setdefault(owner, []).append((position, offer))
        return {
            node_id: [offer for _, offer in sorted(items, key=lambda item: item[0])]
            for node_id, items in merged.items()
        }

    def _route(self, fresh: Sequence[Offer]) -> Dict[str, List[Offer]]:
        """One batch's node -> fully-categorised sub-batch map."""
        if self._hint_routing:
            return self._hint_route(fresh)
        return self._partition(self._route_categories(fresh))

    # -- ingest ----------------------------------------------------------------

    def ingest(self, offers: Sequence[Offer]) -> IngestReport:
        """Absorb one micro-batch across the cluster.

        Same contract as the single engine's ``ingest``: idempotent per
        offer id, and one commit barrier at the end — a crash loses at
        most the cluster batch in flight.  If a node dies mid-batch (and
        ``auto_recover`` holds), the store rolls back to the barrier,
        the node is fenced, and the batch replays on the survivors.
        """
        report = IngestReport(offers_in_batch=len(offers))
        if self._store.closed:
            raise RuntimeError(
                "cannot ingest: the cluster's catalog store is closed "
                "(reopen the store path with a new cluster to resume)"
            )
        self._closed = False
        # A deferred commit from the previous pipelined batch must land
        # before this batch mutates the store: crash recovery rolls back
        # to the last commit barrier, and that barrier must never
        # straddle two batches.
        self.flush()
        routing_started = time.perf_counter()
        fresh: List[Offer] = []
        batch_ids = set()
        for offer in offers:
            if self._store.is_seen(offer.offer_id) or offer.offer_id in batch_ids:
                continue
            batch_ids.add(offer.offer_id)
            fresh.append(offer)
        report.offers_duplicate = report.offers_in_batch - len(fresh)
        self._routing_seconds += time.perf_counter() - routing_started
        if not fresh:
            self._store.commit()
            return report

        busy_before = {node_id: node.busy_seconds for node_id, node in self._nodes.items()}
        attempts = 0
        while True:
            try:
                # Routing sits inside the retry loop: a recovery replay
                # re-routes against the post-fence layout (deterministic,
                # so an un-fenced replay routes identically).
                routing_started = time.perf_counter()
                with self._obs.span("cluster.route"):
                    routed = self._route(fresh)
                self._routing_seconds += time.perf_counter() - routing_started
                node_reports = self._dispatch(routed)
                break
            except _NodeFailure as failure:
                attempts += 1
                if (
                    not self._auto_recover
                    or not self._store.supports_rollback
                    or len(self._nodes) <= 1
                    or attempts >= len(self._nodes) + 1
                ):
                    # Unrecoverable: still return the store to the commit
                    # barrier where possible, so the caller can retry the
                    # batch without its offers being half-absorbed.
                    if self._store.supports_rollback and not self._store.closed:
                        self._store.rollback()
                    raise failure.cause
                # Crash recovery: back to the commit barrier, fence the
                # dead node, replay the whole batch on the survivors
                # (rollback un-saw the batch's offers, so the replay is
                # not deduplicated away).
                self._store.rollback()
                self.fence_node(failure.node_id)

        aggregate = IngestReport()
        for node_report in node_reports:
            aggregate.merge(node_report)
        report.offers_new = aggregate.offers_new
        report.offers_duplicate += aggregate.offers_duplicate
        report.offers_clustered = aggregate.offers_clustered
        report.offers_without_key = aggregate.offers_without_key
        report.offers_uncategorised = aggregate.offers_uncategorised
        report.clusters_touched = aggregate.clusters_touched
        report.products_refreshed = aggregate.products_refreshed
        # The single commit barrier of this cluster batch.  A failed
        # flush is a *store* failure, not a node crash: fencing cannot
        # help, so discard the batch (where the backend allows it) and
        # surface the error — the caller may then retry the whole batch.
        # At pipeline_depth 2 the barrier is deferred to the next batch
        # (or the next view/membership call) via :meth:`flush`.
        if self._pipeline_depth > 1:
            self._pending_commit = True
        else:
            barrier_started = time.perf_counter()
            try:
                with self._obs.span("cluster.commit_barrier"):
                    self._store.commit()
            except Exception:
                if self._store.supports_rollback and not self._store.closed:
                    self._store.rollback()
                raise
            finally:
                self._barrier_seconds += time.perf_counter() - barrier_started
        self._obs_cluster_batches.inc()
        self._maybe_auto_rebalance(busy_before)
        return report

    def flush(self) -> None:
        """Land the deferred commit barrier of a pipelined batch.

        No-op unless ``pipeline_depth`` is 2 and a batch is pending.
        Runs at the start of the next ingest and before any view or
        membership operation, so the deferred window is invisible to
        callers — reads always observe fully committed state.
        """
        if not self._pending_commit:
            return
        self._pending_commit = False
        barrier_started = time.perf_counter()
        try:
            with self._obs.span("cluster.commit_barrier"):
                self._store.commit()
        except Exception:
            if self._store.supports_rollback and not self._store.closed:
                self._store.rollback()
            raise
        finally:
            self._barrier_seconds += time.perf_counter() - barrier_started

    def _maybe_auto_rebalance(self, busy_before: Dict[str, float]) -> None:
        """Feed the skew watcher one batch; rebalance when it fires.

        Runs strictly *after* the commit barrier, so a triggered
        rebalance behaves exactly like a manual between-batches
        :meth:`rebalance` (re-fence moved shards, resync new owners).
        """
        if self._skew_watcher is None:
            return
        busy = {
            node_id: node.busy_seconds - busy_before.get(node_id, 0.0)
            for node_id, node in self._nodes.items()
        }
        if self._skew_watcher.observe(busy):
            self.rebalance()

    def _ingest_on(self, node: _EngineNode, sub_batch: List[Offer]) -> IngestReport:
        started = time.perf_counter()
        try:
            return node.engine.ingest(sub_batch)
        except Exception as exc:  # noqa: BLE001 - re-raised via recovery
            raise _NodeFailure(node.node_id, exc) from exc
        finally:
            # Busy time accrues even for an attempt that is later rolled
            # back (the node really did spend it); the routing counters
            # below are applied only once the whole wave succeeded, so a
            # recovery replay never double-counts offers.
            node.busy_seconds += time.perf_counter() - started

    def _dispatch(self, routed: Dict[str, List[Offer]]) -> List[IngestReport]:
        """Run one batch's routed sub-batches on their nodes; first failure wins."""
        ordered = [(node_id, routed[node_id]) for node_id in sorted(routed)]
        if not self._concurrent or len(ordered) == 1:
            results = [
                self._ingest_on(self._nodes[node_id], sub_batch)
                for node_id, sub_batch in ordered
            ]
        else:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=len(ordered), thread_name_prefix="cluster-node"
            ) as pool:
                futures = [
                    pool.submit(self._ingest_on, self._nodes[node_id], sub_batch)
                    for node_id, sub_batch in ordered
                ]
                results = []
                failure: Optional[_NodeFailure] = None
                for future in futures:
                    try:
                        results.append(future.result())
                    except _NodeFailure as exc:
                        # Deterministic pick: first failed node in id order.
                        if failure is None:
                            failure = exc
                if failure is not None:
                    raise failure
        for node_id, sub_batch in ordered:
            node = self._nodes[node_id]
            node.offers_routed += len(sub_batch)
            node.batches += 1
        return results

    # -- views ----------------------------------------------------------------

    def products(self) -> List[Product]:
        """All current synthesized products (same order as a single engine)."""
        self.flush()
        return self._store.sorted_products()

    def num_clusters(self) -> int:
        """Number of clusters tracked so far (including sub-threshold ones)."""
        self.flush()
        return self._store.num_clusters()

    def category_statistics(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The incremental TF-IDF statistics of one category (or ``None``)."""
        self.flush()
        return self._store.category_stats(category_id)

    def snapshot(self) -> EngineSnapshot:
        """A consistent summary of everything ingested so far."""
        self.flush()
        return EngineSnapshot(
            products=self.products(),
            num_clusters=self.num_clusters(),
            offers_ingested=self._store.num_seen(),
            reconciliation_stats=self._store.reconciliation_stats(),
            assigned_categories=self._store.assigned_categories(),
            category_vocabulary=self._store.category_vocabulary(),
        )

    def transport_stats(self) -> TransportStats:
        """Cluster-wide executor-payload accounting (all nodes, ever)."""
        merged = TransportStats()
        merged.merge(self._retired_transport)
        merged.merge(self._coordinator_transport)
        for node in self._nodes.values():
            merged.merge(node.engine.transport_stats())
        return merged

    @property
    def routing_seconds(self) -> float:
        """Coordinator time spent deduplicating and routing batches."""
        return self._routing_seconds

    @property
    def barrier_wait_seconds(self) -> float:
        """Coordinator time spent waiting on commit barriers."""
        return self._barrier_seconds

    @property
    def coordinator_seconds(self) -> float:
        """Total serial coordinator overhead (routing + barrier waits)."""
        return self._routing_seconds + self._barrier_seconds

    def node_stats(self) -> List[NodeStats]:
        """Per-node routing/timing accounting, in node-id order."""
        return [
            NodeStats(
                node_id=node.node_id,
                shards=node.lease.shards(),
                offers_routed=node.offers_routed,
                batches=node.batches,
                busy_seconds=node.busy_seconds,
            )
            for _, node in sorted(self._nodes.items())
        ]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release every node's workers and flush/close the shared store."""
        if self._closed:
            return
        self._closed = True
        self._obs.remove_provider(self._obs_provider)
        if not self._store.closed:
            self.flush()
        for node in self._nodes.values():
            node.engine.detach_metrics_provider()
            node.engine.release_workers()
        if self._owns_store:
            self._store.close()
        else:
            self._store.commit()

    def __enter__(self) -> "MultiNodeEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()


def __getattr__(name: str):
    """Lazily re-export the multi-process members from their module.

    ``ProcessNode`` / ``MultiProcessEngine`` live in
    :mod:`repro.runtime.procnode` (which imports the fencing primitives
    from here); resolving them on attribute access keeps
    ``repro.runtime.cluster`` their import home without a cycle.
    """
    if name in ("ProcessNode", "MultiProcessEngine"):
        from repro.runtime import procnode

        return getattr(procnode, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
