"""The delta re-fusion protocol (worker-resident shard state).

The original engine shipped the *full* contents of every touched cluster
to its shard executor on every batch — for a process pool that means
re-pickling clusters that keep growing, so per-batch payloads scale with
cluster size instead of batch size.

This module replaces that with deltas.  Process workers keep the cluster
state of the shards pinned to them (see
:meth:`~repro.runtime.executors.ProcessPoolShardExecutor.map_pinned`)
and each batch ships only:

* the *new* offers appended to each touched cluster, plus the cluster
  size the delta applies on top of (``base_size`` — the per-cluster
  consistency check), and
* a per-shard version counter pair so a worker that restarted or fell
  behind is detected immediately.

A worker whose cached cluster does not match ``base_size`` resyncs: from
the durable store directly when the task carries a
``resync_path`` (SQLite reflects the last commit, i.e. exactly the
pre-batch state), otherwise by reporting the cluster ids back so the
engine re-ships their full contents once.

Everything here is module-level and pickle-friendly on purpose: tasks
travel to worker processes, and the worker cache must live in module
state so it survives between ``map_pinned`` calls.

The protocol is also what makes worker lifecycle inside *cluster node
processes* (:mod:`repro.runtime.procnode`) self-healing: store tokens
embed the owning PID, so two nodes' worker pools can never cross-feed
caches, and after a crash-recovery rollback the version/``base_size``
guards catch every stale cache and resync it from the shared WAL file —
which reflects exactly the commit barrier the cluster rolled back to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.model.offers import Offer
from repro.model.products import Product
from repro.runtime.state import ClusterId
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.fusion import CentroidValueFusion, MemoizedValueFusion
from repro.synthesis.pipeline import build_product_from_cluster

__all__ = [
    "ClusterDelta",
    "DeltaShardTask",
    "DeltaShardResult",
    "TransportStats",
    "fuse_delta_shard",
    "reset_worker_caches",
]


@dataclass
class ClusterDelta:
    """What one touched cluster gained in the current batch."""

    cluster_id: ClusterId
    #: Catalog attributes to fuse (category schema or observed names).
    attribute_names: List[str]
    #: Cluster size *before* this batch; 0 means "replace: ``new_offers``
    #: is the complete cluster content" (fresh cluster or resync retry).
    base_size: int
    new_offers: List[Offer]
    #: False for sub-threshold clusters: apply the delta (keep the worker
    #: cache current) but skip fusion — there is no product yet.
    fuse: bool = True


@dataclass
class DeltaShardTask:
    """One shard's delta payload for one batch."""

    #: Token of the store generation; worker caches are keyed by it.
    store_token: str
    shard_index: int
    #: Version the deltas apply on top of / version after applying them.
    base_version: int
    new_version: int
    deltas: List[ClusterDelta]
    #: The *base* fusion strategy; workers wrap it in a memo themselves.
    fusion: CentroidValueFusion
    #: Durable store file workers can resync from (``None`` = memory store).
    resync_path: Optional[str] = None


@dataclass
class DeltaShardResult:
    """What a worker did with one :class:`DeltaShardTask`."""

    #: Parallel to ``task.deltas``; ``None`` where ``fuse`` was false,
    #: fusion yielded nothing, or the cluster is listed in ``missing``.
    products: List[Optional[Product]]
    #: Clusters the worker could not reconstruct (stale/absent cache and
    #: no usable resync source) — the engine re-ships these in full.
    missing: List[ClusterId] = field(default_factory=list)
    #: Clusters reloaded from the durable store (worker self-resync).
    resynced: int = 0


@dataclass
class TransportStats:
    """Cumulative executor-payload accounting of one engine.

    ``offers_shipped`` is the interesting number: with full-state
    shipping it grows with *cluster* sizes every batch; with the delta
    protocol it grows with *batch* sizes (every offer ships once, plus
    the rare resync retry).
    """

    batches: int = 0
    shard_tasks: int = 0
    clusters_shipped: int = 0
    offers_shipped: int = 0
    #: Clusters process workers reloaded from the durable store.
    worker_resyncs: int = 0
    #: Clusters re-shipped in full after a worker reported them missing.
    full_retries: int = 0
    #: Pipe-protocol frames a cluster coordinator sent to its nodes.
    frames_sent: int = 0
    #: Pipe-protocol frames a cluster coordinator received from nodes.
    frames_received: int = 0
    #: Serialized payload bytes of the sent frames.
    frame_bytes_sent: int = 0
    #: Serialized payload bytes of the received frames.
    frame_bytes_received: int = 0
    #: Offers whose routing hint pointed at the wrong node and that were
    #: re-shipped to their true owner at the classification barrier.
    misrouted_offers: int = 0
    #: Offers that were hint-routed at all (misrouted or not); the
    #: denominator of :attr:`hint_accuracy`.
    hinted_offers: int = 0

    @property
    def hint_accuracy(self) -> Optional[float]:
        """Fraction of hint-routed offers whose hint was correct.

        ``None`` when hint routing never ran (no denominator) — the
        gauge the ROADMAP asks for: an accuracy that degrades over a
        stream is the signal to retrain or widen the hinter's vote
        table, *before* misroute re-ships start dominating transport.
        """
        if self.hinted_offers == 0:
            return None
        return 1.0 - self.misrouted_offers / self.hinted_offers

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        return {
            "batches": self.batches,
            "shard_tasks": self.shard_tasks,
            "clusters_shipped": self.clusters_shipped,
            "offers_shipped": self.offers_shipped,
            "worker_resyncs": self.worker_resyncs,
            "full_retries": self.full_retries,
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "frame_bytes_sent": self.frame_bytes_sent,
            "frame_bytes_received": self.frame_bytes_received,
            "misrouted_offers": self.misrouted_offers,
            "hinted_offers": self.hinted_offers,
            "hint_accuracy": self.hint_accuracy,
        }

    def merge(self, other: "TransportStats") -> None:
        """Fold another engine's counters into this one.

        A multi-node engine aggregates its per-node transport accounting
        this way; counters are plain sums, so the merge is order-free.
        """
        self.batches += other.batches
        self.shard_tasks += other.shard_tasks
        self.clusters_shipped += other.clusters_shipped
        self.offers_shipped += other.offers_shipped
        self.worker_resyncs += other.worker_resyncs
        self.full_retries += other.full_retries
        self.frames_sent += other.frames_sent
        self.frames_received += other.frames_received
        self.frame_bytes_sent += other.frame_bytes_sent
        self.frame_bytes_received += other.frame_bytes_received
        self.misrouted_offers += other.misrouted_offers
        self.hinted_offers += other.hinted_offers

    def metrics_fragment(
        self, labels: Optional[Dict[str, str]] = None
    ) -> Dict[str, object]:
        """This accounting as a :mod:`repro.obs` snapshot fragment.

        The registry *reads through* pre-existing stat objects instead of
        double-writing them: engines and cluster coordinators register a
        provider that calls this, so ``registry.snapshot()`` and
        ``/metrics`` expose the same counters ``transport_stats()``
        reports, under stable family names.
        """
        from repro.obs import series_key, snapshot_fragment

        fields = {
            "transport_batches_total": self.batches,
            "transport_shard_tasks_total": self.shard_tasks,
            "transport_clusters_shipped_total": self.clusters_shipped,
            "transport_offers_shipped_total": self.offers_shipped,
            "transport_worker_resyncs_total": self.worker_resyncs,
            "transport_full_retries_total": self.full_retries,
            "pipe_frames_sent_total": self.frames_sent,
            "pipe_frames_received_total": self.frames_received,
            "pipe_frame_bytes_sent_total": self.frame_bytes_sent,
            "pipe_frame_bytes_received_total": self.frame_bytes_received,
            "routing_misrouted_offers_total": self.misrouted_offers,
            "routing_hinted_offers_total": self.hinted_offers,
        }
        help_texts = {
            "transport_batches_total": "Engine batches shipped to shard executors.",
            "transport_shard_tasks_total": "Per-shard executor tasks dispatched.",
            "transport_clusters_shipped_total": "Touched clusters shipped (delta or full).",
            "transport_offers_shipped_total": "Offers serialised into executor payloads.",
            "transport_worker_resyncs_total": "Clusters workers reloaded from the durable store.",
            "transport_full_retries_total": "Clusters re-shipped in full after a cache miss.",
            "pipe_frames_sent_total": "Pipe-protocol frames sent to cluster node processes.",
            "pipe_frames_received_total": "Pipe-protocol frames received from node processes.",
            "pipe_frame_bytes_sent_total": "Serialized payload bytes of sent pipe frames.",
            "pipe_frame_bytes_received_total": "Serialized payload bytes of received pipe frames.",
            "routing_misrouted_offers_total": "Hint-routed offers re-homed at the classify barrier.",
            "routing_hinted_offers_total": "Offers routed via category hints at all.",
        }
        counters = {
            series_key(name, labels): float(value)
            for name, value in fields.items()
            if value
        }
        gauges: Dict[str, float] = {}
        accuracy = self.hint_accuracy
        if accuracy is not None:
            gauges[series_key("routing_hint_accuracy", labels)] = accuracy
        families = {
            name: {"type": "counter", "help": help_texts[name]}
            for name in fields
            if fields[name]
        }
        if accuracy is not None:
            families["routing_hint_accuracy"] = {
                "type": "gauge",
                "help": "Fraction of hint-routed offers whose hint was correct.",
            }
        return snapshot_fragment(counters=counters, gauges=gauges, families=families)


@dataclass
class _ShardCache:
    """Worker-resident state of one (store generation, shard) pair."""

    version: int
    clusters: Dict[ClusterId, OfferCluster]
    fusion: MemoizedValueFusion


#: (store_token, shard_index) -> worker-resident shard state.  Lives in
#: the worker process; at most one store generation is kept per shard.
_SHARD_CACHES: Dict[Tuple[str, int], _ShardCache] = {}


def reset_worker_caches() -> None:
    """Drop all worker-resident shard state (tests / diagnostics)."""
    _SHARD_CACHES.clear()


def _shard_cache(task: DeltaShardTask) -> _ShardCache:
    cache_key = (task.store_token, task.shard_index)
    cache = _SHARD_CACHES.get(cache_key)
    if cache is None:
        # A new store generation supersedes any cache the previous one
        # left behind for this shard — drop it so memory stays bounded.
        for stale_key in [
            key
            for key in _SHARD_CACHES
            if key[1] == task.shard_index and key[0] != task.store_token
        ]:
            del _SHARD_CACHES[stale_key]
        cache = _ShardCache(
            version=0,
            clusters={},
            # Worker-resident memo: re-selections of unchanged attribute
            # value lists become dictionary lookups across batches —
            # something the old ship-everything protocol could never keep
            # because its pickled payloads dropped the cache every batch.
            fusion=MemoizedValueFusion(task.fusion),
        )
        _SHARD_CACHES[cache_key] = cache
    return cache


def fuse_delta_shard(task: DeltaShardTask) -> DeltaShardResult:
    """Apply one shard's deltas to the worker cache and fuse its clusters.

    Module-level and deterministic: the same task stream yields the same
    products in any worker, which is what keeps delta execution
    byte-identical to serial full-state fusion.
    """
    cache = _shard_cache(task)
    if cache.version != task.base_version:
        # The worker fell behind (missed a dispatch) or restarted with a
        # fresh cache: distrust every cached cluster of this shard.  The
        # touched ones resync below (from the store or via the engine's
        # full re-ship); untouched ones rebuild the same way when they
        # are next touched.  The per-cluster base_size check alone would
        # also catch every stale cluster (sizes only grow), so the
        # version counter is the coarse fast-detector the protocol
        # advertises, and base_size stays as the belt-and-braces guard.
        cache.clusters.clear()
    unresolved: List[ClusterDelta] = []
    for delta in task.deltas:
        category_id, key = delta.cluster_id
        if delta.base_size == 0:
            cache.clusters[delta.cluster_id] = OfferCluster(
                category_id=category_id, key=key, offers=list(delta.new_offers)
            )
            continue
        cluster = cache.clusters.get(delta.cluster_id)
        if cluster is not None and len(cluster.offers) == delta.base_size:
            cluster.offers.extend(delta.new_offers)
        else:
            unresolved.append(delta)

    resynced = 0
    if unresolved and task.resync_path is not None:
        from repro.runtime.store.sqlite import load_shard_clusters

        loaded = load_shard_clusters(
            task.resync_path, [delta.cluster_id for delta in unresolved]
        )
        still_unresolved: List[ClusterDelta] = []
        for delta in unresolved:
            offers = loaded.get(delta.cluster_id)
            # The store reflects the last commit = the pre-batch state,
            # so a matching snapshot has exactly base_size offers.
            if offers is not None and len(offers) == delta.base_size:
                category_id, key = delta.cluster_id
                cluster = OfferCluster(category_id=category_id, key=key, offers=offers)
                cluster.offers.extend(delta.new_offers)
                cache.clusters[delta.cluster_id] = cluster
                resynced += 1
            else:
                still_unresolved.append(delta)
        unresolved = still_unresolved

    missing = {delta.cluster_id for delta in unresolved}
    products: List[Optional[Product]] = []
    for delta in task.deltas:
        if not delta.fuse or delta.cluster_id in missing:
            products.append(None)
        else:
            products.append(
                build_product_from_cluster(
                    cache.clusters[delta.cluster_id], delta.attribute_names, cache.fusion
                )
            )
    cache.version = task.new_version
    return DeltaShardResult(
        products=products,
        missing=[delta.cluster_id for delta in unresolved],
        resynced=resynced,
    )
