"""The pluggable catalog state layer of the run-time engine.

:class:`~repro.runtime.engine.SynthesisEngine` used to keep all of its
state — clusters, cached fusion results, seen-offer ids, per-category
TF-IDF statistics, reconciliation counters — in private in-memory dicts.
This module factorises that implicit state behind an explicit
:class:`CatalogStore` interface so backends can be swapped:

* :class:`~repro.runtime.store.memory.MemoryCatalogStore` — the original
  zero-copy in-process behaviour (the default);
* :class:`~repro.runtime.store.sqlite.SqliteCatalogStore` — a durable
  WAL-mode SQLite backend that commits after every ingest and restores
  the full engine state across process restarts.

The store is also the source of truth for the *delta re-fusion protocol*
(:mod:`repro.runtime.delta`): it tracks a monotonic version counter per
category shard, and a durable store exposes a ``worker_resync_path`` so a
process worker that restarted or fell behind can reload shard state
straight from disk instead of having it re-shipped.
"""

from __future__ import annotations

import abc
import itertools
import os
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.model.offers import Offer
from repro.model.products import Product
from repro.obs import get_registry
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = [
    "ClusterId",
    "ClusterState",
    "CatalogStore",
    "StaleEpochError",
    "resolve_store",
]

#: A cluster is identified by (category_id, clustering key) — the same
#: pair the clusterer uses, so cluster identity is store-independent.
ClusterId = Tuple[str, str]

#: Monotonic source for store tokens; combined with the PID so tokens
#: from engines in different processes can never collide.
_TOKEN_COUNTER = itertools.count(1)


def _new_store_token() -> str:
    return f"store-{os.getpid()}-{next(_TOKEN_COUNTER)}"


class StaleEpochError(RuntimeError):
    """A write carried a fenced-out shard epoch and was rejected.

    Raised by the store layer when a writer presents a shard epoch older
    than the authoritative one — the node was fenced (it lagged, crashed,
    or had the shard reassigned) and must not commit stale cluster state.
    """


@dataclass
class ClusterState:
    """One cluster, its cached fusion result, and its shard assignment."""

    shard_index: int
    cluster: OfferCluster
    product: Optional[Product] = None

    def size(self) -> int:
        """Number of offers currently in the cluster."""
        return self.cluster.size()


class CatalogStore(abc.ABC):
    """Everything the synthesis engine remembers between ingests.

    The contract mirrors the engine's access patterns: membership checks
    and appends on the hot ingest path, whole-shard iteration for views,
    and an explicit :meth:`commit` barrier at the end of every ingest
    (durable backends flush exactly there, so a killed process loses at
    most the in-flight batch).

    A store instance carries a ``token`` unique per open; the delta
    protocol keys worker-resident shard caches on it, so state cached for
    a previous store generation can never leak into a new run.
    """

    #: Name used by CLI flags and reports ("memory", "sqlite", ...).
    name = "abstract"

    def __init__(self) -> None:
        self.token = _new_store_token()
        self._num_shards = 0
        self._fault_hook: Optional[Callable[[str], None]] = None
        self._commit_count = 0
        self._commit_intent: Optional[Tuple[int, bytes]] = None
        # Clusters mutated since the last commit barrier (insertion
        # ordered, deduplicated).  Backends with a commit journal drain
        # this at the barrier to record "commit k touched these clusters".
        self._touched_clusters: Dict[ClusterId, None] = {}
        # Deepest journal-reader position observed since the last
        # auto-compaction (the ``compact_journal(auto=True)`` signal);
        # ``None`` until a reader proves coverage via journal_entries.
        self._journal_reader_low_water: Optional[int] = None
        # Wrapper views (FencedStoreView) run this before assigning their
        # instance name, so they still resolve the class-level "abstract"
        # here — and they must *not* publish store series: they delegate
        # to a base store that already did.
        if self.name == "abstract":
            from repro.obs import NULL_REGISTRY

            self._obs_commits = NULL_REGISTRY.counter("store_commits_total")
            return
        registry = get_registry()
        labels = {"backend": self.name}
        self._obs_commits = registry.counter(
            "store_commits_total",
            help="Commit barriers completed, by store backend.",
            labels=labels,
        )
        # Callback gauges hold only a weak reference: a replaced or
        # closed store must not be pinned in memory by the registry.
        ref = weakref.ref(self)
        registry.gauge(
            "store_commit_count",
            help="Commit counter (snapshot identity) of the newest store.",
            labels=labels,
            callback=lambda: (lambda s: 0 if s is None else s.commit_count)(ref()),
        )
        registry.gauge(
            "journal_floor",
            help="Highest commit id not covered by the commit journal.",
            labels=labels,
            callback=lambda: (lambda s: 0 if s is None else s.journal_floor())(ref()),
        )
        registry.gauge(
            "journal_reader_lag_commits",
            help="Deepest reader lag observed since the last auto-compaction.",
            labels=labels,
            callback=lambda: (lambda s: 0 if s is None else s.journal_reader_lag() or 0)(
                ref()
            ),
        )

    # -- lifecycle -------------------------------------------------------------

    def bind(self, num_shards: int) -> None:
        """Attach the store to an engine with ``num_shards`` category shards.

        Restored state written under a different shard count is re-indexed
        by the backend (cluster identity never depends on the shard count,
        only the parallel grouping does).
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        """Shard count the store is bound to (0 before :meth:`bind`)."""
        return self._num_shards

    @abc.abstractmethod
    def commit(self) -> None:
        """Make everything recorded so far durable (no-op for memory)."""

    @property
    def commit_count(self) -> int:
        """How many commit barriers this store has completed.

        A monotonic snapshot identifier: the engine commits exactly once
        per ingest, so "the catalog after commit *k*" names a committed
        stream prefix.  The read side (:mod:`repro.serving`) uses it to
        label which prefix a query ran against; durable backends persist
        it, so the counter also identifies snapshots *across* processes.
        """
        return self._commit_count

    @abc.abstractmethod
    def close(self) -> None:
        """Release backend resources; safe to call more than once."""

    @property
    def supports_rollback(self) -> bool:
        """Whether :meth:`rollback` can restore the last committed state.

        Only durable backends can: they rebuild their mirror from the
        last on-disk commit.  A volatile store has no committed snapshot
        to return to, so crash recovery (which relies on discarding an
        in-flight batch) is unavailable with it.
        """
        return False

    def refresh(self) -> None:
        """Fold in state committed by *other* writers of the same backing.

        A multi-process cluster has several store instances (one per node
        process plus the coordinator's) over one durable file; a reader
        calls ``refresh`` after a commit barrier to see what the other
        connections flushed.  The default is a no-op: a single-writer
        in-memory store is always current.  Durable backends raise
        :class:`RuntimeError` when uncommitted local mutations would be
        lost by the re-read.
        """

    def rollback(self) -> None:
        """Discard every mutation since the last :meth:`commit`.

        Crash semantics on demand: after a node dies mid-batch, the
        coordinator rolls the shared store back to the last commit
        barrier and replays the batch on the surviving nodes.
        """
        raise RuntimeError(
            f"the {self.name!r} catalog store cannot roll back to a commit "
            "barrier (no durable snapshot); crash recovery requires a "
            "durable store such as store='sqlite'"
        )

    # -- fault injection (tests) -----------------------------------------------

    def set_fault_hook(self, hook: Optional[Callable[[str], None]]) -> None:
        """Install a callable invoked before every mutating operation.

        The hook receives the operation name (``"append_offers"``,
        ``"commit"``, ...) and may raise to simulate a node crashing
        mid-batch — the crash-injection tests use this to cut a node
        down at a precise point in the ingest path.  ``None`` uninstalls.
        """
        self._fault_hook = hook

    def _fault_point(self, operation: str) -> None:
        """Give an installed fault hook the chance to fail ``operation``."""
        if self._fault_hook is not None:
            self._fault_hook(operation)

    @property
    def closed(self) -> bool:
        """Whether the store can no longer accept writes.

        In-memory stores never close in this sense; durable backends
        report ``True`` once their connection is released, and the
        engine refuses further ingests instead of mutating a mirror
        whose writes could never be persisted.
        """
        return False

    # -- seen offers -----------------------------------------------------------

    @abc.abstractmethod
    def is_seen(self, offer_id: str) -> bool:
        """Whether an offer id was already absorbed."""

    @abc.abstractmethod
    def mark_seen(self, offer_id: str) -> bool:
        """Record an offer id; ``False`` when it was already recorded."""

    @abc.abstractmethod
    def num_seen(self) -> int:
        """Distinct offer ids absorbed so far."""

    # -- assigned categories ---------------------------------------------------

    @abc.abstractmethod
    def record_category(self, offer_id: str, category_id: str) -> None:
        """Remember which catalog category an offer was assigned to."""

    @abc.abstractmethod
    def assigned_categories(self) -> Dict[str, str]:
        """A copy of the offer-id -> category-id assignment map."""

    # -- clusters --------------------------------------------------------------

    @abc.abstractmethod
    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        """The state of one cluster, or ``None`` when it does not exist."""

    @abc.abstractmethod
    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        """Create (and return) an empty cluster in the given shard."""

    @abc.abstractmethod
    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        """Append a batch of reconciled offers to an existing cluster."""

    @abc.abstractmethod
    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        """Record the (re-)fused product of a cluster (``None`` = below bar)."""

    @abc.abstractmethod
    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        """Iterate over every tracked cluster (order unspecified)."""

    @abc.abstractmethod
    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        """Ids of every cluster living in one shard."""

    @abc.abstractmethod
    def num_clusters(self) -> int:
        """Number of clusters tracked so far (including sub-threshold ones)."""

    def sorted_products(self) -> List[Product]:
        """All current synthesized products, sorted by (category, key).

        The single definition of the engine-facing product listing:
        deterministic regardless of shard count, executor, backend, node
        count, or how the stream was batched.  Both the single engine
        and the multi-node facade serve ``products()`` from here, so
        their byte-identity contract cannot drift.
        """
        collected: List[Tuple[ClusterId, Product]] = []
        for cluster_id, state in self.iter_clusters():
            if state.product is not None:
                collected.append((cluster_id, state.product))
        collected.sort(key=lambda item: item[0])
        return [product for _, product in collected]

    def iter_products(self, page_size: int = 256) -> Iterator[Product]:
        """Stream the current products in (category, key) order.

        Same listing as :meth:`sorted_products`, but as an iterator so
        read-side consumers can page through a large catalog without the
        writer materialising it twice.  The default serves from the
        in-memory state (``page_size`` is advisory there); the SQLite
        backend overrides it to read committed pages straight from disk,
        the first step toward a read-through mode that does not require
        the full in-memory mirror.
        """
        yield from self.sorted_products()

    # -- per-category statistics -----------------------------------------------

    @abc.abstractmethod
    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        """Get-or-create the mutable TF-IDF statistics of one category.

        The returned object may be mutated in place; durable backends
        persist it at the next :meth:`commit`.
        """

    @abc.abstractmethod
    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The TF-IDF statistics of one category, or ``None``."""

    @abc.abstractmethod
    def category_vocabulary(self) -> Dict[str, int]:
        """category_id -> distinct value-token vocabulary size, sorted by id."""

    # -- reconciliation stats --------------------------------------------------

    @abc.abstractmethod
    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        """Fold one batch's reconciliation counters into the running total."""

    @abc.abstractmethod
    def reconciliation_stats(self) -> ReconciliationStats:
        """A copy of the accumulated reconciliation counters."""

    # -- shard versions (delta re-fusion protocol) -----------------------------

    @abc.abstractmethod
    def shard_version(self, shard_index: int) -> int:
        """The current version counter of one shard (0 = never dispatched)."""

    @abc.abstractmethod
    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        """Bump a shard's version; returns ``(base_version, new_version)``."""

    # -- shard epochs (multi-node version fencing) -----------------------------

    @abc.abstractmethod
    def shard_epoch(self, shard_index: int) -> int:
        """The authoritative fencing epoch of one shard (0 = never owned).

        Distinct from :meth:`shard_version`: versions count *dispatches*
        within one owner's stream and reset freely; epochs count
        *ownership changes* across nodes and only ever grow.  A durable
        backend persists epochs immediately (not at the commit barrier),
        because fencing must survive exactly the crashes it guards against.
        """

    @abc.abstractmethod
    def advance_shard_epoch(self, shard_index: int) -> int:
        """Bump a shard's epoch (fencing out all prior holders); returns it."""

    def check_shard_epoch(self, shard_index: int, epoch: int) -> None:
        """Reject a write that carries a fenced-out epoch.

        Raises :class:`StaleEpochError` unless ``epoch`` is the current
        epoch of the shard.  This is the store-side half of the fencing
        contract: every cluster write of a multi-node engine carries the
        epoch its node holds, and the store refuses stale ones.
        """
        current = self.shard_epoch(shard_index)
        if epoch != current:
            raise StaleEpochError(
                f"write to shard {shard_index} carries epoch {epoch} but the "
                f"store is at epoch {current}: the writing node was fenced "
                "(it lagged, restarted, or lost the shard to reassignment)"
            )

    # -- changed-cluster commit journal ----------------------------------------

    def _journal_touch(self, cluster_id: ClusterId) -> None:
        """Mark a cluster as touched by the in-flight batch.

        Concrete mutators (:meth:`create_cluster`, :meth:`append_offers`,
        :meth:`set_product`) call this so the commit barrier knows which
        clusters the next journal entry must name.  Insertion order is
        preserved and repeats dedup away.
        """
        self._touched_clusters[cluster_id] = None

    def _drain_touched(self) -> List[ClusterId]:
        """Take (and clear) the touched-cluster set of the in-flight batch."""
        touched = list(self._touched_clusters)
        self._touched_clusters.clear()
        return touched

    def journal_floor(self) -> int:
        """Highest commit id *not* covered by the commit journal.

        Entries exist only for commits ``floor < commit_id <= commit_count``
        that touched at least one cluster; a commit in that range with no
        entry rows touched nothing.  The default (no journal) reports the
        current :attr:`commit_count`, i.e. nothing is covered and readers
        must fall back to a full rebuild.
        """
        return self._commit_count

    def journal_entries(
        self, since: int
    ) -> Optional[List[Tuple[int, List[Tuple[ClusterId, Optional[Product]]]]]]:
        """Per-commit deltas after snapshot ``since``, oldest first.

        Each element is ``(commit_id, [(cluster_id, product-or-None), ...])``
        — the product each touched cluster carried *at that barrier*
        (``None`` = no synthesized product, i.e. an index remove).
        Returns ``None`` when the journal cannot prove coverage of
        ``(since, commit_count]`` (journal absent, truncated by
        compaction, or ``since`` predates the floor): the caller must
        fall back to a full read.  The default backend has no journal.
        """
        return None

    def _observe_journal_read(self, since: int) -> None:
        """Record a reader's proven journal position.

        Backends call this from :meth:`journal_entries` when coverage of
        ``(since, head]`` was proven — the reader is guaranteed able to
        delta-sync from ``since``, so an auto-compaction must not raise
        the floor above it.  Tracks the *minimum* position seen since
        the last ``compact_journal(auto=True)``.
        """
        low = self._journal_reader_low_water
        if low is None or since < low:
            self._journal_reader_low_water = since

    def journal_reader_lag(self) -> Optional[int]:
        """Deepest observed reader lag in commits, or ``None``.

        The distance between the current head and the lowest journal
        position a reader proved coverage from since the last
        auto-compaction — the retention target
        ``compact_journal(auto=True)`` keeps, and the lag gauge the
        observability layer exposes.
        """
        low = self._journal_reader_low_water
        if low is None:
            return None
        return max(0, self._commit_count - low)

    def _take_auto_floor(self) -> Optional[int]:
        """Consume the auto-compaction floor target (the reader low water).

        ``None`` means no reader proved journal coverage since the last
        auto pass — auto-compaction then keeps everything, the safe
        default.  Consuming resets the window: the next reader poll
        re-establishes it, so retention follows the *current* slowest
        reader instead of pinning on one that disappeared.  Run auto
        compaction at most as often as the slowest reader polls.
        """
        low = self._journal_reader_low_water
        self._journal_reader_low_water = None
        return low

    def read_journal_delta(
        self, since: int
    ) -> Optional[Dict[ClusterId, Optional[Product]]]:
        """The folded journal delta after ``since``, or ``None`` if uncovered.

        Merges :meth:`journal_entries` newest-wins into one
        ``cluster_id -> product-or-None`` map — the exact upsert/remove
        set a reader applies to move an index from snapshot ``since`` to
        the current head without rebuilding.
        """
        entries = self.journal_entries(since)
        if entries is None:
            return None
        delta: Dict[ClusterId, Optional[Product]] = {}
        for _, touched in entries:
            for cluster_id, product in touched:
                delta[cluster_id] = product
        return delta

    def compact_journal(self, retain_commits: int = 0, auto: bool = False) -> int:
        """Drop journal entries, keeping at most the last ``retain_commits``.

        Raises the floor accordingly; readers pinned below the new floor
        are forced onto the full-rebuild fallback (which the serving
        layer reports distinctly — see ``CatalogSearchService`` resync
        stats).  Returns the new floor.  No-op for journal-less backends.

        ``auto=True`` ignores ``retain_commits`` and instead retains the
        deepest observed reader lag (ROADMAP 3c): the floor rises at
        most to the lowest position a reader proved delta coverage from
        (via :meth:`journal_entries`) since the last auto pass, so a
        slow-but-polling reader is never forced onto the full-rebuild
        fallback.  With no observed reader the auto pass keeps
        everything.
        """
        if retain_commits < 0:
            raise ValueError(f"retain_commits must be >= 0, got {retain_commits}")
        if auto:
            self._take_auto_floor()
        return self.journal_floor()

    # -- commit intents (cluster barrier bookkeeping) --------------------------

    def write_commit_intent(self, sequence: int, payload: bytes) -> None:
        """Durably record that a batch is about to enter its commit round.

        A cluster coordinator writes the intent — the batch sequence
        number plus an opaque payload (the serialised offers) — *before*
        telling nodes to flush.  If the coordinator or a node dies
        between vote and flush, a restart finds the intent and replays
        the batch (idempotently: committed offers dedup away) instead of
        surfacing an unrecoverable error.  Volatile backends keep it in
        memory; durable ones must persist it immediately, outside the
        journalled batch state.
        """
        self._commit_intent = (sequence, payload)

    def clear_commit_intent(self) -> None:
        """Drop the pending intent once its batch fully committed."""
        self._commit_intent = None

    def pending_commit_intent(self) -> Optional[Tuple[int, bytes]]:
        """The recorded ``(sequence, payload)`` intent, or ``None``."""
        return self._commit_intent

    # -- worker resync ---------------------------------------------------------

    def worker_resync_path(self) -> Optional[str]:
        """Durable location a process worker can reload shard state from.

        ``None`` (the default) means workers cannot self-resync and the
        engine must re-ship full cluster contents instead.
        """
        return None


@dataclass
class _InMemoryState:
    """The dict-shaped state shared by the concrete backends.

    :class:`~repro.runtime.store.memory.MemoryCatalogStore` *is* this
    state; :class:`~repro.runtime.store.sqlite.SqliteCatalogStore` keeps
    it as a read-through mirror and journals mutations to disk at commit.
    """

    clusters: Dict[ClusterId, ClusterState] = field(default_factory=dict)
    shard_index: Dict[int, List[ClusterId]] = field(default_factory=dict)
    seen_offer_ids: set = field(default_factory=set)
    assigned_categories: Dict[str, str] = field(default_factory=dict)
    category_stats: Dict[str, IncrementalTfIdf] = field(default_factory=dict)
    reconciliation_stats: ReconciliationStats = field(default_factory=ReconciliationStats)
    shard_versions: Dict[int, int] = field(default_factory=dict)
    shard_epochs: Dict[int, int] = field(default_factory=dict)


def resolve_store(
    store: Union[str, CatalogStore, None],
    path: Optional[str] = None,
) -> CatalogStore:
    """Turn a store name (or instance, or ``None``) into a catalog store.

    ``None`` and ``"memory"`` give a fresh in-memory store; ``"sqlite"``
    opens (or creates) a durable store at ``path``.
    """
    # Imported here: the backends import this module for the protocol.
    from repro.runtime.store.memory import MemoryCatalogStore
    from repro.runtime.store.sqlite import SqliteCatalogStore

    if store is None:
        return MemoryCatalogStore()
    if isinstance(store, CatalogStore):
        return store
    if store == "memory":
        return MemoryCatalogStore()
    if store == "sqlite":
        if path is None:
            raise ValueError("store='sqlite' requires a store path")
        return SqliteCatalogStore(path)
    raise ValueError(f"unknown store {store!r}; expected one of ['memory', 'sqlite']")
