"""True multi-process cluster nodes over the shared WAL store.

:class:`~repro.runtime.cluster.MultiNodeEngine` scales by *threads*: its
nodes share one in-process store mirror under a lock, so fusion work
still funnels through one interpreter.  This module removes that wall.
:class:`MultiProcessEngine` runs every node in its **own OS process**
(:class:`ProcessNode` is the coordinator-side handle): each node opens
its own :class:`~repro.runtime.store.sqlite.SqliteCatalogStore`
connection and mirror over the shared WAL file, and nothing on the
ingest critical path crosses a shared lock — real multi-core scaling,
bounded only by the coordinator's routing work.

The coordinator and its nodes speak a small message protocol over pipes
(one duplex pipe per node, strictly request/reply per node, fanned out
across nodes):

``ingest``
    One routed sub-batch of offers.  The node runs its engine over it
    — all mutations land in the store's *journal*, nothing touches the
    file — and answers with a ``vote``: its ingest report, busy time and
    transport counters on success, the error otherwise.
``classify`` / ``apply``
    The hint-routing rounds (``hint_routing=True``): the coordinator
    routes each batch on a cheap :class:`~repro.runtime.cluster.CategoryHinter`
    guess, and the *nodes* run the real classifier in parallel —
    removing per-offer classification from the coordinator's serial
    path.  ``classify`` ships a hinted, position-tagged sub-batch; the
    node classifies it, retains what it truly owns and answers with the
    misrouted remainder.  ``apply`` delivers every misroute to its true
    owner, which merges retained + incoming offers back into original
    batch order and ingests — so placement and order (and therefore
    every output byte) match coordinator-side classification exactly.
``commit`` / ``abort``
    The cluster commit barrier.  When every involved node voted ready,
    the coordinator durably records a *commit intent* (the batch's
    offers, pickled into the store) and tells the voters to flush their
    journals (each node's flush is one SQLite transaction; WAL + busy
    timeouts serialise the concurrent writers).  Any failed or dead
    node instead aborts the others: they roll their journals away and
    rebuild their mirrors from the last barrier, the coordinator fences
    the failure, and the whole batch replays on the survivors.  With
    ``pipeline_depth=2`` the coordinator does not wait for the flush
    acks: it returns to the caller and collects them at the *next*
    ingest, overlapping batch N's node-side flushes with batch N+1's
    coordinator-side dedup and routing.  A death discovered at the
    barrier is replayed from the intent (only the offers the file does
    not already hold), and a coordinator that dies mid-barrier leaves
    the intent behind — a reopened cluster replays it on startup, so
    the once-fatal "commit barrier failed partway" state is now
    self-healing.
``lease``
    Fence/handoff: the new epoch map of the node, plus the shards it
    just gained and must reload from the file
    (:meth:`~repro.runtime.store.sqlite.SqliteCatalogStore.refresh_shards`).
``crash``
    Test/drill hook: arm a fault that hard-kills the node process
    (``os._exit``) at the Nth store operation — a genuine mid-batch
    death, exercised by the crash suites and the ops example.
``shutdown``
    Graceful leave; the node releases its workers and closes its store.

**Safety.**  The shared-row strategy keeps cross-process writes
race-free: each offer is routed to exactly one node (seen-set rows are
disjoint), each shard has exactly one owner (cluster rows are disjoint),
and reconciliation totals live in per-node partition rows merged on
read.  Fencing is the store-side epoch check inherited from the thread
cluster — but a node process reads epochs *from the file*, so a zombie
that the coordinator fenced from another process still bounces on its
very next write.  Because a node journals everything until the barrier,
a killed node leaves **zero** bytes of the in-flight batch behind; crash
recovery is: abort survivors, fence, reassign, replay, byte-identical.

Mid-stream, the coordinator's :class:`~repro.runtime.cluster.LoadSkewWatcher`
(when armed) watches per-batch busy-time skew and triggers a load-aware
:meth:`MultiProcessEngine.rebalance` automatically.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.correspondence import CorrespondenceSet
from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.model.products import Product
from repro.obs import get_registry, merge_snapshot
from repro.runtime.cluster import (
    CategoryHinter,
    FencedStoreView,
    LoadSkewWatcher,
    NodeStats,
    ShardCoordinator,
    ShardLease,
    assign_routing_categories,
    partition_offers_by_hint,
    partition_offers_by_node,
)
from repro.runtime.delta import TransportStats
from repro.runtime.engine import EngineSnapshot, IngestReport, SynthesisEngine
from repro.runtime.executors import ShardExecutor
from repro.runtime.sharding import shard_for_category
from repro.runtime.store.sqlite import SqliteCatalogStore
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer
from repro.synthesis.fusion import CentroidValueFusion
from repro.text.tfidf import IncrementalTfIdf

__all__ = [
    "NodeDeadError",
    "NodeVote",
    "ProcessNode",
    "MultiProcessEngine",
]


class NodeDeadError(RuntimeError):
    """A node process died (or stopped answering) mid-conversation."""

    def __init__(self, node_id: str, reason: str) -> None:
        """Record which node failed and how the failure was observed."""
        super().__init__(f"node {node_id!r} is dead: {reason}")
        self.node_id = node_id
        self.reason = reason


@dataclass
class NodeVote:
    """A node's answer to one ``ingest`` message (its barrier vote)."""

    #: Whether the sub-batch was absorbed into the node's journal.
    ready: bool
    #: ``repr`` of the node-side exception when ``ready`` is false.
    error: Optional[str] = None
    #: The node engine's report for the sub-batch (when ready).
    report: Optional[IngestReport] = None
    #: Seconds the node spent in ``engine.ingest`` for this sub-batch.
    busy_seconds: float = 0.0
    #: The node engine's *cumulative* executor-payload accounting.
    transport: TransportStats = field(default_factory=TransportStats)


def _node_main(
    channel: multiprocessing.connection.Connection,
    store_path: str,
    node_id: str,
    num_shards: int,
    epochs: Dict[int, int],
    engine_kwargs: Dict[str, object],
    inherited_channels: Sequence[multiprocessing.connection.Connection] = (),
) -> None:
    """Entry point of one node process: serve protocol messages forever.

    The node owns a private store connection + mirror over the shared
    WAL file, partitioned under its node id, and a private
    :class:`~repro.runtime.engine.SynthesisEngine` writing through a
    :class:`~repro.runtime.cluster.FencedStoreView` with deferred
    commits — the flush happens only on an explicit ``commit`` message.
    A vanished coordinator (``EOFError``) means exit *without* flushing:
    whatever the journal holds was never barrier-committed.

    ``inherited_channels`` are the coordinator-side pipe ends of the
    *other* nodes that a fork-started child inherits: they are closed
    immediately, because a sibling holding a duplicate write end would
    keep every node's pipe open after a coordinator hard crash — no
    node would ever see the EOF that tells it to exit.
    """
    for sibling_channel in inherited_channels:
        try:
            sibling_channel.close()
        except OSError:  # pragma: no cover - already closed
            pass
    store = SqliteCatalogStore(store_path, partition=node_id)
    store.bind(num_shards)
    lease = ShardLease(node_id=node_id, epochs=dict(epochs))
    view = FencedStoreView(store, lease, deferred_commit=True)
    engine = SynthesisEngine(num_shards=num_shards, store=view, **engine_kwargs)
    # Offers retained from a hint-routing ``classify`` round, position-
    # tagged; the following ``apply`` merges them with incoming
    # misroutes and ingests.  An ``abort`` discards them with the
    # journal.
    classify_buffer: List[Tuple[int, Offer]] = []

    def ingest_vote(sub_batch: Sequence[Offer]) -> NodeVote:
        """Ingest one routed sub-batch and build the vote reply."""
        started = time.perf_counter()
        try:
            report = engine.ingest(sub_batch)
        except Exception as exc:  # noqa: BLE001 - shipped to coordinator
            return NodeVote(
                ready=False,
                error=repr(exc),
                busy_seconds=time.perf_counter() - started,
                transport=engine.transport_stats(),
            )
        return NodeVote(
            ready=True,
            report=report,
            busy_seconds=time.perf_counter() - started,
            transport=engine.transport_stats(),
        )

    try:
        while True:
            kind, payload = channel.recv()
            if kind == "ingest":
                channel.send(("vote", ingest_vote(payload)))
            elif kind == "classify":
                started = time.perf_counter()
                try:
                    positioned = payload["offers"]
                    assignment = payload["assignment"]
                    fallback = payload["fallback"]
                    categorised = engine.classify_offers(
                        [offer for _, offer in positioned]
                    )
                    owned: List[Tuple[int, Offer]] = []
                    outgoing: Dict[str, List[Tuple[int, Offer]]] = {}
                    for (position, _), offer in zip(positioned, categorised):
                        if offer.category_id is None:
                            destination = fallback
                        else:
                            destination = assignment[
                                shard_for_category(offer.category_id, num_shards)
                            ]
                        if destination == node_id:
                            owned.append((position, offer))
                        else:
                            outgoing.setdefault(destination, []).append(
                                (position, offer)
                            )
                except Exception as exc:  # noqa: BLE001 - shipped to coordinator
                    classify_buffer = []
                    channel.send(("classify-error", repr(exc)))
                else:
                    classify_buffer = owned
                    channel.send(
                        (
                            "classified",
                            {
                                "outgoing": outgoing,
                                "busy_seconds": time.perf_counter() - started,
                            },
                        )
                    )
            elif kind == "apply":
                merged = classify_buffer + list(payload["incoming"])
                classify_buffer = []
                merged.sort(key=lambda item: item[0])
                channel.send(("vote", ingest_vote([offer for _, offer in merged])))
            elif kind == "commit":
                try:
                    view.validate_lease()
                    store.commit()
                except Exception as exc:  # noqa: BLE001 - shipped to coordinator
                    channel.send(("commit-error", repr(exc)))
                else:
                    channel.send(("committed", None))
            elif kind == "abort":
                store.rollback()
                classify_buffer = []
                channel.send(("aborted", None))
            elif kind == "lease":
                lease.epochs.clear()
                lease.epochs.update(payload["epochs"])
                store.refresh_shards(payload["refresh"])
                channel.send(("lease-ok", None))
            elif kind == "stats":
                # The node's whole registry snapshot (engine counters,
                # spans, its store series, the bridged transport stats)
                # rides the pipe back; the coordinator folds the live
                # nodes' fragments into one fleet view with
                # merge_snapshot (counters sum across processes).
                channel.send(("stats", get_registry().snapshot()))
            elif kind == "crash":
                _arm_fault(
                    store,
                    payload["operation"],
                    payload["countdown"],
                    payload.get("hard", True),
                )
                channel.send(("crash-armed", None))
            elif kind == "shutdown":
                engine.release_workers()
                store.close()
                channel.send(("bye", None))
                return
            else:  # pragma: no cover - protocol misuse guard
                channel.send(("error", f"unknown message kind {kind!r}"))
    except (EOFError, OSError, KeyboardInterrupt):
        # The coordinator went away: exit without flushing anything.
        engine.release_workers()


def _arm_fault(
    store: SqliteCatalogStore, operation: str, countdown: int, hard: bool
) -> None:
    """Install a fault hook that fails this node at the Nth store op.

    ``hard=True`` hard-kills the process with ``os._exit`` — no journal
    flush, no reply, no cleanup — a genuine mid-batch death.
    ``hard=False`` raises instead (one-shot): the process survives, its
    engine fails mid-ingest, and the node votes not-ready — the
    alive-but-failed path whose partial journal the coordinator must
    abort.
    """
    remaining = {"count": countdown}

    def hook(name: str) -> None:
        """Fail (hard or soft) at the armed store operation."""
        if name != operation:
            return
        remaining["count"] -= 1
        if remaining["count"] == 0:
            if hard:
                os._exit(17)
            store.set_fault_hook(None)
            raise RuntimeError(f"injected node fault at {operation}")

    store.set_fault_hook(hook)


def _start_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing start method for node processes.

    ``fork`` when the platform offers it: node processes inherit the
    pipeline components (catalog, classifier, extractor) without
    pickling them.  Elsewhere ``spawn`` is used and those components
    must be picklable.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessNode:
    """Coordinator-side handle of one node process.

    Owns the process object and the coordinator's end of the pipe, plus
    the routing/timing accounting the facade reports.  All protocol I/O
    funnels through :meth:`send` / :meth:`recv`, which translate a dead
    or silent process into :class:`NodeDeadError`.  Each message
    travels as one explicitly pickled frame, and every frame and its
    payload bytes are counted into ``pipe_stats`` — the engine-level
    :class:`~repro.runtime.delta.TransportStats` that makes the pipe
    protocol's cost measurable (and regressions visible).
    """

    def __init__(
        self,
        node_id: str,
        lease: ShardLease,
        store_path: str,
        num_shards: int,
        engine_kwargs: Dict[str, object],
        context: multiprocessing.context.BaseContext,
        timeout: float,
        sibling_channels: Sequence[multiprocessing.connection.Connection] = (),
        pipe_stats: Optional[TransportStats] = None,
    ) -> None:
        """Spawn the node process with its initial lease epochs.

        ``sibling_channels`` — the coordinator-side pipe ends of nodes
        that already exist — travel to the child only so it can close
        its inherited duplicates (see :func:`_node_main`).
        ``pipe_stats`` is the frame-accounting sink, usually shared by
        every node of one engine; a private one is made when omitted.
        """
        self.node_id = node_id
        self.lease = lease
        self.offers_routed = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.transport = TransportStats()
        self.pipe_stats = pipe_stats if pipe_stats is not None else TransportStats()
        self._timeout = timeout
        parent_end, child_end = context.Pipe(duplex=True)
        self._channel = parent_end
        # The child closes every coordinator-side duplicate it inherits:
        # the siblings' parent ends AND its own (created before the
        # fork) — any one left open would mask the EOF that tells nodes
        # a crashed coordinator is gone.
        self._process = context.Process(
            target=_node_main,
            args=(
                child_end,
                store_path,
                node_id,
                num_shards,
                dict(lease.epochs),
                engine_kwargs,
                list(sibling_channels) + [parent_end],
            ),
            name=f"repro-{node_id}",
            daemon=True,
        )
        self._process.start()
        child_end.close()

    @property
    def channel(self) -> multiprocessing.connection.Connection:
        """The coordinator-side end of this node's pipe."""
        return self._channel

    def alive(self) -> bool:
        """Whether the node process is currently running."""
        return self._process.is_alive()

    @property
    def pid(self) -> Optional[int]:
        """OS process id of the node (``None`` before start)."""
        return self._process.pid

    def send(self, kind: str, payload: object = None) -> None:
        """Ship one protocol message as one pickled frame.

        The whole message is serialized here (highest pickle protocol)
        and written with ``send_bytes`` — a single frame whose size is
        known and counted, rather than whatever the connection's
        implicit pickler produces.  Raises :class:`NodeDeadError` when
        the process is gone.
        """
        frame = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
        try:
            self._channel.send_bytes(frame)
        except (BrokenPipeError, OSError) as exc:
            raise NodeDeadError(self.node_id, f"send failed: {exc!r}") from exc
        self.pipe_stats.frames_sent += 1
        self.pipe_stats.frame_bytes_sent += len(frame)

    def recv(self) -> Tuple[str, object]:
        """Await one reply frame; raises :class:`NodeDeadError` on death/timeout."""
        try:
            if not self._channel.poll(self._timeout):
                raise NodeDeadError(
                    self.node_id, f"no reply within {self._timeout:.0f}s"
                )
            frame = self._channel.recv_bytes()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError) as exc:
            raise NodeDeadError(self.node_id, f"connection lost: {exc!r}") from exc
        self.pipe_stats.frames_received += 1
        self.pipe_stats.frame_bytes_received += len(frame)
        return pickle.loads(frame)

    def request(self, kind: str, payload: object = None) -> object:
        """Send one message and await its reply, checking the reply kind.

        Error replies (``commit-error`` and friends) surface as
        :class:`RuntimeError`; transport failures as
        :class:`NodeDeadError`.
        """
        self.send(kind, payload)
        reply_kind, reply = self.recv()
        if reply_kind.endswith("-error") or reply_kind == "error":
            raise RuntimeError(f"node {self.node_id!r} answered {reply_kind}: {reply}")
        return reply

    def kill(self) -> None:
        """SIGKILL the node process (crash simulation; no bookkeeping)."""
        self._process.kill()
        self._process.join(timeout=10)

    def destroy(self) -> None:
        """Tear the handle down: close the pipe, terminate, reap."""
        try:
            self._channel.close()
        except OSError:  # pragma: no cover - already gone
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=10)


@dataclass
class _CommitWindow:
    """An in-flight pipelined commit round (batch N's barrier).

    Held by the coordinator between the fire-and-forget ``commit``
    fan-out and the ack collection at the next ingest (or any view /
    membership call).  ``offers`` keeps the batch's fresh offers so a
    node death discovered at the drain can be replayed precisely.
    """

    node_ids: List[str]
    offers: List[Offer]


class MultiProcessEngine:
    """N synthesis engines in N OS processes over one shared WAL store.

    The multi-*process* sibling of
    :class:`~repro.runtime.cluster.MultiNodeEngine`, with the same
    ``ingest`` / ``products`` / ``snapshot`` facade and the same
    byte-identity contract against a single engine.  Differences:

    * a durable shared store is **required** (``store_path``): the WAL
      file is the only state the processes share;
    * each node runs a private engine + store connection in its own
      process — no shared mirror, no cluster lock, true multi-core
      ingest;
    * the commit barrier is a vote/commit message round instead of one
      in-process flush, preceded by a durable *commit intent* in the
      shared file.  A node that dies before voting costs nothing (its
      journal dies with it); recovery aborts the survivors, fences the
      dead node and replays the batch.  A failure *during* the commit
      round (after some nodes flushed) is replayed from the intent when
      ``auto_recover`` holds — only the offers the file does not already
      hold are re-dispatched — and a coordinator crash at that point
      leaves the intent behind for the next cluster opened over the
      same store path to replay on startup.

    Parameters mirror :class:`~repro.runtime.cluster.MultiNodeEngine`
    where they overlap; the process-specific ones:

    node_executor:
        Executor of the engine *inside* each node process: ``"serial"``
        (default — the node processes themselves are the parallelism)
        or ``"thread"``.  ``"process"`` is rejected with
        :class:`ValueError`: node processes are daemonic and cannot
        spawn worker-pool children.
    node_timeout:
        Seconds to wait for a node's reply before declaring it dead.
    pipeline_depth:
        ``1`` (default) waits for every commit ack before ``ingest``
        returns — today's semantics.  ``2`` pipelines: ``ingest``
        returns once the nodes voted and the commit was sent, and the
        acks are collected at the start of the *next* ingest — so batch
        N's node-side SQLite flushes overlap batch N+1's coordinator-
        side dedup and routing.  Any view or membership call first
        drains the open window (:meth:`flush`), so reads always observe
        fully committed state and products stay byte-identical.
    hint_routing:
        Route each batch on a cheap :class:`~repro.runtime.cluster.CategoryHinter`
        guess and run the real per-offer classification on the nodes,
        in parallel, instead of on the coordinator (the dominant serial
        routing cost).  Misrouted offers are re-shipped to their true
        owner before ingest with their batch positions, so per-node
        order — and every output byte — matches coordinator routing.
    """

    def __init__(
        self,
        catalog: Catalog,
        correspondences: CorrespondenceSet,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_classifier: Optional[TitleCategoryClassifier] = None,
        clusterer: Optional[KeyAttributeClusterer] = None,
        fusion: Optional[CentroidValueFusion] = None,
        min_cluster_size: int = 1,
        num_nodes: int = 2,
        num_shards: int = 8,
        node_executor: Union[str, ShardExecutor, None] = "serial",
        max_workers: Optional[int] = None,
        track_category_statistics: bool = True,
        store_path: Optional[str] = None,
        delta_refusion: Optional[bool] = None,
        auto_recover: bool = True,
        auto_rebalance_skew: Optional[float] = None,
        auto_rebalance_patience: int = 2,
        node_timeout: float = 300.0,
        pipeline_depth: int = 1,
        hint_routing: bool = False,
    ) -> None:
        """Open the shared store, compute the layout, spawn the nodes.

        Replays a pending commit intent (a previous coordinator died
        mid-barrier over this store path) before returning, so the
        resumed catalog equals an uninterrupted run's.
        """
        if num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if pipeline_depth not in (1, 2):
            raise ValueError(f"pipeline_depth must be 1 or 2, got {pipeline_depth}")
        if store_path is None:
            raise ValueError(
                "MultiProcessEngine requires store_path: the shared WAL "
                "file is the only state its node processes have in common"
            )
        if isinstance(node_executor, str) and node_executor not in ("serial", "thread"):
            raise ValueError(
                f"node_executor {node_executor!r} is not usable inside a node "
                "process: nodes run as daemonic children, which cannot spawn "
                "worker-pool processes of their own — use 'serial' or 'thread'"
            )
        if getattr(node_executor, "supports_pinning", False):
            raise ValueError(
                "a process-pool executor cannot run inside a node process "
                "(daemonic children cannot spawn workers); use 'serial' or 'thread'"
            )
        self._classifier = category_classifier
        self._num_shards = num_shards
        self._engine_kwargs: Dict[str, object] = dict(
            catalog=catalog,
            correspondences=correspondences,
            extractor=extractor,
            category_classifier=category_classifier,
            clusterer=clusterer,
            fusion=fusion,
            min_cluster_size=min_cluster_size,
            executor=node_executor,
            max_workers=max_workers,
            track_category_statistics=track_category_statistics,
            delta_refusion=delta_refusion,
        )
        self._context = _start_context()
        self._timeout = node_timeout
        self._auto_recover = auto_recover
        self._skew_watcher: Optional[LoadSkewWatcher] = None
        if auto_rebalance_skew is not None:
            self._skew_watcher = LoadSkewWatcher(
                threshold=auto_rebalance_skew, patience=auto_rebalance_patience
            )
        # The coordinator's own connection: epochs (authoritative writer),
        # the initial restore, and the refresh-on-read view surface.
        self._store = SqliteCatalogStore(store_path)
        self._store_path = self._store.path
        self._store.bind(num_shards)
        self._coordinator = ShardCoordinator(self._store, num_shards)
        self._nodes: Dict[str, ProcessNode] = {}
        self._node_counter = itertools.count(1)
        self._retired_transport = TransportStats()
        self._retired_busy = 0.0
        # Coordinator-side dedup: offers absorbed since the last mirror
        # refresh.  Updated only after a barrier commits, so a recovered
        # or replayed batch is never half-seen; the mirror's own seen
        # set covers everything restored or refreshed from the file.
        self._seen = set()
        self._dirty = False
        self._closed = False
        self._pipeline_depth = pipeline_depth
        self._hint_routing = hint_routing
        self._hinter: Optional[CategoryHinter] = None
        # Frame accounting shared by every node handle, plus the batch
        # sequence for commit intents, the open pipelined commit window,
        # and the coordinator's serial-overhead split for the bench.
        self._pipe_stats = TransportStats()
        self._batch_counter = itertools.count(1)
        self._window: Optional[_CommitWindow] = None
        self._routing_seconds = 0.0
        self._barrier_seconds = 0.0
        # Observability: the coordinator bridges its own accounting
        # (pipe frames + retired nodes) plus the *cached* node-process
        # fragments fetched by node_metrics() — a scrape must never talk
        # to the node processes, so the cache is only as fresh as the
        # last explicit fetch.
        registry = get_registry()
        self._obs = registry
        self._obs_cluster_batches = registry.counter(
            "cluster_batches_total",
            help="Micro-batches absorbed by cluster coordinators.",
        )
        self._node_metrics: Dict[str, object] = {}
        cluster_ref = weakref.ref(self)

        def _coordinator_provider() -> Dict[str, object]:
            cluster = cluster_ref()
            if cluster is None:
                return {}
            stats = TransportStats()
            stats.merge(cluster._retired_transport)
            stats.merge(cluster._pipe_stats)
            fragment = stats.metrics_fragment()
            merge_snapshot(fragment, cluster._node_metrics)
            return fragment

        self._obs_provider = registry.add_provider(_coordinator_provider)
        registry.gauge(
            "cluster_routing_seconds",
            help="Coordinator time spent deduplicating and routing batches.",
            callback=lambda: (lambda c: 0.0 if c is None else c._routing_seconds)(
                cluster_ref()
            ),
        )
        registry.gauge(
            "cluster_barrier_wait_seconds",
            help="Coordinator time spent waiting on commit barriers.",
            callback=lambda: (lambda c: 0.0 if c is None else c._barrier_seconds)(
                cluster_ref()
            ),
        )
        registry.gauge(
            "cluster_nodes",
            help="Live cluster members.",
            callback=lambda: (lambda c: 0 if c is None else len(c._nodes))(cluster_ref()),
        )
        # One layout pass for the whole initial membership, then spawn
        # each node with its final epochs.
        node_ids = [f"node-{next(self._node_counter)}" for _ in range(num_nodes)]
        for node_id in node_ids:
            self._coordinator.register_node(node_id, rebalance=False)
        self._coordinator.apply_layout()
        for node_id in node_ids:
            self._spawn(node_id)
        pending = self._store.pending_commit_intent()
        if pending is not None:
            # A previous coordinator died between vote and barrier; its
            # intent names the batch.  Replay is idempotent — only the
            # offers absent from the file are re-dispatched.
            self._replay_offers(pickle.loads(pending[1]))

    def _spawn(self, node_id: str) -> ProcessNode:
        """Start the node process for an already-registered lease."""
        node = ProcessNode(
            node_id=node_id,
            lease=self._coordinator.lease_for(node_id),
            store_path=self._store_path,
            num_shards=self._num_shards,
            engine_kwargs=self._engine_kwargs,
            context=self._context,
            timeout=self._timeout,
            sibling_channels=[peer.channel for peer in self._nodes.values()],
            pipe_stats=self._pipe_stats,
        )
        self._nodes[node_id] = node
        return node

    # -- membership ------------------------------------------------------------

    def node_ids(self) -> List[str]:
        """Ids of the live cluster members, ascending."""
        return sorted(self._nodes)

    @property
    def coordinator(self) -> ShardCoordinator:
        """The shard coordinator (assignment and fencing authority)."""
        return self._coordinator

    @property
    def store(self) -> SqliteCatalogStore:
        """The coordinator's connection to the shared WAL store."""
        return self._store

    @property
    def skew_watcher(self) -> Optional[LoadSkewWatcher]:
        """The automatic-rebalance trigger, or ``None`` when manual."""
        return self._skew_watcher

    def _push_leases(self, before: Dict[int, str], exclude: Optional[str] = None) -> List[str]:
        """Push post-layout-change leases (and refresh lists) to nodes.

        ``before`` is the shard assignment prior to the change; each
        node learns its new epoch map plus which shards it *gained* —
        those it must reload from the file, because their previous
        owner's commits never touched this node's mirror.  ``exclude``
        skips a node that is already current (a freshly spawned joiner
        restored the whole file after the layout change).  Returns the
        ids of nodes that could not be reached — the caller fences them
        (:meth:`_fence_unreachable`) instead of aborting half-way
        through a layout change.
        """
        after = self._coordinator.assignment()
        dead: List[str] = []
        for node_id, node in sorted(self._nodes.items()):
            if node_id == exclude:
                continue
            gained = [
                shard
                for shard, owner in after.items()
                if owner == node_id and before.get(shard) != node_id
            ]
            try:
                node.request(
                    "lease",
                    {"epochs": dict(node.lease.epochs), "refresh": sorted(gained)},
                )
            except NodeDeadError:
                dead.append(node_id)
        return dead

    def _fence_unreachable(self, pending: List[str]) -> None:
        """Fence every listed node, cascading onto newly found corpses.

        Each fence reassigns shards and pushes fresh leases; a lease
        push can itself discover another dead node, which joins the
        queue — so one call settles the membership no matter how many
        nodes died together.  Raises ``RuntimeError`` if fencing would
        remove the last member.
        """
        queue = list(pending)
        while queue:
            target = queue.pop(0)
            if target not in self._nodes:
                continue
            node = self._retire(target)
            before = self._coordinator.assignment()
            self._coordinator.retire_node(target, fence=True)
            node.destroy()
            queue.extend(self._push_leases(before))

    def add_node(self, node_id: Optional[str] = None) -> str:
        """Join a node process: rebalance, re-fence, spawn, resync.

        The fresh process restores the *entire* committed state from the
        WAL file at startup, so the shards it gains need no transfer;
        the surviving nodes just learn their shrunken leases.
        """
        self._ensure_open()
        self._drain_window()
        if node_id is None:
            node_id = f"node-{next(self._node_counter)}"
        before = self._coordinator.assignment()
        self._coordinator.register_node(node_id)
        self._spawn(node_id)
        # The newcomer restored from the file *after* the epochs were
        # bumped, so it is already current.  The survivors resync: the
        # modulo layout can move shards *between* survivors on a join
        # (shard i -> node i mod N reshuffles most owners), and a
        # survivor's mirror has never seen what another node committed
        # into a shard it just gained.
        self._fence_unreachable(self._push_leases(before, exclude=node_id))
        return node_id

    def _retire(self, node_id: str) -> ProcessNode:
        """Drop a member from the books (shared by leave/fence paths)."""
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not a cluster member")
        if len(self._nodes) == 1:
            raise RuntimeError(
                f"cannot retire {node_id!r}: it is the last node of the cluster"
            )
        node = self._nodes.pop(node_id)
        self._retired_transport.merge(node.transport)
        self._retired_busy += node.busy_seconds
        return node

    def remove_node(self, node_id: str) -> None:
        """Gracefully leave: shut the process down, reassign, resync.

        Between barriers the node's journal is empty and everything it
        produced is committed in the shared file, so the handoff is pure
        bookkeeping: fresh epochs for its shards and a ``lease`` message
        telling each new owner which shards to reload.  A node that does
        not acknowledge the shutdown is not trusted to be quiescent:
        removal then degrades to the fence path (stale lease, store-side
        write rejection), exactly as :meth:`fence_node`.
        """
        self._ensure_open()
        self._drain_window()
        node = self._retire(node_id)
        graceful = True
        try:
            node.request("shutdown")
        except (NodeDeadError, RuntimeError):
            graceful = False
        node.destroy()
        before = self._coordinator.assignment()
        self._coordinator.retire_node(node_id, fence=not graceful)
        self._fence_unreachable(self._push_leases(before))

    def fence_node(self, node_id: str) -> None:
        """Forcibly fence a node: epochs first, then kill the process.

        The epoch bumps are durable and immediate (coordinator store),
        so even a zombie that somehow survives the terminate cannot
        commit — its next write reads the advanced epoch from the file
        and raises :class:`~repro.runtime.state.StaleEpochError`.
        Cascades: another node found dead while the new leases are
        pushed is fenced in the same call.
        """
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not a cluster member")
        # Drain first: surviving nodes must not have a commit ack in
        # flight when the fence's lease pushes expect lease replies.  If
        # the drain's own recovery already fenced the target, the fence
        # below is a no-op.
        self._drain_window()
        self._fence_unreachable([node_id])

    def kill_node(self, node_id: str) -> None:
        """SIGKILL a node process *without* any coordinator bookkeeping.

        Crash simulation for tests and drills: the membership still
        lists the node, and the next :meth:`ingest` discovers the death
        and runs the real recovery path.
        """
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not a cluster member")
        self._nodes[node_id].kill()

    def inject_crash(
        self, node_id: str, operation: str, countdown: int = 1, hard: bool = True
    ) -> None:
        """Arm a mid-batch node failure (tests/drills).

        The node fails at the ``countdown``-th occurrence of the named
        store operation (``"append_offers"``, ``"mark_seen"``,
        ``"set_product"``, ``"commit"``) during a later ingest.
        ``hard=True`` (default) hard-exits the process (``os._exit``) —
        a genuine kill at a precise point in the write path;
        ``hard=False`` raises inside the node instead, so it survives
        and votes not-ready (the alive-but-failed recovery path).
        """
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} is not a cluster member")
        self._drain_window()
        self._nodes[node_id].request(
            "crash", {"operation": operation, "countdown": countdown, "hard": hard}
        )

    def rebalance(self, loads: Optional[Dict[int, float]] = None) -> Dict[int, str]:
        """Reassign shards by load between batches; returns the layout.

        ``loads=None`` reads observed load (offers held per shard) from
        the shared file — the coordinator refreshes its mirror first, so
        the measurement includes everything the nodes committed.  Moved
        shards are re-fenced and their new owners reload them from the
        file, exactly like a membership handoff.
        """
        self._ensure_open()
        self._drain_window()
        if loads is None:
            self._refresh_if_dirty()
            loads = {}
            for _, state in self._store.iter_clusters():
                loads[state.shard_index] = loads.get(state.shard_index, 0.0) + state.size()
        before = self._coordinator.assignment()
        layout = self._coordinator.rebalance_by_load(loads)
        self._fence_unreachable(self._push_leases(before))
        return layout

    # -- routing ---------------------------------------------------------------

    def _route_categories(self, offers: Sequence[Offer]) -> List[Offer]:
        """Assign categories for routing (one classification per offer)."""
        return assign_routing_categories(offers, self._classifier)

    def _partition(self, categorised: Sequence[Offer]) -> Dict[str, List[Offer]]:
        """Group offers by owning node, preserving stream order per node."""
        return partition_offers_by_node(
            categorised,
            self._num_shards,
            self._coordinator.node_for_shard,
            fallback_node_id=self.node_ids()[0],
        )

    # -- ingest ----------------------------------------------------------------

    def _ensure_open(self) -> None:
        """Refuse API calls after :meth:`close` or a closed store."""
        if self._closed or self._store.closed:
            raise RuntimeError(
                "cannot use this multi-process cluster: it is closed "
                "(reopen the store path with a new cluster to resume)"
            )

    def ingest(self, offers: Sequence[Offer]) -> IngestReport:
        """Absorb one micro-batch across the node processes.

        Same contract as the single engine's ``ingest``: idempotent per
        offer id, one commit barrier per batch.  A node that dies
        before voting (killed, crashed, engine error) triggers recovery
        when ``auto_recover`` holds: survivors abort (journals dropped,
        mirrors rebuilt from the last barrier), the dead node is fenced,
        and the batch replays on the new layout — products stay
        byte-identical to an uninterrupted run.  A failure *at* the
        barrier replays from the durable commit intent (only what the
        file does not hold).  Raises the node-side error when recovery
        is disabled or impossible.

        With ``pipeline_depth=2`` the previous batch's commit acks are
        collected here, *after* this batch's dedup and routing — the
        overlap that hides the coordinator's serial work behind the
        nodes' flushes.
        """
        self._ensure_open()
        report = IngestReport(offers_in_batch=len(offers))
        routing_started = time.perf_counter()
        fresh: List[Offer] = []
        batch_ids = set()
        for offer in offers:
            if (
                offer.offer_id in self._seen
                or offer.offer_id in batch_ids
                or self._store.is_seen(offer.offer_id)
            ):
                continue
            batch_ids.add(offer.offer_id)
            fresh.append(offer)
        report.offers_duplicate = report.offers_in_batch - len(fresh)
        self._routing_seconds += time.perf_counter() - routing_started
        if not fresh:
            return report

        categorised: Optional[List[Offer]] = None
        if not self._hint_routing:
            # Classify before draining the previous batch's commit
            # window: this is the pipelining overlap — the per-offer
            # classification sweep runs while the nodes flush.  (In
            # hint mode there is nothing heavy to overlap here; the
            # partition is a dict lookup per offer and classification
            # itself runs on the nodes.)
            routing_started = time.perf_counter()
            with self._obs.span("cluster.route"):
                categorised = self._route_categories(fresh)
            self._routing_seconds += time.perf_counter() - routing_started
        self._drain_window()
        votes = self._dispatch_with_retry(fresh, categorised)

        aggregate = IngestReport()
        for _, vote in sorted(votes.items()):
            aggregate.merge(vote.report)
        report.offers_new = aggregate.offers_new
        report.offers_duplicate += aggregate.offers_duplicate
        report.offers_clustered = aggregate.offers_clustered
        report.offers_without_key = aggregate.offers_without_key
        report.offers_uncategorised = aggregate.offers_uncategorised
        report.clusters_touched = aggregate.clusters_touched
        report.products_refreshed = aggregate.products_refreshed
        self._commit_phase(sorted(votes), fresh)
        self._obs_cluster_batches.inc()
        self._seen.update(offer.offer_id for offer in fresh)
        self._dirty = True
        if self._skew_watcher is not None:
            busy = {node_id: 0.0 for node_id in self._nodes}
            busy.update({node_id: vote.busy_seconds for node_id, vote in votes.items()})
            if self._skew_watcher.observe(busy):
                self.rebalance()
        return report

    def _dispatch_with_retry(
        self, fresh: Sequence[Offer], categorised: Optional[List[Offer]] = None
    ) -> Dict[str, NodeVote]:
        """Dispatch one batch, fencing and re-dispatching on node death.

        ``categorised`` carries a pre-computed classification (the
        pipelined overlap); it stays valid across retries because
        classification does not depend on the layout — only the
        partition is recomputed against the post-fence assignment.
        """
        attempts = 0
        max_attempts = len(self._nodes) + 1
        while True:
            try:
                if self._hint_routing:
                    return self._dispatch_hint(fresh)
                if categorised is None:
                    routing_started = time.perf_counter()
                    categorised = self._route_categories(fresh)
                    self._routing_seconds += time.perf_counter() - routing_started
                return self._dispatch_batch(self._partition(categorised))
            except _BatchFailure as failure:
                attempts += 1
                if (
                    not self._auto_recover
                    or len(self._nodes) <= 1
                    or attempts >= max_attempts
                ):
                    raise failure.cause
                self.fence_node(failure.node_id)

    def _abort_answered(
        self, answered: List[str], failures: Dict[str, BaseException]
    ) -> None:
        """Roll every answering journal (and classify buffer) back.

        Ready voters and failed-but-alive nodes alike: a node whose
        engine raised mid-ingest holds a *partial* journal; left in
        place it would flush half-processed offers at the next barrier
        (or survive a caller retry with auto_recover off).
        """
        for node_id in answered:
            try:
                self._nodes[node_id].request("abort")
            except NodeDeadError as exc:
                failures.setdefault(node_id, exc)

    def _dispatch_batch(self, routed: Dict[str, List[Offer]]) -> Dict[str, NodeVote]:
        """One dispatch wave: fan out sub-batches, collect votes.

        Returns the ready votes by node id on success.  On any node
        failure the survivors' journals are aborted and
        :class:`_BatchFailure` carries the first failed node (id order)
        for the recovery loop.  All sends go out before any receive, so
        the node processes genuinely overlap.
        """
        ordered = [(node_id, routed[node_id]) for node_id in sorted(routed)]
        failures: Dict[str, BaseException] = {}
        dispatched: List[str] = []
        for node_id, sub_batch in ordered:
            try:
                self._nodes[node_id].send("ingest", sub_batch)
                dispatched.append(node_id)
            except NodeDeadError as exc:
                failures[node_id] = exc
        votes: Dict[str, NodeVote] = {}
        answered: List[str] = []
        for node_id in dispatched:
            node = self._nodes[node_id]
            try:
                kind, vote = node.recv()
            except NodeDeadError as exc:
                failures[node_id] = exc
                continue
            answered.append(node_id)
            if kind != "vote":  # pragma: no cover - protocol guard
                failures[node_id] = RuntimeError(
                    f"node {node_id!r} answered {kind!r} to an ingest"
                )
                continue
            node.busy_seconds += vote.busy_seconds
            node.transport = vote.transport
            if vote.ready:
                votes[node_id] = vote
            else:
                failures[node_id] = RuntimeError(
                    f"node {node_id!r} failed mid-batch: {vote.error}"
                )
        if failures:
            self._abort_answered(answered, failures)
            first = sorted(failures)[0]
            raise _BatchFailure(first, failures[first])
        for node_id, sub_batch in ordered:
            node = self._nodes[node_id]
            node.offers_routed += len(sub_batch)
            node.batches += 1
        return votes

    def _dispatch_hint(self, fresh: Sequence[Offer]) -> Dict[str, NodeVote]:
        """Hint-routed dispatch: nodes classify, misroutes re-ship, owners apply.

        Two message rounds instead of one.  ``classify`` ships each
        hinted, position-tagged sub-batch (plus the shard assignment)
        to its guessed owner, which runs the real classifier and
        answers with the offers that belong elsewhere.  ``apply`` then
        delivers every misroute to its true owner, which merges its
        retained offers with the incoming ones in original batch order
        and ingests.  The per-offer classification sweep — the dominant
        serial cost of coordinator routing — thus runs on all nodes in
        parallel, and only misrouted offers cross the pipes twice.
        """
        if any(offer.category_id is None for offer in fresh) and (
            self._classifier is None or not self._classifier.is_trained
        ):
            # Same error contract as assign_routing_categories, checked
            # up front so no node sees a doomed batch.
            raise ValueError(
                "offers without a category require a trained category classifier"
            )
        if self._hinter is None:
            self._hinter = CategoryHinter.from_classifier(self._classifier)
        routing_started = time.perf_counter()
        fallback = self.node_ids()[0]
        hinted = partition_offers_by_hint(
            fresh, self._num_shards, self._coordinator.node_for_shard, fallback, self._hinter
        )
        # Every fresh offer is hint-routed; with the misroute counter
        # below this feeds the hint_accuracy gauge.
        self._pipe_stats.hinted_offers += len(fresh)
        assignment = {
            shard: self._coordinator.node_for_shard(shard)
            for shard in range(self._num_shards)
        }
        self._routing_seconds += time.perf_counter() - routing_started
        failures: Dict[str, BaseException] = {}
        dispatched: List[str] = []
        for node_id in sorted(hinted):
            try:
                self._nodes[node_id].send(
                    "classify",
                    {
                        "offers": hinted[node_id],
                        "assignment": assignment,
                        "fallback": fallback,
                    },
                )
                dispatched.append(node_id)
            except NodeDeadError as exc:
                failures[node_id] = exc
        answered: List[str] = []
        incoming: Dict[str, List[Tuple[int, Offer]]] = {}
        owned_counts: Dict[str, int] = {}
        for node_id in dispatched:
            node = self._nodes[node_id]
            try:
                kind, payload = node.recv()
            except NodeDeadError as exc:
                failures[node_id] = exc
                continue
            answered.append(node_id)
            if kind != "classified":
                failures[node_id] = RuntimeError(
                    f"node {node_id!r} answered {kind!r} to a classify"
                )
                continue
            node.busy_seconds += payload["busy_seconds"]
            moved = 0
            for destination, items in payload["outgoing"].items():
                incoming.setdefault(destination, []).extend(items)
                moved += len(items)
            self._pipe_stats.misrouted_offers += moved
            owned_counts[node_id] = len(hinted[node_id]) - moved
        if failures:
            self._abort_answered(answered, failures)
            first = sorted(failures)[0]
            raise _BatchFailure(first, failures[first])
        targets = sorted(
            {node_id for node_id, count in owned_counts.items() if count}
            | set(incoming)
        )
        routed_counts: Dict[str, int] = {}
        dispatched = []
        for node_id in targets:
            items = sorted(incoming.get(node_id, ()), key=lambda item: item[0])
            routed_counts[node_id] = owned_counts.get(node_id, 0) + len(items)
            try:
                self._nodes[node_id].send("apply", {"incoming": items})
                dispatched.append(node_id)
            except NodeDeadError as exc:
                failures[node_id] = exc
        votes: Dict[str, NodeVote] = {}
        answered = []
        for node_id in dispatched:
            node = self._nodes[node_id]
            try:
                kind, vote = node.recv()
            except NodeDeadError as exc:
                failures[node_id] = exc
                continue
            answered.append(node_id)
            if kind != "vote":  # pragma: no cover - protocol guard
                failures[node_id] = RuntimeError(
                    f"node {node_id!r} answered {kind!r} to an apply"
                )
                continue
            node.busy_seconds += vote.busy_seconds
            node.transport = vote.transport
            if vote.ready:
                votes[node_id] = vote
            else:
                failures[node_id] = RuntimeError(
                    f"node {node_id!r} failed mid-batch: {vote.error}"
                )
        if failures:
            self._abort_answered(answered, failures)
            first = sorted(failures)[0]
            raise _BatchFailure(first, failures[first])
        for node_id in targets:
            node = self._nodes[node_id]
            node.offers_routed += routed_counts[node_id]
            node.batches += 1
        return votes

    # -- commit barrier --------------------------------------------------------

    def _commit_phase(self, node_ids: List[str], fresh: Sequence[Offer]) -> None:
        """Phase two: record the intent, then flush the voters' journals.

        The intent — the batch's fresh offers, pickled into the shared
        store *before* any node flushes — is what turns a mid-barrier
        death (node or coordinator) from a fatal partway state into a
        replayable one.  At ``pipeline_depth=1`` the acks are awaited
        here; at 2 the round is left open as the commit window and
        drained at the next ingest.
        """
        sequence = next(self._batch_counter)
        payload = pickle.dumps(list(fresh), protocol=pickle.HIGHEST_PROTOCOL)
        self._store.write_commit_intent(sequence, payload)
        if self._pipeline_depth > 1:
            sent, failed, errors = self._commit_fanout(node_ids)
            if failed:
                more_failed, more_errors = self._collect_commit_acks(sent)
                self._recover_commit(
                    list(fresh), failed + more_failed, errors + more_errors
                )
            else:
                self._window = _CommitWindow(node_ids=sent, offers=list(fresh))
        else:
            self._sync_commit_round(node_ids, list(fresh))

    def _commit_fanout(self, node_ids: List[str]) -> Tuple[List[str], List[str], List[str]]:
        """Send ``commit`` to every voter; returns (sent, failed, errors)."""
        sent: List[str] = []
        failed: List[str] = []
        errors: List[str] = []
        for node_id in sorted(node_ids):
            try:
                self._nodes[node_id].send("commit")
                sent.append(node_id)
            except NodeDeadError as exc:
                failed.append(node_id)
                errors.append(str(exc))
        return sent, failed, errors

    def _collect_commit_acks(self, sent: List[str]) -> Tuple[List[str], List[str]]:
        """Await one commit ack per listed node; returns (failed, errors)."""
        failed: List[str] = []
        errors: List[str] = []
        started = time.perf_counter()
        with self._obs.span("cluster.commit_barrier"):
            for node_id in sent:
                try:
                    kind, payload = self._nodes[node_id].recv()
                except NodeDeadError as exc:
                    failed.append(node_id)
                    errors.append(str(exc))
                    continue
                if kind != "committed":
                    failed.append(node_id)
                    errors.append(f"node {node_id!r}: {payload}")
        self._barrier_seconds += time.perf_counter() - started
        return failed, errors

    def _sync_commit_round(self, node_ids: List[str], offers: List[Offer]) -> None:
        """One full synchronous commit round (fan out + await every ack)."""
        sent, failed, errors = self._commit_fanout(node_ids)
        more_failed, more_errors = self._collect_commit_acks(sent)
        failed += more_failed
        errors += more_errors
        if failed:
            self._recover_commit(offers, failed, errors)
        else:
            self._store.clear_commit_intent()

    def _drain_window(self) -> None:
        """Collect the open commit window's acks (no-op when none is open)."""
        if self._window is None:
            return
        window = self._window
        self._window = None
        failed, errors = self._collect_commit_acks(window.node_ids)
        if failed:
            self._recover_commit(window.offers, failed, errors)
        else:
            self._store.clear_commit_intent()

    def flush(self) -> None:
        """Land the pipelined commit window (no-op when none is open).

        After this returns, every previously ingested batch is durably
        committed in the shared WAL file and its intent is cleared.
        Views and membership operations drain implicitly; an explicit
        flush is only needed before e.g. reading the file from outside.
        """
        self._drain_window()

    def _recover_commit(
        self, offers: List[Offer], failed: List[str], errors: List[str]
    ) -> None:
        """A commit round lost nodes: fence them and replay what is missing.

        Only possible because the batch's intent is already durable and
        every node's flush is one atomic SQLite transaction: after
        fencing, the coordinator refreshes its mirror from the file —
        the only authority on which sub-batches landed — and re-runs
        the batch's *unseen* offers through a normal dispatch + commit.
        Node-side dedup could not replace the refresh: fencing just
        moved shards, and a surviving node's mirror may predate another
        node's flushed sub-batch.
        """
        if not self._auto_recover:
            raise RuntimeError(
                "cluster commit barrier failed partway — the shared store "
                "holds the last fully-voted state of the nodes that "
                "flushed, plus this batch's durable commit intent; reopen "
                "the store path (or keep auto_recover on) to replay it: "
                + "; ".join(errors)
            )
        self._fence_unreachable([node_id for node_id in failed if node_id in self._nodes])
        self._store.refresh()
        self._seen.clear()
        self._dirty = False
        self._replay_offers(offers)

    def _replay_offers(self, offers: Sequence[Offer]) -> None:
        """Re-dispatch and durably commit whichever offers never landed.

        Shared by barrier recovery and the startup replay of a leftover
        intent; idempotent because the store's seen set filters first.
        """
        remainder = [
            offer for offer in offers if not self._store.is_seen(offer.offer_id)
        ]
        if not remainder:
            self._store.clear_commit_intent()
            return
        votes = self._dispatch_with_retry(remainder)
        self._sync_commit_round(sorted(votes), remainder)
        self._seen.update(offer.offer_id for offer in remainder)
        self._dirty = True

    # -- views ----------------------------------------------------------------

    def _refresh_if_dirty(self) -> None:
        """Fold the nodes' barrier commits into the coordinator mirror.

        Once refreshed, the mirror's own seen set covers everything the
        side set accumulated since the last refresh, so the side set is
        dropped — the coordinator never holds the stream's offer ids
        twice for long streams.
        """
        if self._dirty and not self._store.closed:
            self._store.refresh()
            self._dirty = False
            self._seen.clear()

    def products(self) -> List[Product]:
        """All current synthesized products (same order as a single engine)."""
        self._ensure_open()
        self._drain_window()
        self._refresh_if_dirty()
        return self._store.sorted_products()

    def num_clusters(self) -> int:
        """Number of clusters tracked so far (including sub-threshold ones)."""
        self._ensure_open()
        self._drain_window()
        self._refresh_if_dirty()
        return self._store.num_clusters()

    def category_statistics(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The incremental TF-IDF statistics of one category (or ``None``)."""
        self._ensure_open()
        self._drain_window()
        self._refresh_if_dirty()
        return self._store.category_stats(category_id)

    def snapshot(self) -> EngineSnapshot:
        """A consistent summary of everything ingested so far."""
        self._ensure_open()
        self._drain_window()
        self._refresh_if_dirty()
        return EngineSnapshot(
            products=self._store.sorted_products(),
            num_clusters=self._store.num_clusters(),
            offers_ingested=self._store.num_seen(),
            reconciliation_stats=self._store.reconciliation_stats(),
            assigned_categories=self._store.assigned_categories(),
            category_vocabulary=self._store.category_vocabulary(),
        )

    def transport_stats(self) -> TransportStats:
        """Cluster-wide transport accounting: executor payloads + pipe frames."""
        merged = TransportStats()
        merged.merge(self._retired_transport)
        merged.merge(self._pipe_stats)
        for node in self._nodes.values():
            merged.merge(node.transport)
        return merged

    def node_metrics(self) -> Dict[str, object]:
        """Fetch and merge every live node process's metrics snapshot.

        One explicit ``stats`` pipe round per node.  The pipelined
        commit window is drained first so the round can never race a
        pending flush ack, which is also why this runs on demand (the
        benches call it right before ``close``) rather than at scrape
        time: the merged result is cached, and the registry provider
        serves the cache.  Nodes that died since the last layout change
        simply drop out of the merge.
        """
        self._ensure_open()
        self._drain_window()
        merged: Dict[str, object] = {}
        for _, node in sorted(self._nodes.items()):
            try:
                fragment = node.request("stats")
            except (NodeDeadError, RuntimeError):
                continue
            if isinstance(fragment, dict):
                merge_snapshot(merged, fragment)
        self._node_metrics = merged
        return merged

    @property
    def routing_seconds(self) -> float:
        """Coordinator time spent deduplicating, classifying and routing."""
        return self._routing_seconds

    @property
    def barrier_wait_seconds(self) -> float:
        """Coordinator time spent waiting on commit acks."""
        return self._barrier_seconds

    @property
    def coordinator_seconds(self) -> float:
        """Total serial coordinator overhead (routing + barrier waits)."""
        return self._routing_seconds + self._barrier_seconds

    def node_stats(self) -> List[NodeStats]:
        """Per-node routing/timing accounting, in node-id order."""
        return [
            NodeStats(
                node_id=node.node_id,
                shards=node.lease.shards(),
                offers_routed=node.offers_routed,
                batches=node.batches,
                busy_seconds=node.busy_seconds,
            )
            for _, node in sorted(self._nodes.items())
        ]

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut every node process down and close the coordinator store."""
        if self._closed:
            return
        self._closed = True
        self._obs.remove_provider(self._obs_provider)
        try:
            self._drain_window()
        except Exception:  # noqa: BLE001 - teardown proceeds regardless
            # A failed final barrier leaves its durable intent behind;
            # the next cluster opened over this store path replays it.
            pass
        for _, node in sorted(self._nodes.items()):
            try:
                node.request("shutdown")
            except (NodeDeadError, RuntimeError):
                pass
            node.destroy()
        self._nodes = {}
        if not self._store.closed:
            self._store.close()

    def __enter__(self) -> "MultiProcessEngine":
        """Context-manager entry (returns self)."""
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        """Context-manager exit: tear the cluster down."""
        self.close()


class _BatchFailure(Exception):
    """Internal: one dispatch wave failed; carries the node to fence."""

    def __init__(self, node_id: str, cause: BaseException) -> None:
        """Record the first failed node (id order) and its cause."""
        super().__init__(f"batch failed on node {node_id!r}: {cause}")
        self.node_id = node_id
        self.cause = cause
