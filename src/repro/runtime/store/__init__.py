"""Concrete catalog-store backends for the run-time engine.

``memory``
    :class:`MemoryCatalogStore` — the zero-copy in-process default.
``sqlite``
    :class:`SqliteCatalogStore` — durable WAL-mode SQLite with
    per-ingest commits and full snapshot/restore across restarts.
"""

from repro.runtime.store.memory import MemoryCatalogStore
from repro.runtime.store.sqlite import SqliteCatalogStore

__all__ = ["MemoryCatalogStore", "SqliteCatalogStore"]
