"""The in-memory catalog store (the engine's original behaviour).

Everything lives in plain dicts; cluster payloads handed to the engine
are live references, so serial and thread execution stay zero-copy.
``commit`` is a no-op and nothing survives the process — use
:class:`~repro.runtime.store.sqlite.SqliteCatalogStore` for durability.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.model.offers import Offer
from repro.model.products import Product
from repro.runtime.state import CatalogStore, ClusterId, ClusterState, _InMemoryState
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["MemoryCatalogStore"]


class MemoryCatalogStore(CatalogStore):
    """Keep all engine state in process memory (fast, volatile)."""

    name = "memory"

    def __init__(self, journal_ring_size: int = 256) -> None:
        super().__init__()
        if journal_ring_size < 1:
            raise ValueError(f"journal_ring_size must be >= 1, got {journal_ring_size}")
        self._state = _InMemoryState()
        #: Commit journal as a bounded ring: the deque's maxlen silently
        #: drops the oldest entry, which is exactly journal truncation —
        #: the floor recomputes from the oldest surviving entry.
        self._journal: Deque[
            Tuple[int, Tuple[Tuple[ClusterId, Optional[Product]], ...]]
        ] = deque(maxlen=journal_ring_size)
        #: Highest commit id no longer provably covered by the ring.
        #: Raised when the ring evicts (or :meth:`compact_journal` runs);
        #: empty commits need no entry, so coverage is floor-based rather
        #: than per-commit.
        self._journal_floor = 0

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        """Nothing to flush, but the snapshot counter still advances.

        An installed fault hook fires first, so crash-injection tests
        can cut a batch down before it counts as committed — mirroring
        the durable backends, where a failed flush leaves the counter
        untouched.  A successful barrier drains the touched-cluster set
        into the journal ring, capturing each touched cluster's product
        *as of this commit* (products are replaced wholesale, never
        mutated, so holding the reference is snapshot-safe).
        """
        self._fault_point("commit")
        self._commit_count += 1
        touched = tuple(
            (cluster_id, self._state.clusters[cluster_id].product)
            for cluster_id in self._drain_touched()
            if cluster_id in self._state.clusters
        )
        if touched:
            if len(self._journal) == self._journal.maxlen:
                # The append below evicts the oldest entry; everything up
                # to (and including) its commit id stops being covered.
                self._journal_floor = self._journal[0][0]
            self._journal.append((self._commit_count, touched))
        self._obs_commits.inc()

    # -- changed-cluster commit journal ----------------------------------------

    def journal_floor(self) -> int:
        """Highest commit id not covered by the in-memory ring."""
        return self._journal_floor

    def journal_entries(
        self, since: int
    ) -> Optional[List[Tuple[int, List[Tuple[ClusterId, Optional[Product]]]]]]:
        """Per-commit deltas after ``since`` from the ring (oldest first)."""
        if since > self._commit_count or since < self._journal_floor:
            return None
        self._observe_journal_read(since)
        return [
            (commit_id, list(touched))
            for commit_id, touched in self._journal
            if commit_id > since
        ]

    def compact_journal(self, retain_commits: int = 0, auto: bool = False) -> int:
        """Drop ring entries, keeping at most the last ``retain_commits``.

        ``auto=True`` retains the deepest observed reader lag instead
        (see :meth:`repro.runtime.state.CatalogStore.compact_journal`).
        """
        if retain_commits < 0:
            raise ValueError(f"retain_commits must be >= 0, got {retain_commits}")
        if auto:
            low_water = self._take_auto_floor()
            if low_water is None:
                return self._journal_floor
            floor = max(self._journal_floor, min(low_water, self._commit_count))
        else:
            floor = max(self._journal_floor, self._commit_count - retain_commits)
        while self._journal and self._journal[0][0] <= floor:
            self._journal.popleft()
        self._journal_floor = floor
        return floor

    def close(self) -> None:
        """Nothing to release."""

    # -- seen offers -----------------------------------------------------------

    def is_seen(self, offer_id: str) -> bool:
        """Whether an offer id was already absorbed."""
        return offer_id in self._state.seen_offer_ids

    def mark_seen(self, offer_id: str) -> bool:
        """Record an offer id; ``False`` when it was already recorded."""
        self._fault_point("mark_seen")
        seen = self._state.seen_offer_ids
        if offer_id in seen:
            return False
        seen.add(offer_id)
        return True

    def num_seen(self) -> int:
        """Distinct offer ids absorbed so far."""
        return len(self._state.seen_offer_ids)

    # -- assigned categories ---------------------------------------------------

    def record_category(self, offer_id: str, category_id: str) -> None:
        """Remember which catalog category an offer was assigned to."""
        self._state.assigned_categories[offer_id] = category_id

    def assigned_categories(self) -> Dict[str, str]:
        """A copy of the offer-id -> category-id assignment map."""
        return dict(self._state.assigned_categories)

    # -- clusters --------------------------------------------------------------

    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        """The state of one cluster, or ``None`` when it does not exist."""
        return self._state.clusters.get(cluster_id)

    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        """Create (and return) an empty cluster in the given shard."""
        category_id, key = cluster_id
        state = ClusterState(
            shard_index=shard_index,
            cluster=OfferCluster(category_id=category_id, key=key),
        )
        self._state.clusters[cluster_id] = state
        self._state.shard_index.setdefault(shard_index, []).append(cluster_id)
        self._journal_touch(cluster_id)
        return state

    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        """Append reconciled offers to an existing cluster, in place."""
        self._fault_point("append_offers")
        self._state.clusters[cluster_id].cluster.offers.extend(offers)
        self._journal_touch(cluster_id)

    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        """Record the (re-)fused product of a cluster."""
        self._fault_point("set_product")
        self._state.clusters[cluster_id].product = product
        self._journal_touch(cluster_id)

    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        """Iterate over every tracked cluster (live references)."""
        return iter(self._state.clusters.items())

    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        """Ids of every cluster living in one shard."""
        return list(self._state.shard_index.get(shard_index, ()))

    def num_clusters(self) -> int:
        """Number of clusters tracked so far."""
        return len(self._state.clusters)

    # -- per-category statistics -----------------------------------------------

    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        """Get-or-create the mutable TF-IDF statistics of one category."""
        stats = self._state.category_stats.get(category_id)
        if stats is None:
            stats = IncrementalTfIdf()
            self._state.category_stats[category_id] = stats
        return stats

    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The TF-IDF statistics of one category, or ``None``."""
        return self._state.category_stats.get(category_id)

    def category_vocabulary(self) -> Dict[str, int]:
        """category_id -> distinct value-token vocabulary size, by id."""
        return {
            category_id: stats.vocabulary_size
            for category_id, stats in sorted(self._state.category_stats.items())
        }

    # -- reconciliation stats --------------------------------------------------

    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        """Fold one batch's counters into the running totals."""
        total = self._state.reconciliation_stats
        total.offers_processed += stats.offers_processed
        total.pairs_seen += stats.pairs_seen
        total.pairs_mapped += stats.pairs_mapped
        total.pairs_discarded += stats.pairs_discarded

    def reconciliation_stats(self) -> ReconciliationStats:
        """A copy of the accumulated reconciliation counters."""
        return replace(self._state.reconciliation_stats)

    # -- shard versions --------------------------------------------------------

    def shard_version(self, shard_index: int) -> int:
        """The delta-protocol version counter of one shard."""
        return self._state.shard_versions.get(shard_index, 0)

    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        """Bump a shard's version; returns ``(base, new)``."""
        base = self._state.shard_versions.get(shard_index, 0)
        self._state.shard_versions[shard_index] = base + 1
        return base, base + 1

    # -- shard epochs ----------------------------------------------------------

    def shard_epoch(self, shard_index: int) -> int:
        """The fencing epoch of one shard (0 = never owned)."""
        return self._state.shard_epochs.get(shard_index, 0)

    def advance_shard_epoch(self, shard_index: int) -> int:
        """Bump a shard's fencing epoch; returns the new epoch."""
        epoch = self._state.shard_epochs.get(shard_index, 0) + 1
        self._state.shard_epochs[shard_index] = epoch
        return epoch
