"""The in-memory catalog store (the engine's original behaviour).

Everything lives in plain dicts; cluster payloads handed to the engine
are live references, so serial and thread execution stay zero-copy.
``commit`` is a no-op and nothing survives the process — use
:class:`~repro.runtime.store.sqlite.SqliteCatalogStore` for durability.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.offers import Offer
from repro.model.products import Product
from repro.runtime.state import CatalogStore, ClusterId, ClusterState, _InMemoryState
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["MemoryCatalogStore"]


class MemoryCatalogStore(CatalogStore):
    """Keep all engine state in process memory (fast, volatile)."""

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._state = _InMemoryState()

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        """Nothing to flush (but an installed fault hook still fires)."""
        self._fault_point("commit")

    def close(self) -> None:
        """Nothing to release."""

    # -- seen offers -----------------------------------------------------------

    def is_seen(self, offer_id: str) -> bool:
        return offer_id in self._state.seen_offer_ids

    def mark_seen(self, offer_id: str) -> bool:
        self._fault_point("mark_seen")
        seen = self._state.seen_offer_ids
        if offer_id in seen:
            return False
        seen.add(offer_id)
        return True

    def num_seen(self) -> int:
        return len(self._state.seen_offer_ids)

    # -- assigned categories ---------------------------------------------------

    def record_category(self, offer_id: str, category_id: str) -> None:
        self._state.assigned_categories[offer_id] = category_id

    def assigned_categories(self) -> Dict[str, str]:
        return dict(self._state.assigned_categories)

    # -- clusters --------------------------------------------------------------

    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        return self._state.clusters.get(cluster_id)

    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        category_id, key = cluster_id
        state = ClusterState(
            shard_index=shard_index,
            cluster=OfferCluster(category_id=category_id, key=key),
        )
        self._state.clusters[cluster_id] = state
        self._state.shard_index.setdefault(shard_index, []).append(cluster_id)
        return state

    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        self._fault_point("append_offers")
        self._state.clusters[cluster_id].cluster.offers.extend(offers)

    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        self._fault_point("set_product")
        self._state.clusters[cluster_id].product = product

    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        return iter(self._state.clusters.items())

    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        return list(self._state.shard_index.get(shard_index, ()))

    def num_clusters(self) -> int:
        return len(self._state.clusters)

    # -- per-category statistics -----------------------------------------------

    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        stats = self._state.category_stats.get(category_id)
        if stats is None:
            stats = IncrementalTfIdf()
            self._state.category_stats[category_id] = stats
        return stats

    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        return self._state.category_stats.get(category_id)

    def category_vocabulary(self) -> Dict[str, int]:
        return {
            category_id: stats.vocabulary_size
            for category_id, stats in sorted(self._state.category_stats.items())
        }

    # -- reconciliation stats --------------------------------------------------

    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        total = self._state.reconciliation_stats
        total.offers_processed += stats.offers_processed
        total.pairs_seen += stats.pairs_seen
        total.pairs_mapped += stats.pairs_mapped
        total.pairs_discarded += stats.pairs_discarded

    def reconciliation_stats(self) -> ReconciliationStats:
        return replace(self._state.reconciliation_stats)

    # -- shard versions --------------------------------------------------------

    def shard_version(self, shard_index: int) -> int:
        return self._state.shard_versions.get(shard_index, 0)

    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        base = self._state.shard_versions.get(shard_index, 0)
        self._state.shard_versions[shard_index] = base + 1
        return base, base + 1

    # -- shard epochs ----------------------------------------------------------

    def shard_epoch(self, shard_index: int) -> int:
        return self._state.shard_epochs.get(shard_index, 0)

    def advance_shard_epoch(self, shard_index: int) -> int:
        epoch = self._state.shard_epochs.get(shard_index, 0) + 1
        self._state.shard_epochs[shard_index] = epoch
        return epoch
