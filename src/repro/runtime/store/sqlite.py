"""Durable WAL-mode SQLite catalog store.

Layout (one row per fact, JSON payloads via the
:mod:`repro.model.persistence` serialisers)::

    meta(key, value)                      -- format version, shard count
    seen_offers(offer_id)                 -- ingest dedup set
    assigned_categories(offer_id, ...)    -- classifier output
    clusters(category_id, cluster_key, product)
    cluster_offers(category_id, cluster_key, position, offer)
    category_stats(category_id, stats)    -- IncrementalTfIdf state dicts
    shard_versions(shard, version)        -- delta-protocol counters
    shard_epochs(shard, epoch)            -- multi-node fencing epochs
    reconciliation_stats(id=1, ...)       -- running totals

The store keeps a full in-memory mirror (reads never touch disk on the
hot path) and journals mutations, flushing them in one transaction per
:meth:`commit` — the engine commits at the end of every ingest, so a
killed process loses at most the batch that was in flight.  Reopening
the same path restores the complete engine state; re-fusing restored
clusters yields byte-identical products because offers round-trip
exactly through the JSON serialisers.

Because the file is a consistent snapshot after every commit, process
workers of the delta re-fusion protocol can resync a shard straight from
it (:meth:`worker_resync_path`) instead of having cluster contents
re-shipped through the task queue.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.offers import Offer
from repro.model.persistence import (
    offer_from_dict,
    offer_to_dict,
    product_from_dict,
    product_to_dict,
)
from repro.model.products import Product
from repro.runtime.sharding import shard_for_category
from repro.runtime.state import CatalogStore, ClusterId, ClusterState, _InMemoryState
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["SqliteCatalogStore", "load_shard_clusters"]

#: Bumped when the table layout changes incompatibly.
_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS seen_offers (
    offer_id TEXT PRIMARY KEY
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS assigned_categories (
    offer_id TEXT PRIMARY KEY,
    category_id TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS clusters (
    category_id TEXT NOT NULL,
    cluster_key TEXT NOT NULL,
    product TEXT,
    PRIMARY KEY (category_id, cluster_key)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS cluster_offers (
    category_id TEXT NOT NULL,
    cluster_key TEXT NOT NULL,
    position INTEGER NOT NULL,
    offer TEXT NOT NULL,
    PRIMARY KEY (category_id, cluster_key, position)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS category_stats (
    category_id TEXT PRIMARY KEY,
    stats TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS shard_versions (
    shard INTEGER PRIMARY KEY,
    version INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS shard_epochs (
    shard INTEGER PRIMARY KEY,
    epoch INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS reconciliation_stats (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    offers_processed INTEGER NOT NULL,
    pairs_seen INTEGER NOT NULL,
    pairs_mapped INTEGER NOT NULL,
    pairs_discarded INTEGER NOT NULL
);
"""


def load_shard_clusters(
    path: str, cluster_ids: List[ClusterId]
) -> Dict[ClusterId, List[Offer]]:
    """Load the committed offer lists of selected clusters from ``path``.

    Used by delta-protocol process workers to resync: the file reflects
    the last engine commit (= the state *before* the in-flight batch), so
    the caller applies the current batch's delta on top.  Missing
    clusters simply have no entry in the result.
    """
    # A plain read-only connection per call keeps the worker side free of
    # connection state; resyncs are rare (worker restart / fresh worker).
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        loaded: Dict[ClusterId, List[Offer]] = {}
        for category_id, cluster_key in cluster_ids:
            rows = connection.execute(
                "SELECT offer FROM cluster_offers"
                " WHERE category_id = ? AND cluster_key = ? ORDER BY position",
                (category_id, cluster_key),
            ).fetchall()
            if rows:
                loaded[(category_id, cluster_key)] = [
                    offer_from_dict(json.loads(row[0])) for row in rows
                ]
        return loaded
    finally:
        connection.close()


class SqliteCatalogStore(CatalogStore):
    """Durable catalog store over a single SQLite file (WAL mode)."""

    name = "sqlite"

    def __init__(self, path: str) -> None:
        super().__init__()
        self._path = os.path.abspath(path)
        # check_same_thread=False: a multi-node engine dispatches node
        # sub-batches on worker threads; every store call is serialised
        # by the cluster layer's lock, so cross-thread use is safe.
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            self._path, check_same_thread=False
        )
        # Validate the format marker *before* touching the file: running
        # the schema script against a future-format store would write v1
        # tables into it, and restoring would crash with an opaque
        # OperationalError instead of this ValueError.
        stored_version = self._stored_format_version()
        if stored_version is not None and stored_version != _FORMAT_VERSION:
            self._connection.close()
            self._connection = None
            raise ValueError(
                f"unsupported catalog store format version: {stored_version}"
            )
        self._connection.executescript(_SCHEMA)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._state = _InMemoryState()
        # Mutation journals, flushed in one transaction per commit().
        self._new_seen: List[str] = []
        self._new_categories: List[Tuple[str, str]] = []
        self._new_clusters: List[ClusterId] = []
        self._new_offers: List[Tuple[str, str, int, str]] = []
        self._dirty_products: Dict[ClusterId, Optional[Product]] = {}
        self._dirty_stats: set = set()
        self._dirty_versions: set = set()
        self._stats_dirty = False
        self._restore()
        if stored_version is None:
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("format_version", str(_FORMAT_VERSION)),
            )
            self._connection.commit()

    # -- restore ---------------------------------------------------------------

    def _stored_format_version(self) -> Optional[int]:
        """The format marker of an existing store file, before any writes."""
        assert self._connection is not None
        has_meta = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = 'meta'"
        ).fetchone()
        if has_meta is None:
            return None
        version = self._meta("format_version")
        return None if version is None else int(version)

    def _meta(self, key: str) -> Optional[str]:
        assert self._connection is not None
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _restore(self) -> None:
        """Populate the in-memory mirror from the persisted snapshot."""
        assert self._connection is not None
        state = self._state
        for (offer_id,) in self._connection.execute("SELECT offer_id FROM seen_offers"):
            state.seen_offer_ids.add(offer_id)
        for offer_id, category_id in self._connection.execute(
            "SELECT offer_id, category_id FROM assigned_categories"
        ):
            state.assigned_categories[offer_id] = category_id
        for category_id, cluster_key, product_json in self._connection.execute(
            "SELECT category_id, cluster_key, product FROM clusters"
        ):
            product = None
            if product_json is not None:
                product = product_from_dict(json.loads(product_json))
            # Shard assignment is recomputed at bind(); -1 marks unbound.
            state.clusters[(category_id, cluster_key)] = ClusterState(
                shard_index=-1,
                cluster=OfferCluster(category_id=category_id, key=cluster_key),
                product=product,
            )
        for category_id, cluster_key, offer_json in self._connection.execute(
            "SELECT category_id, cluster_key, offer FROM cluster_offers"
            " ORDER BY category_id, cluster_key, position"
        ):
            state.clusters[(category_id, cluster_key)].cluster.offers.append(
                offer_from_dict(json.loads(offer_json))
            )
        for category_id, stats_json in self._connection.execute(
            "SELECT category_id, stats FROM category_stats"
        ):
            state.category_stats[category_id] = IncrementalTfIdf.from_state_dict(
                json.loads(stats_json)
            )
        for shard, version in self._connection.execute(
            "SELECT shard, version FROM shard_versions"
        ):
            state.shard_versions[shard] = version
        for shard, epoch in self._connection.execute(
            "SELECT shard, epoch FROM shard_epochs"
        ):
            state.shard_epochs[shard] = epoch
        row = self._connection.execute(
            "SELECT offers_processed, pairs_seen, pairs_mapped, pairs_discarded"
            " FROM reconciliation_stats WHERE id = 1"
        ).fetchone()
        if row is not None:
            state.reconciliation_stats = ReconciliationStats(*row)

    def bind(self, num_shards: int) -> None:
        super().bind(num_shards)
        stored = self._meta("num_shards")
        if stored is not None and int(stored) != num_shards:
            # Shard indices (and therefore per-shard version counters and
            # fencing epochs) are meaningless under a different shard
            # count; reset them.  Worker caches are keyed by store token,
            # so no worker can hold state for this store generation yet.
            self._state.shard_versions = {}
            self._state.shard_epochs = {}
            assert self._connection is not None
            self._connection.execute("DELETE FROM shard_versions")
            self._connection.execute("DELETE FROM shard_epochs")
        assert self._connection is not None
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("num_shards", str(num_shards)),
        )
        self._connection.commit()
        self._reindex_shards(num_shards)

    def _reindex_shards(self, num_shards: int) -> None:
        """Recompute every mirrored cluster's shard assignment."""
        self._state.shard_index = {}
        for cluster_id, cluster_state in self._state.clusters.items():
            shard = shard_for_category(cluster_id[0], num_shards)
            cluster_state.shard_index = shard
            self._state.shard_index.setdefault(shard, []).append(cluster_id)

    # -- lifecycle -------------------------------------------------------------

    def _require_open(self) -> sqlite3.Connection:
        """The live connection, or a clear error once the store is closed.

        Guards every mutating method: accepting writes into the mirror
        after ``close()`` would record facts (seen offers, cluster
        contents) that can never be flushed — the silent-loss gap the
        fail-fast contract exists to close.
        """
        if self._connection is None:
            raise RuntimeError(
                "catalog store is closed: writes after close() can never be "
                "persisted (reopen the store path to resume the stream)"
            )
        return self._connection

    def commit(self) -> None:
        """Flush journalled mutations in one transaction."""
        connection = self._require_open()
        self._fault_point("commit")
        if self._new_seen:
            connection.executemany(
                "INSERT OR IGNORE INTO seen_offers (offer_id) VALUES (?)",
                [(offer_id,) for offer_id in self._new_seen],
            )
        if self._new_categories:
            connection.executemany(
                "INSERT OR REPLACE INTO assigned_categories (offer_id, category_id)"
                " VALUES (?, ?)",
                self._new_categories,
            )
        if self._new_clusters:
            connection.executemany(
                "INSERT OR IGNORE INTO clusters (category_id, cluster_key, product)"
                " VALUES (?, ?, NULL)",
                self._new_clusters,
            )
        if self._new_offers:
            connection.executemany(
                "INSERT OR REPLACE INTO cluster_offers"
                " (category_id, cluster_key, position, offer) VALUES (?, ?, ?, ?)",
                self._new_offers,
            )
        if self._dirty_products:
            connection.executemany(
                "UPDATE clusters SET product = ? WHERE category_id = ? AND cluster_key = ?",
                [
                    (
                        None if product is None else json.dumps(product_to_dict(product)),
                        category_id,
                        cluster_key,
                    )
                    for (category_id, cluster_key), product in self._dirty_products.items()
                ],
            )
        if self._dirty_stats:
            connection.executemany(
                "INSERT OR REPLACE INTO category_stats (category_id, stats) VALUES (?, ?)",
                [
                    (category_id, json.dumps(self._state.category_stats[category_id].state_dict()))
                    for category_id in sorted(self._dirty_stats)
                ],
            )
        if self._dirty_versions:
            connection.executemany(
                "INSERT OR REPLACE INTO shard_versions (shard, version) VALUES (?, ?)",
                [
                    (shard, self._state.shard_versions.get(shard, 0))
                    for shard in sorted(self._dirty_versions)
                ],
            )
        if self._stats_dirty:
            totals = self._state.reconciliation_stats
            connection.execute(
                "INSERT OR REPLACE INTO reconciliation_stats"
                " (id, offers_processed, pairs_seen, pairs_mapped, pairs_discarded)"
                " VALUES (1, ?, ?, ?, ?)",
                (
                    totals.offers_processed,
                    totals.pairs_seen,
                    totals.pairs_mapped,
                    totals.pairs_discarded,
                ),
            )
        connection.commit()
        self._new_seen = []
        self._new_categories = []
        self._new_clusters = []
        self._new_offers = []
        self._dirty_products = {}
        self._dirty_stats = set()
        self._dirty_versions = set()
        self._stats_dirty = False

    def close(self) -> None:
        """Flush pending mutations and close the connection (idempotent)."""
        if self._connection is None:
            return
        self.commit()
        self._connection.close()
        self._connection = None

    @property
    def supports_rollback(self) -> bool:
        return True

    def rollback(self) -> None:
        """Discard everything since the last commit; reload from disk.

        The file is a consistent snapshot after every commit, so crash
        recovery is exactly a mirror rebuild: drop the journalled
        mutations, re-read the persisted state, and re-index the shards.
        The store token is deliberately kept — delta-protocol worker
        caches that ran ahead of the discarded batch are then caught by
        the version/base-size guards and resync from this same file.
        """
        connection = self._require_open()
        connection.rollback()
        self._new_seen = []
        self._new_categories = []
        self._new_clusters = []
        self._new_offers = []
        self._dirty_products = {}
        self._dirty_stats = set()
        self._dirty_versions = set()
        self._stats_dirty = False
        self._state = _InMemoryState()
        self._restore()
        if self._num_shards:
            self._reindex_shards(self._num_shards)

    @property
    def closed(self) -> bool:
        return self._connection is None

    @property
    def path(self) -> str:
        """Absolute path of the backing SQLite file."""
        return self._path

    def worker_resync_path(self) -> Optional[str]:
        return self._path

    # -- seen offers -----------------------------------------------------------

    def is_seen(self, offer_id: str) -> bool:
        return offer_id in self._state.seen_offer_ids

    def mark_seen(self, offer_id: str) -> bool:
        self._require_open()
        self._fault_point("mark_seen")
        seen = self._state.seen_offer_ids
        if offer_id in seen:
            return False
        seen.add(offer_id)
        self._new_seen.append(offer_id)
        return True

    def num_seen(self) -> int:
        return len(self._state.seen_offer_ids)

    # -- assigned categories ---------------------------------------------------

    def record_category(self, offer_id: str, category_id: str) -> None:
        self._require_open()
        self._state.assigned_categories[offer_id] = category_id
        self._new_categories.append((offer_id, category_id))

    def assigned_categories(self) -> Dict[str, str]:
        return dict(self._state.assigned_categories)

    # -- clusters --------------------------------------------------------------

    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        return self._state.clusters.get(cluster_id)

    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        self._require_open()
        category_id, key = cluster_id
        state = ClusterState(
            shard_index=shard_index,
            cluster=OfferCluster(category_id=category_id, key=key),
        )
        self._state.clusters[cluster_id] = state
        self._state.shard_index.setdefault(shard_index, []).append(cluster_id)
        self._new_clusters.append(cluster_id)
        return state

    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        self._require_open()
        self._fault_point("append_offers")
        cluster = self._state.clusters[cluster_id].cluster
        position = len(cluster.offers)
        category_id, cluster_key = cluster_id
        for offset, offer in enumerate(offers):
            self._new_offers.append(
                (category_id, cluster_key, position + offset, json.dumps(offer_to_dict(offer)))
            )
        cluster.offers.extend(offers)

    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        self._require_open()
        self._fault_point("set_product")
        self._state.clusters[cluster_id].product = product
        self._dirty_products[cluster_id] = product

    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        return iter(self._state.clusters.items())

    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        return list(self._state.shard_index.get(shard_index, ()))

    def num_clusters(self) -> int:
        return len(self._state.clusters)

    # -- per-category statistics -----------------------------------------------

    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        self._require_open()
        stats = self._state.category_stats.get(category_id)
        if stats is None:
            stats = IncrementalTfIdf()
            self._state.category_stats[category_id] = stats
        self._dirty_stats.add(category_id)
        return stats

    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        return self._state.category_stats.get(category_id)

    def category_vocabulary(self) -> Dict[str, int]:
        return {
            category_id: stats.vocabulary_size
            for category_id, stats in sorted(self._state.category_stats.items())
        }

    # -- reconciliation stats --------------------------------------------------

    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        self._require_open()
        total = self._state.reconciliation_stats
        total.offers_processed += stats.offers_processed
        total.pairs_seen += stats.pairs_seen
        total.pairs_mapped += stats.pairs_mapped
        total.pairs_discarded += stats.pairs_discarded
        self._stats_dirty = True

    def reconciliation_stats(self) -> ReconciliationStats:
        totals = self._state.reconciliation_stats
        return ReconciliationStats(
            offers_processed=totals.offers_processed,
            pairs_seen=totals.pairs_seen,
            pairs_mapped=totals.pairs_mapped,
            pairs_discarded=totals.pairs_discarded,
        )

    # -- shard versions --------------------------------------------------------

    def shard_version(self, shard_index: int) -> int:
        return self._state.shard_versions.get(shard_index, 0)

    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        self._require_open()
        base = self._state.shard_versions.get(shard_index, 0)
        self._state.shard_versions[shard_index] = base + 1
        self._dirty_versions.add(shard_index)
        return base, base + 1

    # -- shard epochs ----------------------------------------------------------

    def shard_epoch(self, shard_index: int) -> int:
        return self._state.shard_epochs.get(shard_index, 0)

    def advance_shard_epoch(self, shard_index: int) -> int:
        """Bump a shard's fencing epoch, durably and immediately.

        Unlike the journalled mutations, the epoch is flushed right away:
        fencing decisions must survive exactly the crashes they guard
        against, and they must not be discarded by a batch rollback.
        (The connection carries no other pending statements — everything
        else is journalled Python-side — so this commit is precise.)
        """
        connection = self._require_open()
        epoch = self._state.shard_epochs.get(shard_index, 0) + 1
        self._state.shard_epochs[shard_index] = epoch
        connection.execute(
            "INSERT OR REPLACE INTO shard_epochs (shard, epoch) VALUES (?, ?)",
            (shard_index, epoch),
        )
        connection.commit()
        return epoch
