"""Durable WAL-mode SQLite catalog store.

Layout (one row per fact, JSON payloads via the
:mod:`repro.model.persistence` serialisers)::

    meta(key, value)                      -- format version, shard count
    seen_offers(offer_id)                 -- ingest dedup set
    assigned_categories(offer_id, ...)    -- classifier output
    clusters(category_id, cluster_key, product)
    cluster_offers(category_id, cluster_key, position, offer)
    category_stats(category_id, stats)    -- IncrementalTfIdf state dicts
    shard_versions(shard, version)        -- delta-protocol counters
    shard_epochs(shard, epoch)            -- multi-node fencing epochs
    reconciliation_stats(id=1, ...)       -- running totals
    commit_journal(commit_id, category_id, cluster_key, product)
                                          -- changed-cluster journal

The store keeps a full in-memory mirror (reads never touch disk on the
hot path) and journals mutations, flushing them in one transaction per
:meth:`commit` — the engine commits at the end of every ingest, so a
killed process loses at most the batch that was in flight.  Reopening
the same path restores the complete engine state; re-fusing restored
clusters yields byte-identical products because offers round-trip
exactly through the JSON serialisers.

Because the file is a consistent snapshot after every commit, process
workers of the delta re-fusion protocol can resync a shard straight from
it (:meth:`worker_resync_path`) instead of having cluster contents
re-shipped through the task queue.

**Multi-process sharing.**  A multi-process cluster
(:class:`~repro.runtime.procnode.MultiProcessEngine`) opens one store
instance *per node process* over the same WAL file, plus the
coordinator's.  Three mechanisms make that safe:

* every connection sets a busy timeout, so the per-node commit
  transactions at the cluster barrier serialise instead of failing;
* a store opened with ``partition=<node id>`` journals its
  reconciliation counters into a per-node row of
  ``node_reconciliation_stats`` (the shared-row strategy: no two
  processes ever update the same row), and reads fencing epochs straight
  from the file — the coordinator advances them from another process, so
  the mirror cannot be trusted for fencing decisions;
* :meth:`refresh` / :meth:`refresh_shards` rebuild (all of, or selected
  shards of) the mirror from the last committed snapshot, which is how
  the coordinator observes the nodes' barrier commits and how a shard's
  new owner picks up state the previous owner wrote.

The seen-offer and cluster tables need no partitioning: routing sends
each offer to exactly one node and each shard has exactly one owner, so
cross-process writers never touch the same rows.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Dict, Iterator, List, Optional, Tuple

from repro.model.offers import Offer
from repro.model.persistence import (
    offer_from_dict,
    offer_to_dict,
    product_from_dict,
    product_to_dict,
)
from repro.model.products import Product
from repro.obs import get_registry
from repro.runtime.sharding import shard_for_category
from repro.runtime.state import CatalogStore, ClusterId, ClusterState, _InMemoryState
from repro.synthesis.clustering import OfferCluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["SqliteCatalogStore", "load_shard_clusters", "read_product_page"]

#: Bumped when the table layout changes incompatibly.
_FORMAT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS seen_offers (
    offer_id TEXT PRIMARY KEY
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS assigned_categories (
    offer_id TEXT PRIMARY KEY,
    category_id TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS clusters (
    category_id TEXT NOT NULL,
    cluster_key TEXT NOT NULL,
    product TEXT,
    PRIMARY KEY (category_id, cluster_key)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS cluster_offers (
    category_id TEXT NOT NULL,
    cluster_key TEXT NOT NULL,
    position INTEGER NOT NULL,
    offer TEXT NOT NULL,
    PRIMARY KEY (category_id, cluster_key, position)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS category_stats (
    category_id TEXT PRIMARY KEY,
    stats TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS shard_versions (
    shard INTEGER PRIMARY KEY,
    version INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS shard_epochs (
    shard INTEGER PRIMARY KEY,
    epoch INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS reconciliation_stats (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    offers_processed INTEGER NOT NULL,
    pairs_seen INTEGER NOT NULL,
    pairs_mapped INTEGER NOT NULL,
    pairs_discarded INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS node_reconciliation_stats (
    node_id TEXT PRIMARY KEY,
    offers_processed INTEGER NOT NULL,
    pairs_seen INTEGER NOT NULL,
    pairs_mapped INTEGER NOT NULL,
    pairs_discarded INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS commit_intents (
    id INTEGER PRIMARY KEY CHECK (id = 1),
    sequence INTEGER NOT NULL,
    payload BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS commit_journal (
    commit_id INTEGER NOT NULL,
    category_id TEXT NOT NULL,
    cluster_key TEXT NOT NULL,
    product TEXT,
    PRIMARY KEY (commit_id, category_id, cluster_key)
) WITHOUT ROWID;
"""


def load_shard_clusters(
    path: str, cluster_ids: List[ClusterId]
) -> Dict[ClusterId, List[Offer]]:
    """Load the committed offer lists of selected clusters from ``path``.

    Used by delta-protocol process workers to resync: the file reflects
    the last engine commit (= the state *before* the in-flight batch), so
    the caller applies the current batch's delta on top.  Missing
    clusters simply have no entry in the result.
    """
    # A plain read-only connection per call keeps the worker side free of
    # connection state; resyncs are rare (worker restart / fresh worker).
    connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    try:
        loaded: Dict[ClusterId, List[Offer]] = {}
        for category_id, cluster_key in cluster_ids:
            rows = connection.execute(
                "SELECT offer FROM cluster_offers"
                " WHERE category_id = ? AND cluster_key = ? ORDER BY position",
                (category_id, cluster_key),
            ).fetchall()
            if rows:
                loaded[(category_id, cluster_key)] = [
                    offer_from_dict(json.loads(row[0])) for row in rows
                ]
        return loaded
    finally:
        connection.close()


def read_product_page(
    connection: sqlite3.Connection,
    after: Optional[ClusterId] = None,
    limit: int = 256,
) -> List[Tuple[ClusterId, Product]]:
    """Read one page of committed products in (category, key) order.

    Keyset pagination over the ``clusters`` table: ``after`` is the last
    cluster id of the previous page (``None`` starts from the beginning),
    and only clusters that currently have a fused product are returned.
    The page comes straight from the database — no store mirror involved
    — which is what lets a read-only serving connection
    (:class:`repro.serving.reader.CatalogReader`) and
    :meth:`SqliteCatalogStore.iter_products` stream a catalog larger
    than they are willing to hold in memory.
    """
    if after is None:
        rows = connection.execute(
            "SELECT category_id, cluster_key, product FROM clusters"
            " WHERE product IS NOT NULL"
            " ORDER BY category_id, cluster_key LIMIT ?",
            (limit,),
        ).fetchall()
    else:
        rows = connection.execute(
            "SELECT category_id, cluster_key, product FROM clusters"
            " WHERE product IS NOT NULL AND"
            " (category_id > ? OR (category_id = ? AND cluster_key > ?))"
            " ORDER BY category_id, cluster_key LIMIT ?",
            (after[0], after[0], after[1], limit),
        ).fetchall()
    return [
        ((category_id, cluster_key), product_from_dict(json.loads(product_json)))
        for category_id, cluster_key, product_json in rows
    ]


class SqliteCatalogStore(CatalogStore):
    """Durable catalog store over a single SQLite file (WAL mode).

    ``partition`` opts a store instance into the multi-process sharing
    contract: reconciliation counters go to the named per-node row,
    fencing epochs are read authoritatively from the file instead of the
    mirror, and :meth:`advance_shard_epoch` is refused (only the
    coordinator — the unpartitioned instance — advances epochs).
    ``busy_timeout_ms`` bounds how long a write waits for another
    process's transaction before failing.
    """

    name = "sqlite"

    def __init__(
        self,
        path: str,
        partition: Optional[str] = None,
        busy_timeout_ms: int = 30_000,
    ) -> None:
        super().__init__()
        self._path = os.path.abspath(path)
        self._partition = partition
        self._partition_totals = ReconciliationStats()
        # check_same_thread=False: a multi-node engine dispatches node
        # sub-batches on worker threads; every store call is serialised
        # by the cluster layer's lock, so cross-thread use is safe.
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            self._path, check_same_thread=False
        )
        # Before any write (including the schema script): multi-process
        # clusters open several connections over one file, and their
        # commits at the barrier must queue, not fail.
        self._connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        # Validate the format marker *before* touching the file: running
        # the schema script against a future-format store would write v1
        # tables into it, and restoring would crash with an opaque
        # OperationalError instead of this ValueError.
        stored_version = self._stored_format_version()
        if stored_version is not None and stored_version != _FORMAT_VERSION:
            self._connection.close()
            self._connection = None
            raise ValueError(
                f"unsupported catalog store format version: {stored_version}"
            )
        self._connection.executescript(_SCHEMA)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._state = _InMemoryState()
        # Mutation journals, flushed in one transaction per commit().
        self._new_seen: List[str] = []
        self._new_categories: List[Tuple[str, str]] = []
        self._new_clusters: List[ClusterId] = []
        self._new_offers: List[Tuple[str, str, int, str]] = []
        self._dirty_products: Dict[ClusterId, Optional[Product]] = {}
        self._dirty_stats: set = set()
        self._dirty_versions: set = set()
        self._stats_dirty = False
        self._restore()
        if stored_version is None:
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("format_version", str(_FORMAT_VERSION)),
            )
        # Initialise the journal floor exactly once per file: a fresh
        # store covers everything (floor 0); a legacy file that predates
        # the journal covers nothing before its current head.  INSERT OR
        # IGNORE keeps concurrent multi-process opens race-safe.
        self._connection.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("journal_floor", str(self._commit_count)),
        )
        self._connection.commit()

    # -- restore ---------------------------------------------------------------

    def _stored_format_version(self) -> Optional[int]:
        """The format marker of an existing store file, before any writes."""
        assert self._connection is not None
        has_meta = self._connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' AND name = 'meta'"
        ).fetchone()
        if has_meta is None:
            return None
        version = self._meta("format_version")
        return None if version is None else int(version)

    def _meta(self, key: str) -> Optional[str]:
        assert self._connection is not None
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _restore(self) -> None:
        """Populate the in-memory mirror from the persisted snapshot."""
        assert self._connection is not None
        state = self._state
        for (offer_id,) in self._connection.execute("SELECT offer_id FROM seen_offers"):
            state.seen_offer_ids.add(offer_id)
        for offer_id, category_id in self._connection.execute(
            "SELECT offer_id, category_id FROM assigned_categories"
        ):
            state.assigned_categories[offer_id] = category_id
        for category_id, cluster_key, product_json in self._connection.execute(
            "SELECT category_id, cluster_key, product FROM clusters"
        ):
            product = None
            if product_json is not None:
                product = product_from_dict(json.loads(product_json))
            # Shard assignment is recomputed at bind(); -1 marks unbound.
            state.clusters[(category_id, cluster_key)] = ClusterState(
                shard_index=-1,
                cluster=OfferCluster(category_id=category_id, key=cluster_key),
                product=product,
            )
        for category_id, cluster_key, offer_json in self._connection.execute(
            "SELECT category_id, cluster_key, offer FROM cluster_offers"
            " ORDER BY category_id, cluster_key, position"
        ):
            state.clusters[(category_id, cluster_key)].cluster.offers.append(
                offer_from_dict(json.loads(offer_json))
            )
        for category_id, stats_json in self._connection.execute(
            "SELECT category_id, stats FROM category_stats"
        ):
            state.category_stats[category_id] = IncrementalTfIdf.from_state_dict(
                json.loads(stats_json)
            )
        for shard, version in self._connection.execute(
            "SELECT shard, version FROM shard_versions"
        ):
            state.shard_versions[shard] = version
        for shard, epoch in self._connection.execute(
            "SELECT shard, epoch FROM shard_epochs"
        ):
            state.shard_epochs[shard] = epoch
        row = self._connection.execute(
            "SELECT offers_processed, pairs_seen, pairs_mapped, pairs_discarded"
            " FROM reconciliation_stats WHERE id = 1"
        ).fetchone()
        if row is not None:
            state.reconciliation_stats = ReconciliationStats(*row)
        commit_count = self._meta("commit_count")
        self._commit_count = 0 if commit_count is None else int(commit_count)
        # Global totals are the single-writer row plus every node
        # partition; a partitioned store also reloads its own slice so a
        # restarted node keeps accumulating where it left off.
        for node_id, *counts in self._connection.execute(
            "SELECT node_id, offers_processed, pairs_seen, pairs_mapped, pairs_discarded"
            " FROM node_reconciliation_stats"
        ):
            partial = ReconciliationStats(*counts)
            state.reconciliation_stats.offers_processed += partial.offers_processed
            state.reconciliation_stats.pairs_seen += partial.pairs_seen
            state.reconciliation_stats.pairs_mapped += partial.pairs_mapped
            state.reconciliation_stats.pairs_discarded += partial.pairs_discarded
            if node_id == self._partition:
                self._partition_totals = partial

    def bind(self, num_shards: int) -> None:
        """Bind to a shard count; a mismatch with the stored one resets epochs/versions."""
        super().bind(num_shards)
        stored = self._meta("num_shards")
        if stored is not None and int(stored) != num_shards:
            # Shard indices (and therefore per-shard version counters and
            # fencing epochs) are meaningless under a different shard
            # count; reset them.  Worker caches are keyed by store token,
            # so no worker can hold state for this store generation yet.
            self._state.shard_versions = {}
            self._state.shard_epochs = {}
            assert self._connection is not None
            self._connection.execute("DELETE FROM shard_versions")
            self._connection.execute("DELETE FROM shard_epochs")
        assert self._connection is not None
        self._connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            ("num_shards", str(num_shards)),
        )
        self._connection.commit()
        self._reindex_shards(num_shards)

    def _reindex_shards(self, num_shards: int) -> None:
        """Recompute every mirrored cluster's shard assignment."""
        self._state.shard_index = {}
        for cluster_id, cluster_state in self._state.clusters.items():
            shard = shard_for_category(cluster_id[0], num_shards)
            cluster_state.shard_index = shard
            self._state.shard_index.setdefault(shard, []).append(cluster_id)

    # -- lifecycle -------------------------------------------------------------

    def _require_open(self) -> sqlite3.Connection:
        """The live connection, or a clear error once the store is closed.

        Guards every mutating method: accepting writes into the mirror
        after ``close()`` would record facts (seen offers, cluster
        contents) that can never be flushed — the silent-loss gap the
        fail-fast contract exists to close.
        """
        if self._connection is None:
            raise RuntimeError(
                "catalog store is closed: writes after close() can never be "
                "persisted (reopen the store path to resume the stream)"
            )
        return self._connection

    def commit(self) -> None:
        """Flush journalled mutations in one transaction."""
        connection = self._require_open()
        self._fault_point("commit")
        if self._new_seen:
            connection.executemany(
                "INSERT OR IGNORE INTO seen_offers (offer_id) VALUES (?)",
                [(offer_id,) for offer_id in self._new_seen],
            )
        if self._new_categories:
            connection.executemany(
                "INSERT OR REPLACE INTO assigned_categories (offer_id, category_id)"
                " VALUES (?, ?)",
                self._new_categories,
            )
        if self._new_clusters:
            connection.executemany(
                "INSERT OR IGNORE INTO clusters (category_id, cluster_key, product)"
                " VALUES (?, ?, NULL)",
                self._new_clusters,
            )
        if self._new_offers:
            connection.executemany(
                "INSERT OR REPLACE INTO cluster_offers"
                " (category_id, cluster_key, position, offer) VALUES (?, ?, ?, ?)",
                self._new_offers,
            )
        if self._dirty_products:
            connection.executemany(
                "UPDATE clusters SET product = ? WHERE category_id = ? AND cluster_key = ?",
                [
                    (
                        None if product is None else json.dumps(product_to_dict(product)),
                        category_id,
                        cluster_key,
                    )
                    for (category_id, cluster_key), product in self._dirty_products.items()
                ],
            )
        if self._dirty_stats:
            connection.executemany(
                "INSERT OR REPLACE INTO category_stats (category_id, stats) VALUES (?, ?)",
                [
                    (category_id, json.dumps(self._state.category_stats[category_id].state_dict()))
                    for category_id in sorted(self._dirty_stats)
                ],
            )
        if self._dirty_versions:
            connection.executemany(
                "INSERT OR REPLACE INTO shard_versions (shard, version) VALUES (?, ?)",
                [
                    (shard, self._state.shard_versions.get(shard, 0))
                    for shard in sorted(self._dirty_versions)
                ],
            )
        if self._stats_dirty:
            if self._partition is None:
                totals = self._state.reconciliation_stats
                connection.execute(
                    "INSERT OR REPLACE INTO reconciliation_stats"
                    " (id, offers_processed, pairs_seen, pairs_mapped, pairs_discarded)"
                    " VALUES (1, ?, ?, ?, ?)",
                    (
                        totals.offers_processed,
                        totals.pairs_seen,
                        totals.pairs_mapped,
                        totals.pairs_discarded,
                    ),
                )
                # The mirror total already folded every node partition in
                # at restore time; leaving those rows behind would count
                # them twice on the next restore.  An unpartitioned
                # writer (single engine resumed over a cluster's file)
                # therefore absorbs the partitions into the global row.
                connection.execute("DELETE FROM node_reconciliation_stats")
            else:
                # Shared-row strategy: a node flushes only its own
                # partition row, so concurrent barrier commits from
                # other node processes never collide on a shared total.
                own = self._partition_totals
                connection.execute(
                    "INSERT OR REPLACE INTO node_reconciliation_stats"
                    " (node_id, offers_processed, pairs_seen, pairs_mapped, pairs_discarded)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (
                        self._partition,
                        own.offers_processed,
                        own.pairs_seen,
                        own.pairs_mapped,
                        own.pairs_discarded,
                    ),
                )
        # The snapshot counter is incremented atomically in SQL (and read
        # back) rather than written from the mirror: several node-process
        # connections of a multi-process cluster commit through this same
        # row, and a mirror-based write would lose their increments.
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('commit_count', '1')"
            " ON CONFLICT(key) DO UPDATE SET"
            " value = CAST(CAST(value AS INTEGER) + 1 AS TEXT)"
        )
        # The new commit id is read *inside* the open write transaction:
        # another process committing concurrently cannot slip between the
        # increment and the read, so the journal rows below carry exactly
        # this barrier's id.  This is also why every engine flavor gets a
        # journal for free — single, multi-node (FencedStoreView
        # delegates here) and multi-process (each node process commits
        # through its own instance of this store) all pass this point.
        commit_id = int(self._meta("commit_count") or 0)
        self._fault_point("journal")
        if self._touched_clusters:
            with get_registry().span("store.journal_write"):
                connection.executemany(
                    "INSERT OR REPLACE INTO commit_journal"
                    " (commit_id, category_id, cluster_key, product) VALUES (?, ?, ?, ?)",
                    [
                        (
                            commit_id,
                            cluster_id[0],
                            cluster_id[1],
                            None
                            if state.product is None
                            else json.dumps(product_to_dict(state.product)),
                        )
                        for cluster_id, state in (
                            (cluster_id, self._state.clusters[cluster_id])
                            for cluster_id in self._touched_clusters
                            if cluster_id in self._state.clusters
                        )
                    ],
                )
        connection.commit()
        self._obs_commits.inc()
        self._commit_count = commit_id
        self._touched_clusters.clear()
        self._new_seen = []
        self._new_categories = []
        self._new_clusters = []
        self._new_offers = []
        self._dirty_products = {}
        self._dirty_stats = set()
        self._dirty_versions = set()
        self._stats_dirty = False

    def close(self) -> None:
        """Flush pending mutations and close the connection (idempotent)."""
        if self._connection is None:
            return
        self.commit()
        self._connection.close()
        self._connection = None

    @property
    def supports_rollback(self) -> bool:
        """True: the last on-disk commit is a restorable snapshot."""
        return True

    def _clear_journal(self) -> None:
        """Drop every journalled (not yet flushed) mutation."""
        self._new_seen = []
        self._new_categories = []
        self._new_clusters = []
        self._new_offers = []
        self._dirty_products = {}
        self._dirty_stats = set()
        self._dirty_versions = set()
        self._stats_dirty = False
        self._touched_clusters.clear()

    def _has_pending_mutations(self) -> bool:
        """Whether the journal holds mutations a mirror rebuild would lose."""
        return bool(
            self._new_seen
            or self._new_categories
            or self._new_clusters
            or self._new_offers
            or self._dirty_products
            or self._dirty_stats
            or self._dirty_versions
            or self._stats_dirty
        )

    def _rebuild_mirror(self) -> None:
        """Re-read the full persisted snapshot into a fresh mirror."""
        self._state = _InMemoryState()
        self._partition_totals = ReconciliationStats()
        self._restore()
        if self._num_shards:
            self._reindex_shards(self._num_shards)

    def rollback(self) -> None:
        """Discard everything since the last commit; reload from disk.

        The file is a consistent snapshot after every commit, so crash
        recovery is exactly a mirror rebuild: drop the journalled
        mutations, re-read the persisted state, and re-index the shards.
        The store token is deliberately kept — delta-protocol worker
        caches that ran ahead of the discarded batch are then caught by
        the version/base-size guards and resync from this same file.
        """
        connection = self._require_open()
        connection.rollback()
        self._clear_journal()
        self._rebuild_mirror()

    def refresh(self) -> None:
        """Rebuild the mirror from the last *committed* snapshot.

        The multi-process read path: after a cluster commit barrier the
        coordinator refreshes to observe what the node processes flushed
        through their own connections.  Refusing to refresh over pending
        local mutations (:class:`RuntimeError`) keeps the call safe —
        refresh between barriers, never mid-batch.
        """
        self._require_open()
        if self._has_pending_mutations():
            raise RuntimeError(
                "cannot refresh the catalog store mirror: uncommitted local "
                "mutations would be lost (commit or roll back first)"
            )
        self._rebuild_mirror()

    def refresh_shards(self, shard_indices: List[int]) -> None:
        """Reload selected shards' committed state into the mirror.

        Used on shard handoff: the new owner's mirror predates whatever
        the previous owner committed, so its clusters, products,
        category statistics and delta-protocol version counters for the
        moved shards are re-read from the file.  The caller must
        guarantee the previous owner has committed (membership changes
        happen between batch barriers, so it has).
        """
        connection = self._require_open()
        targets = {shard for shard in shard_indices if shard >= 0}
        if not targets or self._num_shards == 0:
            return
        for shard in targets:
            for cluster_id in self._state.shard_index.get(shard, ()):
                self._state.clusters.pop(cluster_id, None)
            self._state.shard_index[shard] = []
        reloaded: List[ClusterId] = []
        for category_id, cluster_key, product_json in connection.execute(
            "SELECT category_id, cluster_key, product FROM clusters"
        ).fetchall():
            shard = shard_for_category(category_id, self._num_shards)
            if shard not in targets:
                continue
            product = None
            if product_json is not None:
                product = product_from_dict(json.loads(product_json))
            cluster_id = (category_id, cluster_key)
            self._state.clusters[cluster_id] = ClusterState(
                shard_index=shard,
                cluster=OfferCluster(category_id=category_id, key=cluster_key),
                product=product,
            )
            self._state.shard_index[shard].append(cluster_id)
            reloaded.append(cluster_id)
        for category_id, cluster_key in reloaded:
            rows = connection.execute(
                "SELECT offer FROM cluster_offers"
                " WHERE category_id = ? AND cluster_key = ? ORDER BY position",
                (category_id, cluster_key),
            ).fetchall()
            self._state.clusters[(category_id, cluster_key)].cluster.offers.extend(
                offer_from_dict(json.loads(row[0])) for row in rows
            )
        for category_id, stats_json in connection.execute(
            "SELECT category_id, stats FROM category_stats"
        ).fetchall():
            if shard_for_category(category_id, self._num_shards) in targets:
                self._state.category_stats[category_id] = IncrementalTfIdf.from_state_dict(
                    json.loads(stats_json)
                )
        for shard, version in connection.execute(
            "SELECT shard, version FROM shard_versions"
        ).fetchall():
            if shard in targets:
                self._state.shard_versions[shard] = version

    @property
    def closed(self) -> bool:
        """Whether the connection was released (writes are then refused)."""
        return self._connection is None

    @property
    def path(self) -> str:
        """Absolute path of the backing SQLite file."""
        return self._path

    @property
    def partition(self) -> Optional[str]:
        """Node id this instance journals its global counters under.

        ``None`` for a single-writer (or coordinator) store; a node id
        for the per-process instances of a multi-process cluster.
        """
        return self._partition

    def worker_resync_path(self) -> Optional[str]:
        """The SQLite file itself: workers resync straight from it."""
        return self._path

    # -- commit intents --------------------------------------------------------

    def write_commit_intent(self, sequence: int, payload: bytes) -> None:
        """Durably record a batch's imminent commit round, immediately.

        Like :meth:`advance_shard_epoch`, the intent is flushed right
        away rather than journalled: it must survive exactly the crashes
        it guards against (a coordinator or node dying between vote and
        flush), and it must not be discarded by a batch rollback.  The
        coordinator's connection carries no journalled batch state —
        everything else is journalled Python-side — so this commit is
        precise.  Refused for partitioned (node) stores: only the
        coordinator runs commit barriers.
        """
        if self._partition is not None:
            raise RuntimeError(
                "a partitioned node store cannot write commit intents; "
                "only the coordinator's store instance runs the barrier"
            )
        connection = self._require_open()
        connection.execute(
            "INSERT OR REPLACE INTO commit_intents (id, sequence, payload)"
            " VALUES (1, ?, ?)",
            (sequence, payload),
        )
        connection.commit()
        self._commit_intent = (sequence, payload)

    def clear_commit_intent(self) -> None:
        """Drop the pending intent once its batch fully committed."""
        if self._partition is not None:
            raise RuntimeError(
                "a partitioned node store cannot clear commit intents; "
                "only the coordinator's store instance runs the barrier"
            )
        connection = self._require_open()
        connection.execute("DELETE FROM commit_intents WHERE id = 1")
        connection.commit()
        self._commit_intent = None

    def pending_commit_intent(self) -> Optional[Tuple[int, bytes]]:
        """The persisted ``(sequence, payload)`` intent, or ``None``.

        Read straight from the file: a restarted coordinator consults
        this before its first batch to replay an interrupted barrier.
        """
        connection = self._require_open()
        row = connection.execute(
            "SELECT sequence, payload FROM commit_intents WHERE id = 1"
        ).fetchone()
        self._commit_intent = None if row is None else (int(row[0]), row[1])
        return self._commit_intent

    # -- changed-cluster commit journal ----------------------------------------

    def journal_floor(self) -> int:
        """Highest commit id not covered by the durable journal."""
        self._require_open()
        floor = self._meta("journal_floor")
        return self._commit_count if floor is None else int(floor)

    def journal_entries(
        self, since: int
    ) -> Optional[List[Tuple[int, List[Tuple[ClusterId, Optional[Product]]]]]]:
        """Per-commit deltas after ``since`` from ``commit_journal``.

        Head and floor come from the file (not the mirror), so the call
        is correct even when other processes committed since this
        instance's last barrier.  Returns ``None`` when coverage of
        ``(since, head]`` cannot be proven.
        """
        connection = self._require_open()
        head = int(self._meta("commit_count") or 0)
        floor = self._meta("journal_floor")
        if floor is None or since < int(floor) or since > head:
            return None
        self._observe_journal_read(since)
        grouped: Dict[int, List[Tuple[ClusterId, Optional[Product]]]] = {}
        for commit_id, category_id, cluster_key, product_json in connection.execute(
            "SELECT commit_id, category_id, cluster_key, product FROM commit_journal"
            " WHERE commit_id > ? ORDER BY commit_id, category_id, cluster_key",
            (since,),
        ):
            product = (
                None
                if product_json is None
                else product_from_dict(json.loads(product_json))
            )
            grouped.setdefault(int(commit_id), []).append(
                ((category_id, cluster_key), product)
            )
        return [(commit_id, grouped[commit_id]) for commit_id in sorted(grouped)]

    def compact_journal(self, retain_commits: int = 0, auto: bool = False) -> int:
        """Drop journal rows, keeping coverage of the last ``retain_commits``.

        Flushed immediately (like fencing epochs): the raised floor must
        be visible to every reader process at once, or a reader could
        apply a delta the deleted rows no longer back.  Readers pinned
        below the new floor fall back to a full rebuild.

        ``auto=True`` retains the deepest observed reader lag instead
        (see :meth:`repro.runtime.state.CatalogStore.compact_journal`);
        only readers of *this* store instance count — cross-process
        readers (:class:`~repro.serving.reader.CatalogReader`) read the
        file directly and are invisible here, so auto-compact from the
        connection the readers poll through.
        """
        if retain_commits < 0:
            raise ValueError(f"retain_commits must be >= 0, got {retain_commits}")
        connection = self._require_open()
        head = int(self._meta("commit_count") or 0)
        if auto:
            low_water = self._take_auto_floor()
            if low_water is None:
                return self.journal_floor()
            floor = max(self.journal_floor(), min(low_water, head))
        else:
            floor = max(self.journal_floor(), head - retain_commits)
        connection.execute("DELETE FROM commit_journal WHERE commit_id <= ?", (floor,))
        connection.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('journal_floor', ?)",
            (str(floor),),
        )
        connection.commit()
        return floor

    # -- seen offers -----------------------------------------------------------

    def is_seen(self, offer_id: str) -> bool:
        """Whether an offer id was absorbed (mirror read, no disk I/O)."""
        return offer_id in self._state.seen_offer_ids

    def mark_seen(self, offer_id: str) -> bool:
        """Record an offer id in mirror + journal; ``False`` when known."""
        self._require_open()
        self._fault_point("mark_seen")
        seen = self._state.seen_offer_ids
        if offer_id in seen:
            return False
        seen.add(offer_id)
        self._new_seen.append(offer_id)
        return True

    def num_seen(self) -> int:
        """Distinct offer ids absorbed so far (mirror read)."""
        return len(self._state.seen_offer_ids)

    # -- assigned categories ---------------------------------------------------

    def record_category(self, offer_id: str, category_id: str) -> None:
        """Remember an offer's category (journalled, flushed at commit)."""
        self._require_open()
        self._state.assigned_categories[offer_id] = category_id
        self._new_categories.append((offer_id, category_id))

    def assigned_categories(self) -> Dict[str, str]:
        """A copy of the mirrored offer-id -> category-id map."""
        return dict(self._state.assigned_categories)

    # -- clusters --------------------------------------------------------------

    def get_cluster(self, cluster_id: ClusterId) -> Optional[ClusterState]:
        """The mirrored state of one cluster, or ``None``."""
        return self._state.clusters.get(cluster_id)

    def create_cluster(self, shard_index: int, cluster_id: ClusterId) -> ClusterState:
        """Create an empty cluster (journalled, flushed at commit)."""
        self._require_open()
        category_id, key = cluster_id
        state = ClusterState(
            shard_index=shard_index,
            cluster=OfferCluster(category_id=category_id, key=key),
        )
        self._state.clusters[cluster_id] = state
        self._state.shard_index.setdefault(shard_index, []).append(cluster_id)
        self._new_clusters.append(cluster_id)
        self._journal_touch(cluster_id)
        return state

    def append_offers(self, cluster_id: ClusterId, offers: List[Offer]) -> None:
        """Append offers to a cluster (mirror now, disk at commit)."""
        self._require_open()
        self._fault_point("append_offers")
        cluster = self._state.clusters[cluster_id].cluster
        position = len(cluster.offers)
        category_id, cluster_key = cluster_id
        for offset, offer in enumerate(offers):
            self._new_offers.append(
                (category_id, cluster_key, position + offset, json.dumps(offer_to_dict(offer)))
            )
        cluster.offers.extend(offers)
        self._journal_touch(cluster_id)

    def set_product(self, cluster_id: ClusterId, product: Optional[Product]) -> None:
        """Record a cluster's fused product (journalled)."""
        self._require_open()
        self._fault_point("set_product")
        self._state.clusters[cluster_id].product = product
        self._dirty_products[cluster_id] = product
        self._journal_touch(cluster_id)

    def iter_clusters(self) -> Iterator[Tuple[ClusterId, ClusterState]]:
        """Iterate over every mirrored cluster."""
        return iter(self._state.clusters.items())

    def shard_cluster_ids(self, shard_index: int) -> List[ClusterId]:
        """Ids of every mirrored cluster living in one shard."""
        return list(self._state.shard_index.get(shard_index, ()))

    def num_clusters(self) -> int:
        """Number of clusters tracked so far."""
        return len(self._state.clusters)

    def iter_products(self, page_size: int = 256) -> Iterator[Product]:
        """Stream committed products from disk, one page at a time.

        Unlike :meth:`sorted_products` (which serves the mirror and
        therefore includes uncommitted batch state), this reads the last
        *committed* snapshot via keyset pagination and never needs the
        mirror — the first concrete piece of the planned read-through
        mode for catalogs larger than RAM.  Uncommitted journal entries
        are invisible by construction: the journal lives Python-side
        until :meth:`commit` flushes it.
        """
        connection = self._require_open()
        after: Optional[ClusterId] = None
        while True:
            page = read_product_page(connection, after, page_size)
            if not page:
                return
            for _, product in page:
                yield product
            after = page[-1][0]

    # -- per-category statistics -----------------------------------------------

    def category_stats_for_update(self, category_id: str) -> IncrementalTfIdf:
        """Get-or-create mutable TF-IDF stats (persisted at commit)."""
        self._require_open()
        stats = self._state.category_stats.get(category_id)
        if stats is None:
            stats = IncrementalTfIdf()
            self._state.category_stats[category_id] = stats
        self._dirty_stats.add(category_id)
        return stats

    def category_stats(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The mirrored TF-IDF statistics of one category, or ``None``."""
        return self._state.category_stats.get(category_id)

    def category_vocabulary(self) -> Dict[str, int]:
        """category_id -> distinct value-token vocabulary size, by id."""
        return {
            category_id: stats.vocabulary_size
            for category_id, stats in sorted(self._state.category_stats.items())
        }

    # -- reconciliation stats --------------------------------------------------

    def merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        """Fold one batch's counters into the running totals.

        A partitioned store additionally accumulates its own slice,
        which is what :meth:`commit` flushes to the per-node row.
        """
        self._require_open()
        total = self._state.reconciliation_stats
        total.offers_processed += stats.offers_processed
        total.pairs_seen += stats.pairs_seen
        total.pairs_mapped += stats.pairs_mapped
        total.pairs_discarded += stats.pairs_discarded
        if self._partition is not None:
            own = self._partition_totals
            own.offers_processed += stats.offers_processed
            own.pairs_seen += stats.pairs_seen
            own.pairs_mapped += stats.pairs_mapped
            own.pairs_discarded += stats.pairs_discarded
        self._stats_dirty = True

    def reconciliation_stats(self) -> ReconciliationStats:
        """A copy of the accumulated totals (all partitions merged).

        May lag other processes' partitions until :meth:`refresh`.
        """
        totals = self._state.reconciliation_stats
        return ReconciliationStats(
            offers_processed=totals.offers_processed,
            pairs_seen=totals.pairs_seen,
            pairs_mapped=totals.pairs_mapped,
            pairs_discarded=totals.pairs_discarded,
        )

    # -- shard versions --------------------------------------------------------

    def shard_version(self, shard_index: int) -> int:
        """The delta-protocol version counter of one shard (mirror)."""
        return self._state.shard_versions.get(shard_index, 0)

    def advance_shard_version(self, shard_index: int) -> Tuple[int, int]:
        """Bump a shard's version (journalled); returns ``(base, new)``."""
        self._require_open()
        base = self._state.shard_versions.get(shard_index, 0)
        self._state.shard_versions[shard_index] = base + 1
        self._dirty_versions.add(shard_index)
        return base, base + 1

    # -- shard epochs ----------------------------------------------------------

    def shard_epoch(self, shard_index: int) -> int:
        """The authoritative fencing epoch of one shard.

        A partitioned (node-process) store reads the epoch straight from
        the file on every call: the coordinator advances epochs from
        *another process*, so the local mirror cannot be trusted for
        fencing decisions — a fenced-out zombie consulting its mirror
        would happily keep writing.  The unpartitioned instance is the
        only epoch writer and serves the mirror.
        """
        if self._partition is not None and self._connection is not None:
            row = self._connection.execute(
                "SELECT epoch FROM shard_epochs WHERE shard = ?", (shard_index,)
            ).fetchone()
            epoch = 0 if row is None else int(row[0])
            self._state.shard_epochs[shard_index] = epoch
            return epoch
        return self._state.shard_epochs.get(shard_index, 0)

    def advance_shard_epoch(self, shard_index: int) -> int:
        """Bump a shard's fencing epoch, durably and immediately.

        Unlike the journalled mutations, the epoch is flushed right away:
        fencing decisions must survive exactly the crashes they guard
        against, and they must not be discarded by a batch rollback.
        (The connection carries no other pending statements — everything
        else is journalled Python-side — so this commit is precise.)
        """
        if self._partition is not None:
            raise RuntimeError(
                "a partitioned node store cannot advance fencing epochs; "
                "only the coordinator's store instance fences shards"
            )
        connection = self._require_open()
        epoch = self._state.shard_epochs.get(shard_index, 0) + 1
        self._state.shard_epochs[shard_index] = epoch
        connection.execute(
            "INSERT OR REPLACE INTO shard_epochs (shard, epoch) VALUES (?, ?)",
            (shard_index, epoch),
        )
        connection.commit()
        return epoch
