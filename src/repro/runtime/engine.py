"""The high-throughput streaming synthesis engine.

:class:`SynthesisEngine` wraps the stages of
:class:`~repro.synthesis.pipeline.ProductSynthesisPipeline` into a
sharded, micro-batched executor: offers arrive in repeated
:meth:`SynthesisEngine.ingest` calls (a merchant feed stream), clusters
grow *incrementally* across batches, and only the clusters a batch
touched are re-fused — by category shard, in parallel when a thread- or
process-pool executor is plugged in.

Compared with looping ``pipeline.synthesize()`` over a stream (which must
re-run every stage over all offers seen so far to keep the product set
current), the engine does O(batch) work per batch instead of O(total),
reuses memoised text statistics (:mod:`repro.text.memo`), and maintains
per-category TF-IDF statistics (:class:`repro.text.tfidf.IncrementalTfIdf`)
without ever rebuilding them.

Product identifiers are content-derived
(:func:`repro.synthesis.pipeline.stable_product_id`), so the same cluster
keeps the same id no matter how the stream was batched, and ids never
collide across batches.

Examples
--------
>>> # doctest-style sketch (see tests/test_runtime_engine.py for runnable use)
>>> # engine = SynthesisEngine(catalog, correspondences, num_shards=8,
>>> #                          executor="process")
>>> # for batch in feed:
>>> #     report = engine.ingest(batch)
>>> # products = engine.products()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.correspondence import CorrespondenceSet
from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.model.products import Product
from repro.runtime.executors import (
    ProcessPoolShardExecutor,
    ShardExecutor,
    resolve_executor,
)
from repro.runtime.sharding import shard_for_category
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer, OfferCluster
from repro.synthesis.fusion import CentroidValueFusion, MemoizedValueFusion
from repro.synthesis.pipeline import ProductSynthesisPipeline, build_product_from_cluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["IngestReport", "EngineSnapshot", "SynthesisEngine"]


@dataclass
class IngestReport:
    """What one :meth:`SynthesisEngine.ingest` call did."""

    offers_in_batch: int = 0
    #: Offers not seen in any earlier batch (the rest were deduplicated).
    offers_new: int = 0
    offers_duplicate: int = 0
    #: New offers that carried a usable clustering key and joined a cluster.
    offers_clustered: int = 0
    #: New offers dropped for lack of a key-attribute value.
    offers_without_key: int = 0
    #: New offers dropped because no category could be assigned.
    offers_uncategorised: int = 0
    #: Clusters created or grown by this batch (and therefore re-fused).
    clusters_touched: int = 0
    #: Products created or refreshed by this batch.
    products_refreshed: int = 0


@dataclass
class EngineSnapshot:
    """A consistent view of the engine state after some ingests."""

    products: List[Product]
    num_clusters: int
    offers_ingested: int
    reconciliation_stats: ReconciliationStats
    #: offer_id -> category assigned by the classifier (or carried in).
    assigned_categories: Dict[str, str] = field(default_factory=dict)
    #: category_id -> distinct value-token vocabulary size accumulated so far.
    category_vocabulary: Dict[str, int] = field(default_factory=dict)

    def num_products(self) -> int:
        """Number of currently synthesized products."""
        return len(self.products)


@dataclass
class _ClusterState:
    """One cluster plus its cached fusion result."""

    cluster: OfferCluster
    product: Optional[Product] = None


#: One executor payload: fuse these clusters with these schema attributes.
_ShardTask = Tuple[List[Tuple[OfferCluster, List[str]]], object]


def _fuse_shard(task: _ShardTask) -> List[Optional[Product]]:
    """Fuse every (cluster, attribute-names) pair of one shard payload.

    Module-level and pure so process-pool executors can pickle it; fusion
    is deterministic, so all executors return identical products.
    """
    cluster_jobs, fusion = task
    return [
        build_product_from_cluster(cluster, attribute_names, fusion)
        for cluster, attribute_names in cluster_jobs
    ]


class SynthesisEngine:
    """Sharded, micro-batched, incrementally clustering synthesis runtime.

    Parameters
    ----------
    catalog, correspondences, extractor, category_classifier, fusion,
    min_cluster_size:
        As for :class:`~repro.synthesis.pipeline.ProductSynthesisPipeline`,
        whose stages the engine reuses.  ``min_cluster_size`` is applied at
        product-emission time, so a cluster below the threshold simply has
        no product *yet* and may still grow past it in a later batch.
    num_shards:
        Number of category shards; clusters never span shards.
    track_category_statistics:
        Maintain per-category :class:`~repro.text.tfidf.IncrementalTfIdf`
        statistics over ingested values (exposed via
        :meth:`category_statistics` and the snapshot).  Disable to shave
        per-offer tokenisation off the hot path when the statistics are
        not consumed.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``, or a
        pre-built executor instance.  Executor choice never changes the
        synthesized products, only the wall-clock time.
    max_workers:
        Worker count for pool executors (``None`` = library default).
    """

    def __init__(
        self,
        catalog: Catalog,
        correspondences: CorrespondenceSet,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_classifier: Optional[TitleCategoryClassifier] = None,
        clusterer: Optional[KeyAttributeClusterer] = None,
        fusion: Optional[CentroidValueFusion] = None,
        min_cluster_size: int = 1,
        num_shards: int = 4,
        executor: Union[str, ShardExecutor, None] = "serial",
        max_workers: Optional[int] = None,
        track_category_statistics: bool = True,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._pipeline = ProductSynthesisPipeline(
            catalog=catalog,
            correspondences=correspondences,
            extractor=extractor,
            category_classifier=category_classifier,
            clusterer=clusterer,
            fusion=fusion,
        )
        # A user-supplied clusterer may carry its own threshold, which the
        # pipeline honours at cluster() time; honour it here too so engine
        # and pipeline keep emitting identical products.
        self._min_cluster_size = max(
            min_cluster_size, getattr(self._pipeline.clusterer, "min_cluster_size", 1)
        )
        self._track_category_statistics = track_category_statistics
        self._num_shards = num_shards
        self._executor = resolve_executor(executor, max_workers=max_workers)
        # Process workers get the plain fusion (shipping a memo there is
        # dead weight: its updates never come back).  Serial and thread
        # execution share this memo across batches, so unchanged
        # attribute-value lists are selected once.  Either way the
        # selected values are identical — the memo is transparent.
        base_fusion = self._pipeline.fusion
        self._worker_fusion: CentroidValueFusion = base_fusion
        if not isinstance(self._executor, ProcessPoolShardExecutor):
            self._worker_fusion = MemoizedValueFusion(base_fusion)

        self._shards: List[Dict[Tuple[str, str], _ClusterState]] = [
            {} for _ in range(num_shards)
        ]
        self._seen_offer_ids: set = set()
        self._reconciliation_stats = ReconciliationStats()
        self._assigned_categories: Dict[str, str] = {}
        self._category_stats: Dict[str, IncrementalTfIdf] = {}

    # -- streaming ingest ------------------------------------------------------

    def ingest(self, offers: Sequence[Offer]) -> IngestReport:
        """Absorb one micro-batch of offers and refresh affected products.

        Re-ingesting an offer id that was already absorbed is a no-op
        (idempotent streams: merchant feeds re-send their inventory), so
        replaying a batch leaves the engine state byte-identical.
        """
        report = IngestReport(offers_in_batch=len(offers))
        fresh: List[Offer] = []
        for offer in offers:
            # Marking ids seen *while filtering* also deduplicates repeats
            # inside a single batch, not just across batches.
            if offer.offer_id in self._seen_offer_ids:
                continue
            self._seen_offer_ids.add(offer.offer_id)
            fresh.append(offer)
        report.offers_new = len(fresh)
        report.offers_duplicate = report.offers_in_batch - report.offers_new
        if not fresh:
            return report

        categorised = self._pipeline._assign_categories(fresh)
        extracted = self._extract_specifications(categorised)
        reconciled, stats = self._pipeline.reconciler.reconcile_offers(extracted)
        self._merge_reconciliation_stats(stats)
        for offer in categorised:
            if offer.category_id is not None:
                self._assigned_categories[offer.offer_id] = offer.category_id

        touched = self._route_to_clusters(reconciled, report)
        report.clusters_touched = len(touched)
        report.products_refreshed = self._refuse_clusters(touched)
        return report

    def _extract_specifications(self, offers: Sequence[Offer]) -> List[Offer]:
        """Extract landing-page specifications for offers that need them.

        Strictly per-offer: an offer that already carries a specification
        keeps it verbatim, only empty ones are extracted.  (The batch
        pipeline instead re-extracts a whole batch when any offer lacks a
        specification — a per-call decision that would make engine output
        depend on how the stream was micro-batched.)
        """
        extractor = self._pipeline.extractor
        if extractor is None:
            return list(offers)
        return [
            offer if len(offer.specification) > 0 else extractor.extract_offer(offer)
            for offer in offers
        ]

    def _route_to_clusters(
        self, reconciled: Sequence[Offer], report: IngestReport
    ) -> List[Tuple[int, Tuple[str, str]]]:
        """Append offers to their clusters; return the touched cluster keys."""
        clusterer = self._pipeline.clusterer
        touched: List[Tuple[int, Tuple[str, str]]] = []
        touched_set = set()
        for offer in reconciled:
            if offer.category_id is None:
                report.offers_uncategorised += 1
                continue
            key = clusterer.cluster_key(offer)
            if key is None:
                report.offers_without_key += 1
                continue
            self._update_category_stats(offer)
            shard_index = shard_for_category(offer.category_id, self._num_shards)
            cluster_id = (offer.category_id, key)
            state = self._shards[shard_index].get(cluster_id)
            if state is None:
                state = _ClusterState(
                    cluster=OfferCluster(category_id=offer.category_id, key=key)
                )
                self._shards[shard_index][cluster_id] = state
            state.cluster.offers.append(offer)
            report.offers_clustered += 1
            if (shard_index, cluster_id) not in touched_set:
                touched_set.add((shard_index, cluster_id))
                touched.append((shard_index, cluster_id))
        return touched

    def _refuse_clusters(self, touched: Sequence[Tuple[int, Tuple[str, str]]]) -> int:
        """Re-fuse the touched clusters (sharded, via the executor)."""
        by_shard: Dict[int, List[Tuple[str, str]]] = {}
        for shard_index, cluster_id in touched:
            by_shard.setdefault(shard_index, []).append(cluster_id)

        payloads: List[_ShardTask] = []
        payload_shards: List[int] = []
        payload_keys: List[List[Tuple[str, str]]] = []
        for shard_index in sorted(by_shard):
            jobs: List[Tuple[OfferCluster, List[str]]] = []
            keys: List[Tuple[str, str]] = []
            for cluster_id in by_shard[shard_index]:
                state = self._shards[shard_index][cluster_id]
                if state.cluster.size() < self._min_cluster_size:
                    state.product = None
                    continue
                jobs.append(
                    (state.cluster, self._pipeline.attribute_names_for(state.cluster))
                )
                keys.append(cluster_id)
            if jobs:
                payloads.append((jobs, self._worker_fusion))
                payload_shards.append(shard_index)
                payload_keys.append(keys)

        refreshed = 0
        results = self._executor.map_shards(_fuse_shard, payloads)
        for shard_index, keys, products in zip(payload_shards, payload_keys, results):
            for cluster_id, product in zip(keys, products):
                state = self._shards[shard_index][cluster_id]
                state.product = product
                if product is not None:
                    refreshed += 1
        return refreshed

    def _update_category_stats(self, offer: Offer) -> None:
        if not self._track_category_statistics:
            return
        category_id = offer.category_id or ""
        stats = self._category_stats.get(category_id)
        if stats is None:
            stats = IncrementalTfIdf()
            self._category_stats[category_id] = stats
        for pair in offer.specification:
            stats.add(pair.value)

    def _merge_reconciliation_stats(self, stats: ReconciliationStats) -> None:
        total = self._reconciliation_stats
        total.offers_processed += stats.offers_processed
        total.pairs_seen += stats.pairs_seen
        total.pairs_mapped += stats.pairs_mapped
        total.pairs_discarded += stats.pairs_discarded

    # -- views ----------------------------------------------------------------

    def products(self) -> List[Product]:
        """All current synthesized products.

        Sorted by (category, cluster key), so the listing is deterministic
        regardless of shard count, executor, or how the stream was batched.
        """
        collected: List[Tuple[Tuple[str, str], Product]] = []
        for shard in self._shards:
            for cluster_id, state in shard.items():
                if state.product is not None:
                    collected.append((cluster_id, state.product))
        collected.sort(key=lambda item: item[0])
        return [product for _, product in collected]

    def num_clusters(self) -> int:
        """Number of clusters tracked so far (including sub-threshold ones)."""
        return sum(len(shard) for shard in self._shards)

    def category_statistics(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The incremental TF-IDF statistics of one category (or ``None``)."""
        return self._category_stats.get(category_id)

    def snapshot(self) -> EngineSnapshot:
        """A consistent summary of everything ingested so far."""
        return EngineSnapshot(
            products=self.products(),
            num_clusters=self.num_clusters(),
            offers_ingested=len(self._seen_offer_ids),
            # Copy: a snapshot must not keep mutating with later ingests.
            reconciliation_stats=replace(self._reconciliation_stats),
            assigned_categories=dict(self._assigned_categories),
            category_vocabulary={
                category_id: stats.vocabulary_size
                for category_id, stats in sorted(self._category_stats.items())
            },
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release executor workers (the engine stays usable afterwards)."""
        self._executor.close()

    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()
