"""The high-throughput streaming synthesis engine.

:class:`SynthesisEngine` wraps the stages of
:class:`~repro.synthesis.pipeline.ProductSynthesisPipeline` into a
sharded, micro-batched executor: offers arrive in repeated
:meth:`SynthesisEngine.ingest` calls (a merchant feed stream), clusters
grow *incrementally* across batches, and only the clusters a batch
touched are re-fused — by category shard, in parallel when a thread- or
process-pool executor is plugged in.

All engine state — clusters, cached fusion results, seen-offer ids,
per-category TF-IDF statistics, reconciliation counters — lives behind a
pluggable :class:`~repro.runtime.state.CatalogStore`:

* ``store="memory"`` (default) keeps the original zero-copy in-process
  behaviour;
* ``store="sqlite"`` (with ``store_path``) commits after every ingest
  and restores the full engine state across process restarts, so a
  stream can resume exactly where a killed process left off.

With a process-pool executor the engine speaks the *delta re-fusion
protocol* (:mod:`repro.runtime.delta`): workers keep shard-resident
cluster state and each batch ships only the new offers plus touched
cluster ids, with a per-shard version counter so a worker that restarted
or fell behind resyncs from the store.  Serial and thread execution
share the store's memory directly and need no deltas.

Compared with looping ``pipeline.synthesize()`` over a stream (which must
re-run every stage over all offers seen so far to keep the product set
current), the engine does O(batch) work per batch instead of O(total),
reuses memoised text statistics (:mod:`repro.text.memo`), and maintains
per-category TF-IDF statistics (:class:`repro.text.tfidf.IncrementalTfIdf`)
without ever rebuilding them.

Product identifiers are content-derived
(:func:`repro.synthesis.pipeline.stable_product_id`), so the same cluster
keeps the same id no matter how the stream was batched, and ids never
collide across batches.

Examples
--------
>>> # doctest-style sketch (see tests/test_runtime_engine.py for runnable use)
>>> # engine = SynthesisEngine(catalog, correspondences, num_shards=8,
>>> #                          executor="process", store="sqlite",
>>> #                          store_path="catalog.sqlite3")
>>> # for batch in feed:
>>> #     report = engine.ingest(batch)
>>> # products = engine.products()
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.correspondence import CorrespondenceSet
from repro.model.catalog import Catalog
from repro.model.offers import Offer
from repro.model.products import Product
from repro.obs import get_registry
from repro.runtime.delta import (
    ClusterDelta,
    DeltaShardTask,
    TransportStats,
    fuse_delta_shard,
)
from repro.runtime.executors import ShardExecutor, resolve_executor
from repro.runtime.sharding import shard_for_category
from repro.runtime.state import CatalogStore, ClusterId, resolve_store
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.clustering import KeyAttributeClusterer, OfferCluster
from repro.synthesis.fusion import CentroidValueFusion, MemoizedValueFusion
from repro.synthesis.pipeline import ProductSynthesisPipeline, build_product_from_cluster
from repro.synthesis.reconciliation import ReconciliationStats
from repro.text.tfidf import IncrementalTfIdf

__all__ = ["CommitEvent", "IngestReport", "EngineSnapshot", "SynthesisEngine"]


@dataclass
class IngestReport:
    """What one :meth:`SynthesisEngine.ingest` call did."""

    offers_in_batch: int = 0
    #: Offers not seen in any earlier batch (the rest were deduplicated).
    offers_new: int = 0
    offers_duplicate: int = 0
    #: New offers that carried a usable clustering key and joined a cluster.
    offers_clustered: int = 0
    #: New offers dropped for lack of a key-attribute value.
    offers_without_key: int = 0
    #: New offers dropped because no category could be assigned.
    offers_uncategorised: int = 0
    #: Clusters created or grown by this batch (and therefore re-fused).
    clusters_touched: int = 0
    #: Products created or refreshed by this batch.
    products_refreshed: int = 0

    def merge(self, other: "IngestReport") -> None:
        """Fold another report's counters into this one (plain sums).

        A multi-node engine aggregates the per-node reports of one
        cluster batch this way; the caller owns ``offers_in_batch`` /
        ``offers_duplicate`` semantics when sub-batches overlap.
        """
        self.offers_in_batch += other.offers_in_batch
        self.offers_new += other.offers_new
        self.offers_duplicate += other.offers_duplicate
        self.offers_clustered += other.offers_clustered
        self.offers_without_key += other.offers_without_key
        self.offers_uncategorised += other.offers_uncategorised
        self.clusters_touched += other.clusters_touched
        self.products_refreshed += other.products_refreshed


@dataclass
class CommitEvent:
    """One committed ingest batch, as delivered to commit listeners.

    The per-commit changed-product feed of the read side
    (:mod:`repro.serving`): after every successful commit barrier the
    engine tells its listeners exactly which clusters' products the
    batch created, refreshed, or left below the emission threshold, so a
    serving index can stay current incrementally instead of re-reading
    the whole catalog.  Events are emitted strictly *after* the store
    commit, so a listener only ever observes committed prefixes of the
    stream — the snapshot-isolation contract queries rely on.
    """

    #: The store's commit counter after this barrier (identifies the
    #: committed stream prefix the event completes).
    commit_count: int
    #: (cluster id, fused product) per cluster the batch touched;
    #: ``None`` marks a cluster still below the emission threshold.
    changed: List[Tuple[ClusterId, Optional[Product]]]
    #: The ingest report of the batch that produced this commit.
    report: IngestReport

    def num_changed(self) -> int:
        """Number of clusters the committed batch touched."""
        return len(self.changed)


@dataclass
class EngineSnapshot:
    """A consistent view of the engine state after some ingests."""

    products: List[Product]
    num_clusters: int
    offers_ingested: int
    reconciliation_stats: ReconciliationStats
    #: offer_id -> category assigned by the classifier (or carried in).
    assigned_categories: Dict[str, str] = field(default_factory=dict)
    #: category_id -> distinct value-token vocabulary size accumulated so far.
    category_vocabulary: Dict[str, int] = field(default_factory=dict)

    def num_products(self) -> int:
        """Number of currently synthesized products."""
        return len(self.products)


@dataclass
class _PendingAppend:
    """This batch's additions to one cluster, before re-fusion."""

    shard_index: int
    #: Cluster size before this batch (what a worker delta applies on top of).
    base_size: int
    offers: List[Offer] = field(default_factory=list)


#: One full-state executor payload: fuse these clusters with these
#: schema attributes (the non-delta protocol; see repro.runtime.delta
#: for the incremental one).
_ShardTask = Tuple[List[Tuple[OfferCluster, List[str]]], object]


def _fuse_shard(task: _ShardTask) -> List[Optional[Product]]:
    """Fuse every (cluster, attribute-names) pair of one shard payload.

    Module-level and pure so process-pool executors can pickle it; fusion
    is deterministic, so all executors return identical products.
    """
    cluster_jobs, fusion = task
    return [
        build_product_from_cluster(cluster, attribute_names, fusion)
        for cluster, attribute_names in cluster_jobs
    ]


class SynthesisEngine:
    """Sharded, micro-batched, incrementally clustering synthesis runtime.

    Parameters
    ----------
    catalog, correspondences, extractor, category_classifier, fusion,
    min_cluster_size:
        As for :class:`~repro.synthesis.pipeline.ProductSynthesisPipeline`,
        whose stages the engine reuses.  ``min_cluster_size`` is applied at
        product-emission time, so a cluster below the threshold simply has
        no product *yet* and may still grow past it in a later batch.
    num_shards:
        Number of category shards; clusters never span shards.
    track_category_statistics:
        Maintain per-category :class:`~repro.text.tfidf.IncrementalTfIdf`
        statistics over ingested values (exposed via
        :meth:`category_statistics` and the snapshot).  Disable to shave
        per-offer tokenisation off the hot path when the statistics are
        not consumed.
    executor:
        ``"serial"`` (default), ``"thread"``, ``"process"``, or a
        pre-built executor instance.  Executor choice never changes the
        synthesized products, only the wall-clock time.
    max_workers:
        Worker count for pool executors (``None`` = library default).
    store:
        ``"memory"`` (default), ``"sqlite"`` (durable; requires
        ``store_path``), or a pre-built
        :class:`~repro.runtime.state.CatalogStore`.  Opening a durable
        store that already holds state resumes the stream exactly where
        it left off — replayed offers are deduplicated, clusters keep
        growing, and products stay byte-identical to an uninterrupted
        run.  Store choice never changes the synthesized products.
    store_path:
        Filesystem path of the SQLite store (``store="sqlite"`` only).
    delta_refusion:
        ``None`` (default) enables the delta protocol whenever the
        executor supports pinned dispatch (the process pool); ``False``
        forces full-state shipping; ``True`` requires a pinning executor.
        Either way the products are byte-identical — only the payload
        volume differs (see :meth:`transport_stats`).
    """

    def __init__(
        self,
        catalog: Catalog,
        correspondences: CorrespondenceSet,
        extractor: Optional[WebPageAttributeExtractor] = None,
        category_classifier: Optional[TitleCategoryClassifier] = None,
        clusterer: Optional[KeyAttributeClusterer] = None,
        fusion: Optional[CentroidValueFusion] = None,
        min_cluster_size: int = 1,
        num_shards: int = 4,
        executor: Union[str, ShardExecutor, None] = "serial",
        max_workers: Optional[int] = None,
        track_category_statistics: bool = True,
        store: Union[str, CatalogStore, None] = None,
        store_path: Optional[str] = None,
        delta_refusion: Optional[bool] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self._pipeline = ProductSynthesisPipeline(
            catalog=catalog,
            correspondences=correspondences,
            extractor=extractor,
            category_classifier=category_classifier,
            clusterer=clusterer,
            fusion=fusion,
        )
        # A user-supplied clusterer may carry its own threshold, which the
        # pipeline honours at cluster() time; honour it here too so engine
        # and pipeline keep emitting identical products.
        self._min_cluster_size = max(
            min_cluster_size, getattr(self._pipeline.clusterer, "min_cluster_size", 1)
        )
        self._track_category_statistics = track_category_statistics
        self._num_shards = num_shards
        self._executor = resolve_executor(executor, max_workers=max_workers)

        # The engine owns (and therefore closes) stores it resolved from a
        # name; a user-supplied instance stays open for reuse elsewhere.
        self._owns_store = not isinstance(store, CatalogStore)
        self._store = resolve_store(store, path=store_path)
        self._store.bind(num_shards)

        supports_pinning = getattr(self._executor, "supports_pinning", False)
        if delta_refusion and not supports_pinning:
            raise ValueError(
                "delta_refusion=True requires an executor with pinned dispatch "
                f"(got {self._executor.name!r}); use executor='process'"
            )
        self._delta_refusion = (
            supports_pinning if delta_refusion is None else bool(delta_refusion)
        )
        self._transport_stats = TransportStats()
        self._commit_listeners: List[Callable[[CommitEvent], None]] = []
        self._closed = False

        # Observability: handles are resolved once (per-batch increments
        # only — nothing on the per-offer path touches the registry), and
        # the pre-existing transport accounting is bridged through a
        # weakref provider so the registry reads it without double-writes.
        registry = get_registry()
        self._obs = registry
        self._obs_batches = registry.counter(
            "engine_batches_total", help="Micro-batches ingested by synthesis engines."
        )
        offers_help = "Offers seen by ingest, by dedup outcome."
        self._obs_offers_new = registry.counter(
            "engine_offers_total", help=offers_help, labels={"outcome": "new"}
        )
        self._obs_offers_dup = registry.counter(
            "engine_offers_total", help=offers_help, labels={"outcome": "duplicate"}
        )
        self._obs_clusters = registry.counter(
            "engine_clusters_touched_total",
            help="Clusters mutated by ingested batches.",
        )
        self._obs_products = registry.counter(
            "engine_products_refreshed_total",
            help="Products (re-)fused by ingested batches.",
        )
        engine_ref = weakref.ref(self)

        def _transport_provider() -> Dict[str, object]:
            engine = engine_ref()
            if engine is None:
                return {}
            return engine._transport_stats.metrics_fragment()

        self._obs_provider = registry.add_provider(_transport_provider)

        # Full-state process payloads get the plain fusion (shipping a
        # memo there is dead weight: its updates never come back); delta
        # workers wrap the base fusion in their own shard-resident memo.
        # Serial and thread execution share one memo across batches, so
        # unchanged attribute-value lists are selected once.  Either way
        # the selected values are identical — the memo is transparent.
        base_fusion = self._pipeline.fusion
        self._base_fusion = base_fusion
        self._worker_fusion: CentroidValueFusion = base_fusion
        if not supports_pinning:
            self._worker_fusion = MemoizedValueFusion(base_fusion)

    # -- streaming ingest ------------------------------------------------------

    def ingest(self, offers: Sequence[Offer]) -> IngestReport:
        """Absorb one micro-batch of offers and refresh affected products.

        Re-ingesting an offer id that was already absorbed is a no-op
        (idempotent streams: merchant feeds re-send their inventory), so
        replaying a batch leaves the engine state byte-identical.  The
        store commits at the end of every ingest, so with a durable
        backend a crash loses at most the batch that was in flight.
        """
        report = IngestReport(offers_in_batch=len(offers))
        if self._store.closed:
            # Fail fast: processing the batch into the orphaned mirror
            # would mark its offers seen without ever persisting them.
            raise RuntimeError(
                "cannot ingest: the engine's catalog store is closed "
                "(reopen the store path with a new engine to resume)"
            )
        # Ingesting re-arms a closed engine (memory-store engines stay
        # usable after close(); executor pools are re-created lazily —
        # and the transport provider close() unregistered comes back).
        if self._closed:
            self._obs.add_provider(self._obs_provider)
            self._closed = False
        # Filtering against both sets also deduplicates repeats inside a
        # single batch, not just across batches.  Ids are only *marked*
        # seen after the fallible pipeline stages below succeed, so a
        # batch that raises (untrained classifier, extractor failure)
        # can be retried instead of being silently dropped as duplicate.
        fresh: List[Offer] = []
        with self._obs.span("ingest.dedup"):
            batch_ids = set()
            for offer in offers:
                if self._store.is_seen(offer.offer_id) or offer.offer_id in batch_ids:
                    continue
                batch_ids.add(offer.offer_id)
                fresh.append(offer)
        report.offers_new = len(fresh)
        report.offers_duplicate = report.offers_in_batch - report.offers_new
        if not fresh:
            with self._obs.span("ingest.commit_barrier"):
                self._store.commit()
            self._obs_batches.inc()
            if report.offers_duplicate:
                self._obs_offers_dup.inc(report.offers_duplicate)
            self._notify_commit(report, [])
            return report

        with self._obs.span("ingest.classify"):
            categorised = self._pipeline._assign_categories(fresh)
        extracted = self._extract_specifications(categorised)
        reconciled, stats = self._pipeline.reconciler.reconcile_offers(extracted)
        for offer in fresh:
            self._store.mark_seen(offer.offer_id)
        self._store.merge_reconciliation_stats(stats)
        for offer in categorised:
            if offer.category_id is not None:
                self._store.record_category(offer.offer_id, offer.category_id)

        with self._obs.span("ingest.route"):
            pending = self._route_to_clusters(reconciled, report)
        report.clusters_touched = len(pending)
        with self._obs.span("ingest.fuse"):
            report.products_refreshed = self._refuse_clusters(pending)
        self._transport_stats.batches += 1
        with self._obs.span("ingest.commit_barrier"):
            self._store.commit()
        self._obs_batches.inc()
        self._obs_offers_new.inc(report.offers_new)
        if report.offers_duplicate:
            self._obs_offers_dup.inc(report.offers_duplicate)
        self._obs_clusters.inc(report.clusters_touched)
        self._obs_products.inc(report.products_refreshed)
        self._notify_commit(report, list(pending))
        return report

    def classify_offers(self, offers: Sequence[Offer]) -> List[Offer]:
        """Run only the category-assignment stage over ``offers``.

        Exactly the classification :meth:`ingest` would perform — offers
        already carrying a category keep it, the rest are classified by
        title — with no store writes and no other pipeline stages.
        Cluster nodes use this to classify hint-routed offers locally, so
        a coordinator can route on a cheap hint and still hand every node
        a fully-categorised sub-batch whose later ingest is byte-identical
        to coordinator-side classification.
        """
        return self._pipeline._assign_categories(list(offers))

    def _extract_specifications(self, offers: Sequence[Offer]) -> List[Offer]:
        """Extract landing-page specifications for offers that need them.

        Strictly per-offer: an offer that already carries a specification
        keeps it verbatim, only empty ones are extracted.  (The batch
        pipeline instead re-extracts a whole batch when any offer lacks a
        specification — a per-call decision that would make engine output
        depend on how the stream was micro-batched.)
        """
        extractor = self._pipeline.extractor
        if extractor is None:
            return list(offers)
        return [
            offer if len(offer.specification) > 0 else extractor.extract_offer(offer)
            for offer in offers
        ]

    def _route_to_clusters(
        self, reconciled: Sequence[Offer], report: IngestReport
    ) -> "Dict[ClusterId, _PendingAppend]":
        """Route offers to their clusters; returns this batch's appends.

        The returned dict is keyed by cluster id in first-touch order and
        records, per touched cluster, the pre-batch size plus the new
        offers — exactly what both re-fusion protocols need.
        """
        clusterer = self._pipeline.clusterer
        pending: Dict[ClusterId, _PendingAppend] = {}
        for offer in reconciled:
            if offer.category_id is None:
                report.offers_uncategorised += 1
                continue
            key = clusterer.cluster_key(offer)
            if key is None:
                report.offers_without_key += 1
                continue
            self._update_category_stats(offer)
            cluster_id: ClusterId = (offer.category_id, key)
            entry = pending.get(cluster_id)
            if entry is None:
                shard_index = shard_for_category(offer.category_id, self._num_shards)
                state = self._store.get_cluster(cluster_id)
                if state is None:
                    state = self._store.create_cluster(shard_index, cluster_id)
                entry = _PendingAppend(shard_index=shard_index, base_size=state.size())
                pending[cluster_id] = entry
            entry.offers.append(offer)
            report.offers_clustered += 1
        for cluster_id, entry in pending.items():
            self._store.append_offers(cluster_id, entry.offers)
        return pending

    def _refuse_clusters(self, pending: "Dict[ClusterId, _PendingAppend]") -> int:
        """Re-fuse the touched clusters (sharded, via the executor)."""
        by_shard: Dict[int, List[ClusterId]] = {}
        for cluster_id, entry in pending.items():
            by_shard.setdefault(entry.shard_index, []).append(cluster_id)
        if not by_shard:
            return 0
        if self._delta_refusion:
            return self._refuse_delta(by_shard, pending)
        return self._refuse_full(by_shard)

    # -- full-state protocol ---------------------------------------------------

    def _refuse_full(self, by_shard: Dict[int, List[ClusterId]]) -> int:
        """Ship complete touched-cluster contents (the original protocol)."""
        payloads: List[_ShardTask] = []
        payload_keys: List[List[ClusterId]] = []
        for shard_index in sorted(by_shard):
            jobs: List[Tuple[OfferCluster, List[str]]] = []
            keys: List[ClusterId] = []
            for cluster_id in by_shard[shard_index]:
                state = self._store.get_cluster(cluster_id)
                if state.size() < self._min_cluster_size:
                    self._store.set_product(cluster_id, None)
                    continue
                jobs.append(
                    (state.cluster, self._pipeline.attribute_names_for(state.cluster))
                )
                keys.append(cluster_id)
                self._transport_stats.clusters_shipped += 1
                self._transport_stats.offers_shipped += state.size()
            if jobs:
                payloads.append((jobs, self._worker_fusion))
                payload_keys.append(keys)
        self._transport_stats.shard_tasks += len(payloads)

        refreshed = 0
        results = self._executor.map_shards(_fuse_shard, payloads)
        for keys, products in zip(payload_keys, results):
            for cluster_id, product in zip(keys, products):
                self._store.set_product(cluster_id, product)
                if product is not None:
                    refreshed += 1
        return refreshed

    # -- delta protocol --------------------------------------------------------

    def _delta_for(
        self, cluster_id: ClusterId, base_size: int, offers: List[Offer]
    ) -> ClusterDelta:
        state = self._store.get_cluster(cluster_id)
        self._transport_stats.clusters_shipped += 1
        self._transport_stats.offers_shipped += len(offers)
        return ClusterDelta(
            cluster_id=cluster_id,
            attribute_names=self._pipeline.attribute_names_for(state.cluster),
            base_size=base_size,
            new_offers=offers,
            fuse=state.size() >= self._min_cluster_size,
        )

    def _dispatch_delta_tasks(
        self, tasks_by_shard: Dict[int, List[ClusterDelta]]
    ) -> List[ClusterId]:
        """Dispatch one delta task per shard; returns clusters to re-ship.

        Applies every fused product to the store; clusters a worker could
        not reconstruct (restart without a durable resync source) are
        returned for a full-content retry.
        """
        payloads: List[DeltaShardTask] = []
        shards: List[int] = []
        resync_path = self._store.worker_resync_path()
        for shard_index in sorted(tasks_by_shard):
            base_version, new_version = self._store.advance_shard_version(shard_index)
            payloads.append(
                DeltaShardTask(
                    store_token=self._store.token,
                    shard_index=shard_index,
                    base_version=base_version,
                    new_version=new_version,
                    deltas=tasks_by_shard[shard_index],
                    fusion=self._base_fusion,
                    resync_path=resync_path,
                )
            )
            shards.append(shard_index)
        self._transport_stats.shard_tasks += len(payloads)

        results = self._executor.map_pinned(fuse_delta_shard, payloads, shards)
        missing: List[ClusterId] = []
        for task, result in zip(payloads, results):
            unresolved = set(result.missing)
            for delta, product in zip(task.deltas, result.products):
                if delta.cluster_id in unresolved:
                    continue
                self._store.set_product(delta.cluster_id, product if delta.fuse else None)
            self._transport_stats.worker_resyncs += result.resynced
            missing.extend(result.missing)
        return missing

    def _refuse_delta(
        self,
        by_shard: Dict[int, List[ClusterId]],
        pending: "Dict[ClusterId, _PendingAppend]",
    ) -> int:
        """Ship only new offers per touched cluster (pinned workers)."""
        tasks_by_shard: Dict[int, List[ClusterDelta]] = {}
        for shard_index in sorted(by_shard):
            tasks_by_shard[shard_index] = [
                self._delta_for(
                    cluster_id, pending[cluster_id].base_size, pending[cluster_id].offers
                )
                for cluster_id in by_shard[shard_index]
            ]
        missing = self._dispatch_delta_tasks(tasks_by_shard)

        if missing:
            # A worker restarted and had no durable store to resync from:
            # re-ship those clusters in full (base_size=0 = replace).
            self._transport_stats.full_retries += len(missing)
            retry_by_shard: Dict[int, List[ClusterDelta]] = {}
            for cluster_id in missing:
                state = self._store.get_cluster(cluster_id)
                delta = ClusterDelta(
                    cluster_id=cluster_id,
                    attribute_names=self._pipeline.attribute_names_for(state.cluster),
                    base_size=0,
                    new_offers=list(state.cluster.offers),
                    fuse=state.size() >= self._min_cluster_size,
                )
                self._transport_stats.clusters_shipped += 1
                self._transport_stats.offers_shipped += state.size()
                retry_by_shard.setdefault(state.shard_index, []).append(delta)
            still_missing = self._dispatch_delta_tasks(retry_by_shard)
            # base_size=0 replacements always apply; fuse any leftovers
            # engine-side so no cluster is ever silently dropped.
            for cluster_id in still_missing:  # pragma: no cover - defensive
                state = self._store.get_cluster(cluster_id)
                product = None
                if state.size() >= self._min_cluster_size:
                    product = build_product_from_cluster(
                        state.cluster,
                        self._pipeline.attribute_names_for(state.cluster),
                        self._base_fusion,
                    )
                self._store.set_product(cluster_id, product)

        refreshed = 0
        for cluster_id in pending:
            state = self._store.get_cluster(cluster_id)
            if state.product is not None:
                refreshed += 1
        return refreshed

    # -- statistics ------------------------------------------------------------

    def _update_category_stats(self, offer: Offer) -> None:
        if not self._track_category_statistics:
            return
        stats = self._store.category_stats_for_update(offer.category_id or "")
        for pair in offer.specification:
            stats.add(pair.value)

    # -- views ----------------------------------------------------------------

    def products(self) -> List[Product]:
        """All current synthesized products.

        Sorted by (category, cluster key), so the listing is deterministic
        regardless of shard count, executor, store backend, or how the
        stream was batched.
        """
        return self._store.sorted_products()

    def num_clusters(self) -> int:
        """Number of clusters tracked so far (including sub-threshold ones)."""
        return self._store.num_clusters()

    def category_statistics(self, category_id: str) -> Optional[IncrementalTfIdf]:
        """The incremental TF-IDF statistics of one category (or ``None``)."""
        return self._store.category_stats(category_id)

    @property
    def store(self) -> CatalogStore:
        """The catalog store holding this engine's state."""
        return self._store

    def transport_stats(self) -> TransportStats:
        """Cumulative executor-payload accounting (see :class:`TransportStats`)."""
        return self._transport_stats

    def detach_metrics_provider(self) -> None:
        """Stop contributing transport counters to the metrics registry.

        ``close`` calls this; so does the cluster layer when retiring a
        node whose transport accounting it folds into its own retired
        totals — leaving the provider registered would count the same
        frames twice in every later snapshot.
        """
        self._obs.remove_provider(self._obs_provider)

    # -- commit feed -----------------------------------------------------------

    def add_commit_listener(self, listener: Callable[[CommitEvent], None]) -> None:
        """Subscribe to the per-commit changed-product feed.

        ``listener`` is invoked synchronously at the end of every
        successful :meth:`ingest`, strictly after the store commit, with
        a :class:`CommitEvent` describing the clusters the batch touched
        and their (re-)fused products.  Because the call happens after
        the commit barrier, a listener that maintains derived state (the
        serving index) only ever observes fully committed batches — it
        can never see a torn prefix.  A listener that raises propagates
        out of :meth:`ingest`; the batch itself is already committed.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener: Callable[[CommitEvent], None]) -> None:
        """Unsubscribe a previously added commit listener (idempotent)."""
        try:
            self._commit_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_commit(self, report: IngestReport, changed_ids: List[ClusterId]) -> None:
        """Deliver one :class:`CommitEvent` to every subscribed listener."""
        if not self._commit_listeners:
            return
        changed: List[Tuple[ClusterId, Optional[Product]]] = [
            (cluster_id, self._store.get_cluster(cluster_id).product)
            for cluster_id in changed_ids
        ]
        event = CommitEvent(
            commit_count=self._store.commit_count, changed=changed, report=report
        )
        for listener in list(self._commit_listeners):
            listener(event)

    def snapshot(self) -> EngineSnapshot:
        """A consistent summary of everything ingested so far."""
        return EngineSnapshot(
            products=self.products(),
            num_clusters=self.num_clusters(),
            offers_ingested=self._store.num_seen(),
            # The store hands out copies, so a snapshot never keeps
            # mutating with later ingests.
            reconciliation_stats=self._store.reconciliation_stats(),
            assigned_categories=self._store.assigned_categories(),
            category_vocabulary=self._store.category_vocabulary(),
        )

    # -- lifecycle -------------------------------------------------------------

    def release_workers(self) -> None:
        """Shut down executor workers without touching the store.

        Pools are re-created lazily, so the engine stays usable.  The
        cluster layer uses this to retire a node whose store view was
        fenced — committing through that view would (correctly) raise,
        but its worker processes still have to go.  Cluster *node
        processes* (:mod:`repro.runtime.procnode`) call it on shutdown
        and on coordinator loss, so an engine hosted inside a node never
        leaks a worker pool past its process's lifetime.
        """
        self._executor.close()

    def close(self) -> None:
        """Release executor workers and flush/close an engine-owned store.

        Idempotent: calling it twice (or after ``__exit__``) is safe.  A
        store passed in as an instance is committed but left open for its
        owner; with the default in-memory store the engine stays fully
        usable after ``close`` (workers are re-created lazily).
        """
        if self._closed:
            return
        self._closed = True
        self.detach_metrics_provider()
        self.release_workers()
        if self._owns_store:
            self._store.close()
        else:
            self._store.commit()

    def __enter__(self) -> "SynthesisEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self.close()
