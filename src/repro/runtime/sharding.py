"""Stable category sharding for the run-time engine.

Offers are partitioned by leaf category: clusters never span categories
(the cluster key embeds the category), so category is the natural
parallelism boundary — every cluster lives wholly inside one shard and
shards can be fused independently.

The shard function must be *stable across processes and runs*: Python's
built-in ``hash`` is randomised per interpreter (PYTHONHASHSEED), which
would scatter the same category to different shards in different worker
processes.  CRC-32 is deterministic everywhere.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Sequence, TypeVar

__all__ = ["shard_for_category", "partition_by_shard"]

T = TypeVar("T")


def shard_for_category(category_id: str, num_shards: int) -> int:
    """The shard index of a leaf category (deterministic across processes)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return 0
    return zlib.crc32(category_id.encode("utf-8")) % num_shards


def partition_by_shard(
    items: Iterable[T],
    category_ids: Sequence[str],
    num_shards: int,
) -> Dict[int, List[T]]:
    """Group ``items`` by the shard of their parallel ``category_ids``.

    Returns only non-empty shards; within a shard, items keep their input
    order, which is what makes sharded processing deterministic.
    """
    shards: Dict[int, List[T]] = {}
    for item, category_id in zip(items, category_ids):
        shards.setdefault(shard_for_category(category_id, num_shards), []).append(item)
    return shards
