"""Figure 7 — Historical instance matches vs the no-matching baseline.

Paper claim: restricting value bags to historically matched offer/product
pairs "outperforms the configuration where historical offer-to-product
matches are not used", confirming that instance matches produce more
accurate value distributions.  The paper ran this comparison over the 92
Computing subcategories; the reproduction restricts both configurations to
the Computing subtree of the synthetic taxonomy.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.no_history import NoHistoryMatcher
from repro.corpus.config import CorpusPreset
from repro.experiments.figures_common import (
    FigureResult,
    build_series,
    filter_to_categories,
    reference_coverage_for,
)
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["run", "SERIES_OUR_APPROACH", "SERIES_NO_MATCHING"]

SERIES_OUR_APPROACH = "Our approach"
SERIES_NO_MATCHING = "No matching"


def run(harness: Optional[ExperimentHarness] = None) -> FigureResult:
    """Run the Figure 7 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    oracle = harness.oracle
    computing = harness.computing_category_ids()
    result = FigureResult(title="Figure 7 — with vs without historical instance matches")

    ours = filter_to_categories(harness.offline_result.scored_candidates, computing)
    result.reference_coverage = reference_coverage_for(ours, oracle)
    result.add(build_series(SERIES_OUR_APPROACH, ours, oracle))

    baseline = NoHistoryMatcher(harness.corpus.catalog)
    baseline_scored = baseline.match(
        harness.historical_offers, harness.corpus.matches, category_ids=computing
    )
    result.add(build_series(SERIES_NO_MATCHING, baseline_scored, oracle))

    return result
