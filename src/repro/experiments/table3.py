"""Table 3 — Synthesis quality per top-level category.

Paper values (Cameras / Computing / Furnishing / Kitchen):

* average attributes per product: 4.34 / 5.11 / 1.12 / 1.4
* attribute precision:            0.91 / 0.91 / 0.99 / 0.97
* product precision:              0.72 / 0.79 / 0.99 / 0.95

The qualitative claims the reproduction must preserve: Computing/Cameras
products carry more synthesized attributes than Furnishings/Kitchen
products, attribute precision is uniformly high, and the *strict* product
precision is lower for the attribute-rich categories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.corpus.config import CorpusPreset
from repro.evaluation.oracle import SynthesisEvaluation
from repro.evaluation.report import format_table
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["Table3Row", "Table3Result", "run"]

#: Paper values for side-by-side comparison, keyed by top-level category id.
PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "cameras": {"avg_attributes": 4.34, "attribute_precision": 0.91, "product_precision": 0.72},
    "computing": {"avg_attributes": 5.11, "attribute_precision": 0.91, "product_precision": 0.79},
    "furnishings": {"avg_attributes": 1.12, "attribute_precision": 0.99, "product_precision": 0.99},
    "kitchen": {"avg_attributes": 1.4, "attribute_precision": 0.97, "product_precision": 0.95},
}


@dataclass
class Table3Row:
    """One top-level category's aggregated synthesis quality."""

    top_level_id: str
    top_level_name: str
    num_products: int
    avg_attributes_per_product: float
    attribute_precision: float
    product_precision: float


@dataclass
class Table3Result:
    """Measured counterpart of paper Table 3."""

    rows: List[Table3Row]

    def row_for(self, top_level_id: str) -> Optional[Table3Row]:
        """The row of one top-level category, or ``None``."""
        for row in self.rows:
            if row.top_level_id == top_level_id:
                return row
        return None

    def to_text(self) -> str:
        """Human-readable rendering."""
        headers = [
            "Top-level category",
            "Products",
            "Avg Attrs / Product",
            "Attribute precision",
            "Product precision",
        ]
        table_rows = [
            [
                row.top_level_name,
                row.num_products,
                row.avg_attributes_per_product,
                row.attribute_precision,
                row.product_precision,
            ]
            for row in self.rows
        ]
        return format_table(
            headers, table_rows, title="Table 3 — Synthesis per top-level category"
        )


def run(harness: Optional[ExperimentHarness] = None) -> Table3Result:
    """Run the Table 3 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    taxonomy = harness.corpus.catalog.taxonomy
    per_top_level: Dict[str, SynthesisEvaluation] = harness.oracle.evaluate_by_top_level(
        harness.synthesis_result.products
    )

    rows: List[Table3Row] = []
    for top_level_id in sorted(per_top_level):
        evaluation = per_top_level[top_level_id]
        rows.append(
            Table3Row(
                top_level_id=top_level_id,
                top_level_name=taxonomy.get(top_level_id).name,
                num_products=evaluation.num_products,
                avg_attributes_per_product=evaluation.average_attributes_per_product,
                attribute_precision=evaluation.attribute_precision,
                product_precision=evaluation.product_precision,
            )
        )
    return Table3Result(rows=rows)
