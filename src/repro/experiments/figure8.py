"""Figure 8 — Comparison against existing schema-matching techniques.

Paper claim: over the Computing categories, the paper's approach
"consistently outperforms all other configurations, and achieves
significantly higher precision" (at 10K correspondences: 0.8 vs 0.28-0.6),
where the comparison set is the instance-based Naive Bayes matcher of LSD,
DUMAS, and the name-based / instance-based / combined COMA++
configurations.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.coma import ComaConfiguration, ComaStyleMatcher
from repro.baselines.dumas import DumasMatcher
from repro.baselines.lsd_naive_bayes import InstanceNaiveBayesMatcher
from repro.corpus.config import CorpusPreset
from repro.experiments.figures_common import (
    FigureResult,
    build_series,
    filter_to_categories,
    reference_coverage_for,
)
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = [
    "run",
    "SERIES_OUR_APPROACH",
    "SERIES_NAIVE_BAYES",
    "SERIES_DUMAS",
    "SERIES_COMA_NAME",
    "SERIES_COMA_INSTANCE",
    "SERIES_COMA_COMBINED",
]

SERIES_OUR_APPROACH = "Our approach"
SERIES_NAIVE_BAYES = "Instance-based Naive Bayes"
SERIES_DUMAS = "DUMAS"
SERIES_COMA_NAME = "Name-based COMA++"
SERIES_COMA_INSTANCE = "Instance-based COMA++"
SERIES_COMA_COMBINED = "Combined COMA++"


def run(harness: Optional[ExperimentHarness] = None) -> FigureResult:
    """Run the Figure 8 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    oracle = harness.oracle
    catalog = harness.corpus.catalog
    matches = harness.corpus.matches
    offers = harness.historical_offers
    computing = harness.computing_category_ids()
    result = FigureResult(title="Figure 8 — comparison against existing schema matchers")

    ours = filter_to_categories(harness.offline_result.scored_candidates, computing)
    result.reference_coverage = reference_coverage_for(ours, oracle)
    result.add(build_series(SERIES_OUR_APPROACH, ours, oracle))

    naive_bayes = InstanceNaiveBayesMatcher(catalog)
    result.add(
        build_series(
            SERIES_NAIVE_BAYES,
            naive_bayes.match(offers, matches, category_ids=computing),
            oracle,
        )
    )

    dumas = DumasMatcher(catalog)
    result.add(
        build_series(
            SERIES_DUMAS,
            dumas.match(offers, matches, category_ids=computing),
            oracle,
        )
    )

    for series_name, configuration in (
        (SERIES_COMA_NAME, ComaConfiguration.NAME),
        (SERIES_COMA_INSTANCE, ComaConfiguration.INSTANCE),
        (SERIES_COMA_COMBINED, ComaConfiguration.COMBINED),
    ):
        matcher = ComaStyleMatcher(catalog, configuration=configuration, delta=0.01)
        result.add(
            build_series(
                series_name,
                matcher.match(offers, matches, category_ids=computing),
                oracle,
            )
        )

    return result
