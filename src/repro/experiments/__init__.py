"""Experiment drivers: one module per table/figure of the paper's evaluation.

==========  ============================================================  ==================
Experiment  Paper result                                                  Module
==========  ============================================================  ==================
Table 2     End-to-end synthesis quality (counts + precisions)            ``table2``
Table 3     Synthesis quality per top-level category                      ``table3``
Table 4     Precision/recall by offer-set size (≥10 vs <10 offers)        ``table4``
Figure 6    Classifier vs single-feature JS-MC / Jaccard-MC               ``figure6``
Figure 7    Match-aware value bags vs no-matching baseline                ``figure7``
Figure 8    Our approach vs DUMAS / instance NB / COMA++ configurations   ``figure8``
Figure 9    COMA++ δ=0.01 vs δ=∞                                          ``figure9``
==========  ============================================================  ==================

Every driver exposes ``run(harness)`` returning a structured result with a
``to_text()`` rendering; the :mod:`repro.experiments.cli` entry point runs
them all and prints the tables, and ``benchmarks/`` wraps each driver in a
pytest-benchmark case that also asserts the qualitative claims.
"""

from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["ExperimentHarness", "get_harness"]
