"""Table 4 — Precision and recall for synthesized attributes by offer-set size.

Paper values:

* products with ≥ 10 offers: attribute recall 0.66, attribute precision 0.89
* products with < 10 offers: attribute recall 0.47, attribute precision 0.91

The qualitative claim: precision is similar for both strata while recall is
clearly higher for products synthesized from many offers (more merchants
give evidence for more catalog attributes).  The paper also reports the
supporting statistics (average attribute-value pairs available per product
and average synthesized attributes), which are reproduced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.corpus.config import CorpusPreset
from repro.evaluation.report import format_table
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["Table4Stratum", "Table4Result", "run"]

#: Offer-set size separating the two strata (the paper uses 10).
DEFAULT_OFFER_THRESHOLD = 10

PAPER_VALUES: Dict[str, Dict[str, float]] = {
    "large": {"attribute_recall": 0.66, "attribute_precision": 0.89},
    "small": {"attribute_recall": 0.47, "attribute_precision": 0.91},
}


@dataclass
class Table4Stratum:
    """Aggregated metrics for one offer-set-size stratum."""

    label: str
    num_products: int
    attribute_recall: float
    attribute_precision: float
    avg_available_pairs_per_product: float
    avg_synthesized_attributes: float


@dataclass
class Table4Result:
    """Measured counterpart of paper Table 4."""

    threshold: int
    large_offer_sets: Table4Stratum
    small_offer_sets: Table4Stratum

    def to_text(self) -> str:
        """Human-readable rendering."""
        headers = [
            "Stratum",
            "Products",
            "Attribute recall",
            "Attribute precision",
            "Avg available pairs",
            "Avg synthesized attrs",
        ]
        rows = [
            [
                stratum.label,
                stratum.num_products,
                stratum.attribute_recall,
                stratum.attribute_precision,
                stratum.avg_available_pairs_per_product,
                stratum.avg_synthesized_attributes,
            ]
            for stratum in (self.large_offer_sets, self.small_offer_sets)
        ]
        return format_table(
            headers, rows, title="Table 4 — Precision and recall for synthesized attributes"
        )


def run(
    harness: Optional[ExperimentHarness] = None,
    offer_threshold: int = DEFAULT_OFFER_THRESHOLD,
) -> Table4Result:
    """Run the Table 4 experiment."""
    if offer_threshold < 2:
        raise ValueError(f"offer_threshold must be >= 2, got {offer_threshold}")
    harness = harness or get_harness(CorpusPreset.SMALL)
    products = harness.synthesis_result.products
    truth = harness.corpus.ground_truth

    large = [p for p in products if p.num_source_offers() >= offer_threshold]
    small = [p for p in products if p.num_source_offers() < offer_threshold]

    def build_stratum(label: str, subset) -> Table4Stratum:
        """Evaluate one popularity stratum of the product set."""
        evaluation = harness.oracle.evaluate_products(subset)
        available_pairs = [
            sum(
                len(truth.offer_page_specs.get(offer_id, ()))
                for offer_id in product.source_offer_ids
            )
            for product in subset
        ]
        avg_available = sum(available_pairs) / len(available_pairs) if available_pairs else 0.0
        avg_synthesized = (
            sum(product.num_attributes() for product in subset) / len(subset) if subset else 0.0
        )
        return Table4Stratum(
            label=label,
            num_products=len(subset),
            attribute_recall=evaluation.attribute_recall,
            attribute_precision=evaluation.attribute_precision,
            avg_available_pairs_per_product=avg_available,
            avg_synthesized_attributes=avg_synthesized,
        )

    return Table4Result(
        threshold=offer_threshold,
        large_offer_sets=build_stratum(f"Products with >= {offer_threshold} offers", large),
        small_offer_sets=build_stratum(f"Products with < {offer_threshold} offers", small),
    )
