"""Shared experiment harness: corpus, extraction, learning and synthesis runs.

Most experiments share expensive intermediate artefacts (the corpus, the
extracted historical offers, the offline-learning result, the synthesized
products).  The harness computes each artefact lazily and caches it, and
:func:`get_harness` memoises harnesses per (preset, seed) so that a test or
benchmark session never repeats the same run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional

from repro.corpus.config import CorpusConfig, CorpusPreset
from repro.corpus.generator import CorpusGenerator, SyntheticCorpus
from repro.evaluation.oracle import EvaluationOracle
from repro.extraction.extractor import WebPageAttributeExtractor
from repro.matching.learner import OfflineLearner, OfflineLearningResult
from repro.model.offers import Offer
from repro.synthesis.category_classifier import TitleCategoryClassifier
from repro.synthesis.pipeline import ProductSynthesisPipeline, SynthesisResult

__all__ = ["ExperimentHarness", "get_harness"]


class ExperimentHarness:
    """Lazily computed, cached experiment artefacts for one corpus."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusPreset.SMALL.config()
        self._corpus: Optional[SyntheticCorpus] = None
        self._extractor: Optional[WebPageAttributeExtractor] = None
        self._historical_offers: Optional[List[Offer]] = None
        self._unmatched_offers: Optional[List[Offer]] = None
        self._offline_result: Optional[OfflineLearningResult] = None
        self._synthesis_result: Optional[SynthesisResult] = None
        self._oracle: Optional[EvaluationOracle] = None
        self._category_classifier: Optional[TitleCategoryClassifier] = None

    # -- corpus-level artefacts ---------------------------------------------------

    @property
    def corpus(self) -> SyntheticCorpus:
        """The generated synthetic corpus."""
        if self._corpus is None:
            self._corpus = CorpusGenerator(self.config).generate()
        return self._corpus

    @property
    def extractor(self) -> WebPageAttributeExtractor:
        """The web-page attribute extractor bound to the corpus web store."""
        if self._extractor is None:
            self._extractor = WebPageAttributeExtractor(self.corpus.web)
        return self._extractor

    @property
    def historical_offers(self) -> List[Offer]:
        """Matched offers with specifications extracted from landing pages."""
        if self._historical_offers is None:
            offers, _ = self.extractor.extract_offers(self.corpus.matched_offers())
            self._historical_offers = offers
        return self._historical_offers

    @property
    def unmatched_offers(self) -> List[Offer]:
        """Unmatched offers with specifications extracted from landing pages."""
        if self._unmatched_offers is None:
            offers, _ = self.extractor.extract_offers(self.corpus.unmatched_offers())
            self._unmatched_offers = offers
        return self._unmatched_offers

    @property
    def oracle(self) -> EvaluationOracle:
        """The ground-truth evaluation oracle for this corpus."""
        if self._oracle is None:
            self._oracle = EvaluationOracle(
                self.corpus.ground_truth,
                taxonomy=self.corpus.catalog.taxonomy,
                offer_merchants={
                    offer.offer_id: offer.merchant_id for offer in self.corpus.offers
                },
            )
        return self._oracle

    # -- learning and synthesis ------------------------------------------------------

    @property
    def offline_result(self) -> OfflineLearningResult:
        """The paper-approach offline-learning result (all categories)."""
        if self._offline_result is None:
            learner = OfflineLearner(self.corpus.catalog)
            self._offline_result = learner.learn(
                self.historical_offers, self.corpus.matches
            )
        return self._offline_result

    @property
    def category_classifier(self) -> TitleCategoryClassifier:
        """The trained title -> category classifier."""
        if self._category_classifier is None:
            self._category_classifier = TitleCategoryClassifier().train_from_history(
                self.corpus.catalog, self.historical_offers, self.corpus.matches
            )
        return self._category_classifier

    @property
    def synthesis_result(self) -> SynthesisResult:
        """The run-time pipeline output over all unmatched offers."""
        if self._synthesis_result is None:
            pipeline = ProductSynthesisPipeline(
                catalog=self.corpus.catalog,
                correspondences=self.offline_result.correspondences,
                extractor=self.extractor,
                category_classifier=self.category_classifier,
            )
            self._synthesis_result = pipeline.synthesize(self.unmatched_offers)
        return self._synthesis_result

    # -- convenience --------------------------------------------------------------------

    def computing_category_ids(self) -> List[str]:
        """Leaf categories of the Computing subtree (Figures 7/8/9 scope)."""
        taxonomy = self.corpus.catalog.taxonomy
        if "computing" not in taxonomy:
            return taxonomy.leaf_ids()
        return taxonomy.subtree_leaf_ids("computing")

    def evaluate_synthesis(self):
        """Oracle evaluation of the synthesized products."""
        return self.oracle.evaluate_products(self.synthesis_result.products)


@lru_cache(maxsize=8)
def _harness_for(preset: CorpusPreset, seed: int) -> ExperimentHarness:
    return ExperimentHarness(preset.config(seed=seed))


def get_harness(
    preset: CorpusPreset = CorpusPreset.SMALL, seed: int = 2011
) -> ExperimentHarness:
    """A memoised harness for the given preset and seed."""
    return _harness_for(preset, seed)
