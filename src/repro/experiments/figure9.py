"""Figure 9 / Appendix D — COMA++ with δ = 0.01 (default) vs δ = ∞.

Paper claim: the paper's approach "always lead[s] to higher precision at
the same level of coverage than all configurations of COMA++", and the
COMA++ results with the default δ = 0.01 have higher precision than with
δ = ∞ (which admits every attribute pair as a candidate and only ranks
them by score).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.coma import ComaConfiguration, ComaStyleMatcher
from repro.corpus.config import CorpusPreset
from repro.experiments.figures_common import (
    FigureResult,
    build_series,
    filter_to_categories,
    reference_coverage_for,
)
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = [
    "run",
    "SERIES_OUR_APPROACH",
    "SERIES_COMBINED_DEFAULT",
    "SERIES_COMBINED_INF",
    "SERIES_NAME_DEFAULT",
    "SERIES_NAME_INF",
]

SERIES_OUR_APPROACH = "Our approach"
SERIES_COMBINED_DEFAULT = "Combined COMA++ (delta=0.01)"
SERIES_COMBINED_INF = "Combined COMA++ (delta=inf)"
SERIES_NAME_DEFAULT = "Name-based COMA++ (delta=0.01)"
SERIES_NAME_INF = "Name-based COMA++ (delta=inf)"


def run(harness: Optional[ExperimentHarness] = None) -> FigureResult:
    """Run the Figure 9 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    oracle = harness.oracle
    catalog = harness.corpus.catalog
    matches = harness.corpus.matches
    offers = harness.historical_offers
    computing = harness.computing_category_ids()
    result = FigureResult(title="Figure 9 — COMA++ delta=0.01 vs delta=inf")

    ours = filter_to_categories(harness.offline_result.scored_candidates, computing)
    result.reference_coverage = reference_coverage_for(ours, oracle)
    result.add(build_series(SERIES_OUR_APPROACH, ours, oracle))

    configurations = (
        (SERIES_COMBINED_DEFAULT, ComaConfiguration.COMBINED, 0.01),
        (SERIES_COMBINED_INF, ComaConfiguration.COMBINED, None),
        (SERIES_NAME_DEFAULT, ComaConfiguration.NAME, 0.01),
        (SERIES_NAME_INF, ComaConfiguration.NAME, None),
    )
    for series_name, configuration, delta in configurations:
        matcher = ComaStyleMatcher(catalog, configuration=configuration, delta=delta)
        result.add(
            build_series(
                series_name,
                matcher.match(offers, matches, category_ids=computing),
                oracle,
            )
        )
    return result
