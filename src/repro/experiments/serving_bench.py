"""Serving-layer benchmark: query throughput, latency, snapshot isolation.

Two phases over the same feed-ordered synthetic stream the runtime
benchmark uses:

* **Query throughput** — ingest the whole stream into an engine (the
  serving index maintained incrementally by the commit feed), then run a
  deterministic top-k search workload derived from the product titles
  and report queries/sec plus p50/p95 latency.
* **Mixed ingest + query** — on *both* store backends, interleave
  engine ingest batches with service queries and then *prove* snapshot
  isolation: every query's full result list (ids and scores) is
  re-executed against a reference index rebuilt from the exact product
  set of the committed prefix the service reported serving, and must
  match byte for byte.  The memory backend exercises the feed-driven
  maintenance path, the SQLite backend the read-only
  :class:`~repro.serving.reader.CatalogReader` resync path — a reader
  process querying concurrently with a live writer.

Writes ``BENCH_serving.json`` via ``--json`` (CLI: ``repro-synthesize
serving-bench``); the committed copy at the repo root is the regression
reference for ``benchmarks/test_bench_serving.py``.

A third, **closed-loop** mode (:func:`run_fleet`, CLI ``serving-bench
--clients N --duration S``) stresses the replicated serving fleet over
real HTTP: N client threads issue back-to-back searches against a
:class:`~repro.serving.fleet.ServingFleet` behind the worker-pool
server while a writer keeps committing ingest batches, and the same
workload is replayed against a single-replica baseline on an identical
copy of the store.  It reports aggregate QPS plus p50/p95/p99 latency
under mixed ingest and writes ``BENCH_serving_fleet.json`` (regression
reference for ``benchmarks/test_bench_serving_fleet.py``).
"""

from __future__ import annotations

import json
import os
import random
import shutil
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.config import CorpusPreset
from repro.experiments.harness import ExperimentHarness

# Shared with the runtime benchmark: identical batch rounding and sqlite
# sidecar cleanup, so the two benches can never drift apart on either.
from repro.experiments.runtime_bench import _batches, _remove_sqlite_files
from repro.model.products import Product
from repro.obs import get_registry, percentile
from repro.runtime import SynthesisEngine
from repro.serving.fleet import ServingFleet
from repro.serving.http import CatalogHTTPServer
from repro.serving.index import CatalogIndex
from repro.serving.service import CatalogSearchService
from repro.text.memo import clear_text_caches
from repro.text.tokenize import tokenize_title

__all__ = [
    "MixedRunResult",
    "ServingBenchResult",
    "FleetPhaseResult",
    "FleetBenchResult",
    "run",
    "run_fleet",
]


@dataclass
class MixedRunResult:
    """One backend's mixed ingest+query measurements and isolation proof."""

    store: str
    commits: int
    queries_run: int
    #: Distinct committed prefixes the queries were served against.
    distinct_snapshots: int
    #: Whether every query reproduced its committed prefix byte for byte.
    snapshot_stable: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        return {
            "store": self.store,
            "commits": self.commits,
            "queries_run": self.queries_run,
            "distinct_snapshots": self.distinct_snapshots,
            "snapshot_stable": self.snapshot_stable,
        }


@dataclass
class ServingBenchResult:
    """Everything the serving benchmark measured."""

    num_offers: int
    num_batches: int
    seed: int
    store: str
    #: Which index backend served the queries (``memory`` or ``fts``).
    index_backend: str
    num_products: int
    num_queries: int
    top_k: int
    #: Seconds to ingest the stream with the index maintained per commit.
    build_seconds: float
    #: Seconds spent executing the query workload.
    query_seconds: float
    queries_per_second: float
    p50_ms: float
    p95_ms: float
    #: Queries that returned at least one hit (sanity: workload is real).
    queries_with_hits: int
    index_vocabulary: int
    mixed: List[MixedRunResult] = field(default_factory=list)
    #: ``MetricsRegistry.snapshot()`` taken after the query phase, while
    #: the service still bridges its counters (see docs/observability.md).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def snapshot_isolation_proven(self) -> bool:
        """Whether every mixed-mode backend stayed byte-stable."""
        return bool(self.mixed) and all(run.snapshot_stable for run in self.mixed)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (written to ``BENCH_serving.json``)."""
        return {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "seed": self.seed,
            "store": self.store,
            "index_backend": self.index_backend,
            "num_products": self.num_products,
            "num_queries": self.num_queries,
            "top_k": self.top_k,
            "build_seconds": round(self.build_seconds, 4),
            "query_seconds": round(self.query_seconds, 4),
            "queries_per_second": round(self.queries_per_second, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "queries_with_hits": self.queries_with_hits,
            "index_vocabulary": self.index_vocabulary,
            "snapshot_isolation_proven": self.snapshot_isolation_proven,
            "mixed": [entry.to_dict() for entry in self.mixed],
            "metrics": self.metrics,
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [
            "Serving benchmark (snapshot-isolated top-k search over the catalog)",
            f"  corpus: {self.num_offers:,} offers in {self.num_batches} batches "
            f"(seed {self.seed}) -> {self.num_products:,} products, "
            f"{self.index_vocabulary:,} index tokens",
            f"  build           : {self.build_seconds:8.2f}s "
            f"(ingest + incremental index maintenance, {self.store} store, "
            f"{self.index_backend} index)",
            f"  queries         : {self.num_queries:,} top-{self.top_k} searches "
            f"({self.queries_with_hits:,} with hits)",
            f"  throughput      : {self.queries_per_second:8,.0f} queries/s",
            f"  latency         : p50 {self.p50_ms:.3f}ms, p95 {self.p95_ms:.3f}ms",
        ]
        for entry in self.mixed:
            verdict = "byte-stable" if entry.snapshot_stable else "TORN READS"
            lines.append(
                f"  mixed ({entry.store:6s}) : {entry.queries_run} queries across "
                f"{entry.commits} commits, {entry.distinct_snapshots} snapshots "
                f"observed -> {verdict}"
            )
        return "\n".join(lines)


def _query_workload(
    products: List[Product], num_queries: int, seed: int
) -> List[str]:
    """A deterministic search workload drawn from product titles.

    Each query is a 1-3 token span of some product title — what a user
    typing a partial product name sends — so the workload exercises the
    ranked path with real vocabulary instead of synthetic noise.
    """
    rng = random.Random(seed)
    # Pre-tokenise and keep only products that yield tokens at all, so
    # the sampling loop below always makes progress.
    tokenised = [
        tokens
        for tokens in (tokenize_title(product.title) for product in products)
        if tokens
    ]
    queries: List[str] = []
    while len(queries) < num_queries and tokenised:
        tokens = tokenised[rng.randrange(len(tokenised))]
        span = rng.randint(1, min(3, len(tokens)))
        start = rng.randrange(len(tokens) - span + 1)
        queries.append(" ".join(tokens[start : start + span]))
    return queries


def _result_fingerprint(results) -> Tuple[Tuple[str, float], ...]:
    """The byte-comparable form of one search's full result list."""
    return tuple((entry.product.product_id, entry.score) for entry in results)


def _engine(harness: ExperimentHarness, **kwargs) -> SynthesisEngine:
    return SynthesisEngine(
        catalog=harness.corpus.catalog,
        correspondences=harness.offline_result.correspondences,
        extractor=harness.extractor,
        category_classifier=harness.category_classifier,
        num_shards=kwargs.pop("num_shards", 8),
        **kwargs,
    )


def _mixed_run(
    harness: ExperimentHarness,
    batches: List[List],
    queries: List[str],
    top_k: int,
    store: str,
    store_path: Optional[str],
    queries_per_batch: int,
    index_backend: str = "memory",
) -> MixedRunResult:
    """Interleave ingest and queries on one backend; verify isolation.

    The reference index of the proof below is always the memory
    :class:`CatalogIndex`, so with ``index_backend="fts"`` this doubles
    as a cross-backend equivalence check under live ingest.
    """
    clear_text_caches()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]
    engine = _engine(
        harness,
        executor="serial",
        store=store,
        store_path=store_path,
    )
    # Memory backend: feed-driven service (same process, commit feed).
    # SQLite backend: reader-driven service over the live WAL file — a
    # second connection querying concurrently with the writer.
    if store == "sqlite":
        service = CatalogSearchService.from_store_path(
            store_path,  # type: ignore[arg-type]
            index_backend=index_backend,
        )
    else:
        service = CatalogSearchService.from_engine(engine, index_backend=index_backend)

    #: commit_count -> products of that committed prefix.
    prefix_products: Dict[int, List[Product]] = {}
    #: (query, snapshot served, full result fingerprint) per query run.
    observed: List[Tuple[str, int, Tuple]] = []
    query_cursor = 0
    for batch in batches:
        engine.ingest(batch)
        prefix_products[engine.store.commit_count] = engine.products()
        for _ in range(queries_per_batch):
            query = queries[query_cursor % len(queries)]
            query_cursor += 1
            results = service.search(query, top_k=top_k)
            observed.append(
                (query, service.snapshot_commit_count, _result_fingerprint(results))
            )
    commits = len(prefix_products)
    service.close()
    engine.close()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]

    # The proof: rebuild a reference index per committed prefix actually
    # served and re-execute every query against it.  Identical ids AND
    # scores == the service answered from exactly that prefix, never
    # from a half-applied batch.
    stable = True
    snapshots = sorted({snapshot for _, snapshot, _ in observed})
    for snapshot in snapshots:
        if snapshot not in prefix_products:
            stable = False
            break
        reference = CatalogIndex(prefix_products[snapshot])
        for query, seen_snapshot, fingerprint in observed:
            if seen_snapshot != snapshot:
                continue
            expected = _result_fingerprint(reference.search(query, top_k=top_k))
            if expected != fingerprint:
                stable = False
    return MixedRunResult(
        store=store,
        commits=commits,
        queries_run=len(observed),
        distinct_snapshots=len(snapshots),
        snapshot_stable=stable,
    )


def run(
    num_offers: int = 10_000,
    num_batches: int = 10,
    num_queries: int = 5_000,
    top_k: int = 10,
    seed: int = 2011,
    store: str = "sqlite",
    store_path: Optional[str] = None,
    harness: Optional[ExperimentHarness] = None,
    mixed_queries_per_batch: int = 25,
    index_backend: str = "memory",
) -> ServingBenchResult:
    """Run both serving-benchmark phases and return the measurements.

    Parameters mirror :func:`repro.experiments.runtime_bench.run` where
    they overlap; ``num_queries`` sizes the throughput workload, and
    ``mixed_queries_per_batch`` the per-commit query burst of the mixed
    phase (which always runs on both backends).  ``index_backend``
    selects the serving index implementation (``memory`` or ``fts``);
    the mixed-phase proof always checks against the memory reference, so
    an ``fts`` run proves cross-backend ranking equivalence at scale.
    """
    if store not in ("memory", "sqlite"):
        raise ValueError(f"store must be 'memory' or 'sqlite', got {store!r}")
    if index_backend not in ("memory", "fts"):
        raise ValueError(
            f"index_backend must be 'memory' or 'fts', got {index_backend!r}"
        )
    if store == "sqlite" and store_path is None:
        raise ValueError("store='sqlite' requires store_path")
    # The artifact's metrics section should cover this run only.
    registry = get_registry()
    registry.clear()
    if harness is None:
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    offers = sorted(offers, key=lambda offer: offer.merchant_id)
    batches = _batches(offers, num_batches)

    # -- phase 1: build once, then hammer the index with searches
    clear_text_caches()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]
    engine = _engine(harness, executor="serial", store=store, store_path=store_path)
    service = CatalogSearchService.from_engine(engine, index_backend=index_backend)
    build_start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    build_seconds = time.perf_counter() - build_start
    products = engine.products()
    queries = _query_workload(products, num_queries, seed)

    latencies: List[float] = []
    queries_with_hits = 0
    query_start = time.perf_counter()
    for query in queries:
        started = time.perf_counter()
        results = service.search(query, top_k=top_k)
        latencies.append(time.perf_counter() - started)
        if results:
            queries_with_hits += 1
    query_seconds = time.perf_counter() - query_start
    index_vocabulary = service.stats()["index"]["vocabulary_size"]  # type: ignore[index]
    # Taken before close() — close detaches the service's and engine's
    # metric bridges, and the mixed phase below must not leak in.
    metrics_snapshot = registry.snapshot()
    service.close()
    engine.close()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]

    latencies.sort()
    result = ServingBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        seed=seed,
        store=store,
        index_backend=index_backend,
        num_products=len(products),
        num_queries=len(queries),
        top_k=top_k,
        build_seconds=build_seconds,
        query_seconds=query_seconds,
        queries_per_second=(
            len(queries) / query_seconds if query_seconds > 0 else float("inf")
        ),
        p50_ms=percentile(latencies, 0.50) * 1000.0,
        p95_ms=percentile(latencies, 0.95) * 1000.0,
        queries_with_hits=queries_with_hits,
        index_vocabulary=int(index_vocabulary),
        metrics=metrics_snapshot,
    )

    # -- phase 2: mixed ingest+query isolation proof on both backends
    mixed_path = None if store_path is None else store_path + ".mixed"
    result.mixed.append(
        _mixed_run(
            harness,
            batches,
            queries,
            top_k,
            "memory",
            None,
            mixed_queries_per_batch,
            index_backend=index_backend,
        )
    )
    if mixed_path is not None:
        result.mixed.append(
            _mixed_run(
                harness,
                batches,
                queries,
                top_k,
                "sqlite",
                mixed_path,
                mixed_queries_per_batch,
                index_backend=index_backend,
            )
        )
    return result


# -- closed-loop fleet benchmark ----------------------------------------------


@dataclass
class FleetPhaseResult:
    """One closed-loop phase: N clients hammering one serving target."""

    #: ``"single"`` (one replica, the PR-5 serving shape) or ``"fleet"``.
    mode: str
    replicas: int
    #: HTTP worker-pool size.
    threads: int
    clients: int
    #: Wall seconds the measurement window actually lasted.
    duration_seconds: float
    requests: int
    errors: int
    queries_per_second: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Ingest commits the writer completed during the window.
    commits_during_run: int
    #: Distinct pinned snapshots the responses reported serving.
    distinct_snapshots: int
    #: Largest per-replica commit lag sampled during the run.
    max_lag_observed: int

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        return {
            "mode": self.mode,
            "replicas": self.replicas,
            "threads": self.threads,
            "clients": self.clients,
            "duration_seconds": round(self.duration_seconds, 3),
            "requests": self.requests,
            "errors": self.errors,
            "queries_per_second": round(self.queries_per_second, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "commits_during_run": self.commits_during_run,
            "distinct_snapshots": self.distinct_snapshots,
            "max_lag_observed": self.max_lag_observed,
        }


@dataclass
class FleetBenchResult:
    """Closed-loop fleet benchmark: single-replica baseline vs the fleet."""

    num_offers: int
    num_batches: int
    seed: int
    top_k: int
    clients: int
    replicas: int
    threads: int
    #: Cores of the machine that produced the numbers — the fleet only
    #: beats the baseline with real parallelism underneath, so the
    #: regression guard reads this before comparing phases.
    cpu_count: int
    num_products: int
    single: "FleetPhaseResult"
    fleet: "FleetPhaseResult"
    #: ``MetricsRegistry.snapshot()`` of the fleet measurement window
    #: (per-endpoint HTTP latency, per-replica lag, resync counters).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def fleet_speedup(self) -> float:
        """Aggregate fleet QPS over single-replica QPS."""
        if self.single.queries_per_second <= 0:
            return float("inf")
        return self.fleet.queries_per_second / self.single.queries_per_second

    def to_dict(self) -> Dict[str, object]:
        """JSON summary (written to ``BENCH_serving_fleet.json``)."""
        return {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "seed": self.seed,
            "top_k": self.top_k,
            "clients": self.clients,
            "replicas": self.replicas,
            "threads": self.threads,
            "cpu_count": self.cpu_count,
            "num_products": self.num_products,
            "fleet_speedup": round(self.fleet_speedup, 3),
            "single": self.single.to_dict(),
            "fleet": self.fleet.to_dict(),
            "metrics": self.metrics,
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [
            "Serving fleet benchmark (closed-loop HTTP, mixed ingest+query)",
            f"  corpus: {self.num_offers:,} offers (seed {self.seed}) -> "
            f"{self.num_products:,} products; {self.clients} clients, "
            f"{self.threads} server workers, {self.cpu_count} cores",
        ]
        for phase in (self.single, self.fleet):
            lines.append(
                f"  {phase.mode:7s}: {phase.replicas} replica(s), "
                f"{phase.queries_per_second:8,.0f} q/s over "
                f"{phase.duration_seconds:.1f}s "
                f"(p50 {phase.p50_ms:.2f}ms p95 {phase.p95_ms:.2f}ms "
                f"p99 {phase.p99_ms:.2f}ms; {phase.commits_during_run} commits, "
                f"{phase.distinct_snapshots} snapshots, "
                f"max lag {phase.max_lag_observed}, {phase.errors} errors)"
            )
        lines.append(f"  fleet speedup   : {self.fleet_speedup:.2f}x aggregate QPS")
        return "\n".join(lines)


def _copy_store(source: str, destination: str) -> None:
    """Clone a closed store file (with WAL sidecars) for one phase."""
    _remove_sqlite_files(destination)
    for suffix in ("", "-wal", "-shm"):
        if os.path.exists(source + suffix):
            shutil.copyfile(source + suffix, destination + suffix)


def _closed_loop_phase(
    mode: str,
    store_path: str,
    harness: ExperimentHarness,
    live_batches: List[List],
    queries: List[str],
    top_k: int,
    clients: int,
    duration: float,
    replicas: int,
    threads: int,
    max_lag_commits: int,
    index_backend: str = "memory",
) -> Tuple[FleetPhaseResult, Dict[str, object]]:
    """One measurement window: clients vs one serving target over HTTP.

    ``mode="single"`` serves a lone reader-driven service (every request
    checks the head and resyncs inline — the PR-5 shape); ``"fleet"``
    serves ``replicas`` lag-bounded replicas with a background refresher
    so rebuilds stay off the request path.  The writer engine ingests
    ``live_batches`` paced across the window either way, so both phases
    face the same commit pressure on identical store copies.

    Returns the phase measurements plus the metrics-registry snapshot of
    the window (the registry is cleared on entry, so the snapshot covers
    exactly this phase: HTTP latency histograms, replica lag gauges,
    writer engine counters).
    """
    registry = get_registry()
    registry.clear()
    writer = _engine(harness, executor="serial", store="sqlite", store_path=store_path)
    if mode == "fleet":
        target = ServingFleet.from_store_path(
            store_path,
            num_replicas=replicas,
            max_lag_commits=max_lag_commits,
            refresh_interval=0.05,
            index_backend=index_backend,
        )
    else:
        target = CatalogSearchService.from_store_path(
            store_path, index_backend=index_backend
        )
    server = CatalogHTTPServer(("127.0.0.1", 0), target, max_workers=threads)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()

    stop = threading.Event()
    max_lag_observed = [0]

    def write_live_batches() -> None:
        interval = duration / (len(live_batches) + 1)
        for batch in live_batches:
            if stop.wait(interval):
                return
            writer.ingest(batch)
            lag = (
                target.lag()["max_lag"]  # type: ignore[index]
                if mode == "fleet"
                else target.lag()
            )
            max_lag_observed[0] = max(max_lag_observed[0], int(lag))  # type: ignore[arg-type]

    per_client_latencies: List[List[float]] = [[] for _ in range(clients)]
    per_client_errors = [0] * clients
    per_client_snapshots: List[set] = [set() for _ in range(clients)]
    deadline = time.perf_counter() + duration

    def client_loop(client_id: int) -> None:
        cursor = client_id * 7919  # co-prime stride: clients diverge
        latencies = per_client_latencies[client_id]
        snapshots = per_client_snapshots[client_id]
        while time.perf_counter() < deadline:
            query = urllib.parse.quote(queries[cursor % len(queries)])
            cursor += 1
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    f"http://{host}:{port}/search?q={query}&k={top_k}", timeout=30
                ) as response:
                    payload = json.load(response)
            except (urllib.error.URLError, OSError, ValueError):
                per_client_errors[client_id] += 1
                continue
            latencies.append(time.perf_counter() - started)
            snapshots.add(payload["snapshot_commit_count"])

    writer_thread = threading.Thread(target=write_live_batches, daemon=True)
    client_threads = [
        threading.Thread(target=client_loop, args=(client_id,), daemon=True)
        for client_id in range(clients)
    ]
    window_start = time.perf_counter()
    writer_thread.start()
    for thread in client_threads:
        thread.start()
    for thread in client_threads:
        thread.join()
    stop.set()
    writer_thread.join()
    window_seconds = time.perf_counter() - window_start

    # Snapshot while the target and writer still bridge their counters.
    metrics_snapshot = registry.snapshot()
    server.shutdown()
    server.server_close()
    target.close()
    writer.close()

    latencies = sorted(
        latency for bucket in per_client_latencies for latency in bucket
    )
    requests = len(latencies)
    phase = FleetPhaseResult(
        mode=mode,
        replicas=replicas if mode == "fleet" else 1,
        threads=threads,
        clients=clients,
        duration_seconds=window_seconds,
        requests=requests,
        errors=sum(per_client_errors),
        queries_per_second=requests / window_seconds if window_seconds > 0 else 0.0,
        p50_ms=percentile(latencies, 0.50) * 1000.0,
        p95_ms=percentile(latencies, 0.95) * 1000.0,
        p99_ms=percentile(latencies, 0.99) * 1000.0,
        commits_during_run=len(live_batches),
        distinct_snapshots=len(set().union(*per_client_snapshots)),
        max_lag_observed=max_lag_observed[0],
    )
    return phase, metrics_snapshot


def run_fleet(
    num_offers: int = 10_000,
    num_batches: int = 10,
    top_k: int = 10,
    seed: int = 2011,
    store_path: str = "BENCH_serving_catalog.sqlite3",
    clients: int = 4,
    duration: float = 5.0,
    replicas: int = 2,
    threads: Optional[int] = None,
    max_lag_commits: int = 2,
    harness: Optional[ExperimentHarness] = None,
    index_backend: str = "memory",
) -> FleetBenchResult:
    """Closed-loop fleet stress: single-replica baseline vs the fleet.

    Builds one catalog store from the first ~2/3 of the stream, then
    runs two measurement windows of ``duration`` seconds each on
    *copies* of that store — so both phases replay the identical mixed
    workload: ``clients`` HTTP client threads issuing back-to-back
    searches while a writer engine commits the remaining batches, paced
    across the window.  ``threads`` defaults to ``replicas * 2``
    (workers beyond the replica count only queue on replica locks).
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if threads is None:
        threads = max(clients, replicas * 2)
    if harness is None:
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    offers = sorted(offers, key=lambda offer: offer.merchant_id)
    batches = _batches(offers, num_batches)
    # Most of the stream seeds the store; the tail is the live ingest
    # pressure both measurement windows replay.
    live_count = min(max(1, len(batches) // 3), len(batches) - 1) if len(batches) > 1 else 0
    build_batches = batches[: len(batches) - live_count]
    live_batches = batches[len(batches) - live_count :]

    clear_text_caches()
    _remove_sqlite_files(store_path)
    engine = _engine(harness, executor="serial", store="sqlite", store_path=store_path)
    for batch in build_batches:
        engine.ingest(batch)
    products = engine.products()
    engine.close()
    queries = _query_workload(products, max(256, clients * 64), seed)

    phases: Dict[str, FleetPhaseResult] = {}
    phase_metrics: Dict[str, Dict[str, object]] = {}
    for mode in ("single", "fleet"):
        phase_path = f"{store_path}.{mode}"
        _copy_store(store_path, phase_path)
        try:
            phases[mode], phase_metrics[mode] = _closed_loop_phase(
                mode,
                phase_path,
                harness,
                live_batches,
                queries,
                top_k,
                clients,
                duration,
                replicas,
                threads,
                max_lag_commits,
                index_backend=index_backend,
            )
        finally:
            _remove_sqlite_files(phase_path)
    _remove_sqlite_files(store_path)

    return FleetBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        seed=seed,
        top_k=top_k,
        clients=clients,
        replicas=replicas,
        threads=threads,
        cpu_count=os.cpu_count() or 1,
        num_products=len(products),
        single=phases["single"],
        fleet=phases["fleet"],
        metrics=phase_metrics["fleet"],
    )
