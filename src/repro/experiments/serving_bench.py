"""Serving-layer benchmark: query throughput, latency, snapshot isolation.

Two phases over the same feed-ordered synthetic stream the runtime
benchmark uses:

* **Query throughput** — ingest the whole stream into an engine (the
  serving index maintained incrementally by the commit feed), then run a
  deterministic top-k search workload derived from the product titles
  and report queries/sec plus p50/p95 latency.
* **Mixed ingest + query** — on *both* store backends, interleave
  engine ingest batches with service queries and then *prove* snapshot
  isolation: every query's full result list (ids and scores) is
  re-executed against a reference index rebuilt from the exact product
  set of the committed prefix the service reported serving, and must
  match byte for byte.  The memory backend exercises the feed-driven
  maintenance path, the SQLite backend the read-only
  :class:`~repro.serving.reader.CatalogReader` resync path — a reader
  process querying concurrently with a live writer.

Writes ``BENCH_serving.json`` via ``--json`` (CLI: ``repro-synthesize
serving-bench``); the committed copy at the repo root is the regression
reference for ``benchmarks/test_bench_serving.py``.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.corpus.config import CorpusPreset
from repro.experiments.harness import ExperimentHarness

# Shared with the runtime benchmark: identical batch rounding and sqlite
# sidecar cleanup, so the two benches can never drift apart on either.
from repro.experiments.runtime_bench import _batches, _remove_sqlite_files
from repro.model.products import Product
from repro.runtime import SynthesisEngine
from repro.serving.index import CatalogIndex
from repro.serving.service import CatalogSearchService
from repro.text.memo import clear_text_caches
from repro.text.tokenize import tokenize_title

__all__ = ["MixedRunResult", "ServingBenchResult", "run"]


@dataclass
class MixedRunResult:
    """One backend's mixed ingest+query measurements and isolation proof."""

    store: str
    commits: int
    queries_run: int
    #: Distinct committed prefixes the queries were served against.
    distinct_snapshots: int
    #: Whether every query reproduced its committed prefix byte for byte.
    snapshot_stable: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        return {
            "store": self.store,
            "commits": self.commits,
            "queries_run": self.queries_run,
            "distinct_snapshots": self.distinct_snapshots,
            "snapshot_stable": self.snapshot_stable,
        }


@dataclass
class ServingBenchResult:
    """Everything the serving benchmark measured."""

    num_offers: int
    num_batches: int
    seed: int
    store: str
    num_products: int
    num_queries: int
    top_k: int
    #: Seconds to ingest the stream with the index maintained per commit.
    build_seconds: float
    #: Seconds spent executing the query workload.
    query_seconds: float
    queries_per_second: float
    p50_ms: float
    p95_ms: float
    #: Queries that returned at least one hit (sanity: workload is real).
    queries_with_hits: int
    index_vocabulary: int
    mixed: List[MixedRunResult] = field(default_factory=list)

    @property
    def snapshot_isolation_proven(self) -> bool:
        """Whether every mixed-mode backend stayed byte-stable."""
        return bool(self.mixed) and all(run.snapshot_stable for run in self.mixed)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (written to ``BENCH_serving.json``)."""
        return {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "seed": self.seed,
            "store": self.store,
            "num_products": self.num_products,
            "num_queries": self.num_queries,
            "top_k": self.top_k,
            "build_seconds": round(self.build_seconds, 4),
            "query_seconds": round(self.query_seconds, 4),
            "queries_per_second": round(self.queries_per_second, 1),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "queries_with_hits": self.queries_with_hits,
            "index_vocabulary": self.index_vocabulary,
            "snapshot_isolation_proven": self.snapshot_isolation_proven,
            "mixed": [entry.to_dict() for entry in self.mixed],
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [
            "Serving benchmark (snapshot-isolated top-k search over the catalog)",
            f"  corpus: {self.num_offers:,} offers in {self.num_batches} batches "
            f"(seed {self.seed}) -> {self.num_products:,} products, "
            f"{self.index_vocabulary:,} index tokens",
            f"  build           : {self.build_seconds:8.2f}s "
            f"(ingest + incremental index maintenance, {self.store} store)",
            f"  queries         : {self.num_queries:,} top-{self.top_k} searches "
            f"({self.queries_with_hits:,} with hits)",
            f"  throughput      : {self.queries_per_second:8,.0f} queries/s",
            f"  latency         : p50 {self.p50_ms:.3f}ms, p95 {self.p95_ms:.3f}ms",
        ]
        for entry in self.mixed:
            verdict = "byte-stable" if entry.snapshot_stable else "TORN READS"
            lines.append(
                f"  mixed ({entry.store:6s}) : {entry.queries_run} queries across "
                f"{entry.commits} commits, {entry.distinct_snapshots} snapshots "
                f"observed -> {verdict}"
            )
        return "\n".join(lines)


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sample."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


def _query_workload(
    products: List[Product], num_queries: int, seed: int
) -> List[str]:
    """A deterministic search workload drawn from product titles.

    Each query is a 1-3 token span of some product title — what a user
    typing a partial product name sends — so the workload exercises the
    ranked path with real vocabulary instead of synthetic noise.
    """
    rng = random.Random(seed)
    # Pre-tokenise and keep only products that yield tokens at all, so
    # the sampling loop below always makes progress.
    tokenised = [
        tokens
        for tokens in (tokenize_title(product.title) for product in products)
        if tokens
    ]
    queries: List[str] = []
    while len(queries) < num_queries and tokenised:
        tokens = tokenised[rng.randrange(len(tokenised))]
        span = rng.randint(1, min(3, len(tokens)))
        start = rng.randrange(len(tokens) - span + 1)
        queries.append(" ".join(tokens[start : start + span]))
    return queries


def _result_fingerprint(results) -> Tuple[Tuple[str, float], ...]:
    """The byte-comparable form of one search's full result list."""
    return tuple((entry.product.product_id, entry.score) for entry in results)


def _engine(harness: ExperimentHarness, **kwargs) -> SynthesisEngine:
    return SynthesisEngine(
        catalog=harness.corpus.catalog,
        correspondences=harness.offline_result.correspondences,
        extractor=harness.extractor,
        category_classifier=harness.category_classifier,
        num_shards=kwargs.pop("num_shards", 8),
        **kwargs,
    )


def _mixed_run(
    harness: ExperimentHarness,
    batches: List[List],
    queries: List[str],
    top_k: int,
    store: str,
    store_path: Optional[str],
    queries_per_batch: int,
) -> MixedRunResult:
    """Interleave ingest and queries on one backend; verify isolation."""
    clear_text_caches()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]
    engine = _engine(
        harness,
        executor="serial",
        store=store,
        store_path=store_path,
    )
    # Memory backend: feed-driven service (same process, commit feed).
    # SQLite backend: reader-driven service over the live WAL file — a
    # second connection querying concurrently with the writer.
    if store == "sqlite":
        service = CatalogSearchService.from_store_path(store_path)  # type: ignore[arg-type]
    else:
        service = CatalogSearchService.from_engine(engine)

    #: commit_count -> products of that committed prefix.
    prefix_products: Dict[int, List[Product]] = {}
    #: (query, snapshot served, full result fingerprint) per query run.
    observed: List[Tuple[str, int, Tuple]] = []
    query_cursor = 0
    for batch in batches:
        engine.ingest(batch)
        prefix_products[engine.store.commit_count] = engine.products()
        for _ in range(queries_per_batch):
            query = queries[query_cursor % len(queries)]
            query_cursor += 1
            results = service.search(query, top_k=top_k)
            observed.append(
                (query, service.snapshot_commit_count, _result_fingerprint(results))
            )
    commits = len(prefix_products)
    service.close()
    engine.close()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]

    # The proof: rebuild a reference index per committed prefix actually
    # served and re-execute every query against it.  Identical ids AND
    # scores == the service answered from exactly that prefix, never
    # from a half-applied batch.
    stable = True
    snapshots = sorted({snapshot for _, snapshot, _ in observed})
    for snapshot in snapshots:
        if snapshot not in prefix_products:
            stable = False
            break
        reference = CatalogIndex(prefix_products[snapshot])
        for query, seen_snapshot, fingerprint in observed:
            if seen_snapshot != snapshot:
                continue
            expected = _result_fingerprint(reference.search(query, top_k=top_k))
            if expected != fingerprint:
                stable = False
    return MixedRunResult(
        store=store,
        commits=commits,
        queries_run=len(observed),
        distinct_snapshots=len(snapshots),
        snapshot_stable=stable,
    )


def run(
    num_offers: int = 10_000,
    num_batches: int = 10,
    num_queries: int = 5_000,
    top_k: int = 10,
    seed: int = 2011,
    store: str = "sqlite",
    store_path: Optional[str] = None,
    harness: Optional[ExperimentHarness] = None,
    mixed_queries_per_batch: int = 25,
) -> ServingBenchResult:
    """Run both serving-benchmark phases and return the measurements.

    Parameters mirror :func:`repro.experiments.runtime_bench.run` where
    they overlap; ``num_queries`` sizes the throughput workload, and
    ``mixed_queries_per_batch`` the per-commit query burst of the mixed
    phase (which always runs on both backends).
    """
    if store not in ("memory", "sqlite"):
        raise ValueError(f"store must be 'memory' or 'sqlite', got {store!r}")
    if store == "sqlite" and store_path is None:
        raise ValueError("store='sqlite' requires store_path")
    if harness is None:
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    offers = sorted(offers, key=lambda offer: offer.merchant_id)
    batches = _batches(offers, num_batches)

    # -- phase 1: build once, then hammer the index with searches
    clear_text_caches()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]
    engine = _engine(harness, executor="serial", store=store, store_path=store_path)
    service = CatalogSearchService.from_engine(engine)
    build_start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    build_seconds = time.perf_counter() - build_start
    products = engine.products()
    queries = _query_workload(products, num_queries, seed)

    latencies: List[float] = []
    queries_with_hits = 0
    query_start = time.perf_counter()
    for query in queries:
        started = time.perf_counter()
        results = service.search(query, top_k=top_k)
        latencies.append(time.perf_counter() - started)
        if results:
            queries_with_hits += 1
    query_seconds = time.perf_counter() - query_start
    index_vocabulary = service.stats()["index"]["vocabulary_size"]  # type: ignore[index]
    service.close()
    engine.close()
    if store == "sqlite":
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]

    latencies.sort()
    result = ServingBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        seed=seed,
        store=store,
        num_products=len(products),
        num_queries=len(queries),
        top_k=top_k,
        build_seconds=build_seconds,
        query_seconds=query_seconds,
        queries_per_second=(
            len(queries) / query_seconds if query_seconds > 0 else float("inf")
        ),
        p50_ms=_percentile(latencies, 0.50) * 1000.0,
        p95_ms=_percentile(latencies, 0.95) * 1000.0,
        queries_with_hits=queries_with_hits,
        index_vocabulary=int(index_vocabulary),
    )

    # -- phase 2: mixed ingest+query isolation proof on both backends
    mixed_path = None if store_path is None else store_path + ".mixed"
    result.mixed.append(
        _mixed_run(
            harness, batches, queries, top_k, "memory", None, mixed_queries_per_batch
        )
    )
    if mixed_path is not None:
        result.mixed.append(
            _mixed_run(
                harness,
                batches,
                queries,
                top_k,
                "sqlite",
                mixed_path,
                mixed_queries_per_batch,
            )
        )
    return result
