"""Table 2 — Quality of synthesized product specifications.

Paper values: 856,781 input offers; 287,135 synthesized products;
1,126,926 synthesized attributes; attribute precision 0.92; product
precision 0.85.  The reproduction reports the same rows over the synthetic
corpus (absolute counts scale with the corpus preset; the two precision
values are the quantities whose magnitude should be comparable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.corpus.config import CorpusPreset
from repro.evaluation.report import format_kv
from repro.evaluation.sampling import deterministic_sample, sample_size_for_proportion
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["Table2Result", "run"]

#: The paper's reported values, for side-by-side display.
PAPER_VALUES: Dict[str, float] = {
    "input_offers": 856_781,
    "synthesized_products": 287_135,
    "synthesized_attributes": 1_126_926,
    "attribute_precision": 0.92,
    "product_precision": 0.85,
}


@dataclass
class Table2Result:
    """Measured counterpart of paper Table 2."""

    input_offers: int
    synthesized_products: int
    synthesized_attributes: int
    attribute_precision: float
    product_precision: float
    #: Precision estimated from a 95%-confidence sample, mirroring the
    #: paper's methodology (the oracle values above are exhaustive).
    sampled_attribute_precision: float
    sampled_product_precision: float

    def as_rows(self) -> Dict[str, float]:
        """Rows in the order of the paper's table."""
        return {
            "Input Offers": self.input_offers,
            "Synthesized Products": self.synthesized_products,
            "Synthesized Product Attributes": self.synthesized_attributes,
            "Attribute Precision": self.attribute_precision,
            "Product Precision": self.product_precision,
        }

    def to_text(self) -> str:
        """Human-readable rendering."""
        rows = dict(self.as_rows())
        rows["Attribute Precision (sampled)"] = self.sampled_attribute_precision
        rows["Product Precision (sampled)"] = self.sampled_product_precision
        return format_kv(rows, title="Table 2 — Quality of synthesized product specifications")


def run(harness: Optional[ExperimentHarness] = None) -> Table2Result:
    """Run the Table 2 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    synthesis = harness.synthesis_result
    evaluation = harness.evaluate_synthesis()

    # Sampled estimate following the paper's methodology: sample products at
    # the 95% confidence sample size and judge only the sample.
    sample_size = sample_size_for_proportion(
        confidence=0.95, margin_of_error=0.05, population=len(synthesis.products)
    )
    sampled_products = deterministic_sample(synthesis.products, sample_size, seed=95)
    sampled_evaluation = harness.oracle.evaluate_products(sampled_products)

    return Table2Result(
        input_offers=len(harness.unmatched_offers),
        synthesized_products=synthesis.num_products(),
        synthesized_attributes=synthesis.num_attributes(),
        attribute_precision=evaluation.attribute_precision,
        product_precision=evaluation.product_precision,
        sampled_attribute_precision=sampled_evaluation.attribute_precision,
        sampled_product_precision=sampled_evaluation.product_precision,
    )
