"""Throughput benchmark: streaming engine vs. looped one-shot pipeline.

The scenario is the paper's production setting: offers arrive as a
continuous merchant-feed stream, and after every micro-batch the system
must have an up-to-date set of synthesized products.

* **Baseline** — the only way to do this with the one-shot
  :class:`~repro.synthesis.pipeline.ProductSynthesisPipeline` is to loop
  ``synthesize()`` over the accumulated stream after each batch,
  recomputing classification, reconciliation, clustering and fusion for
  every offer seen so far (O(total) work per batch, O(n·batches) overall).
* **Engine** — :class:`~repro.runtime.SynthesisEngine` ingests each batch
  incrementally (O(batch) work per batch), re-fusing only the clusters
  the batch touched, with sharded execution and memoised text statistics.

Both sides see identical pre-extracted offers and produce identical
products (asserted), so the comparison is purely about work avoided.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.corpus.config import CorpusPreset
from repro.experiments.harness import ExperimentHarness
from repro.model.products import Product
from repro.runtime import SynthesisEngine
from repro.runtime.executors import ShardExecutor
from repro.synthesis.pipeline import ProductSynthesisPipeline
from repro.text.memo import clear_text_caches

__all__ = ["RuntimeBenchResult", "run"]


@dataclass
class RuntimeBenchResult:
    """Everything measured by one benchmark run."""

    num_offers: int
    num_batches: int
    executor: str
    num_shards: int
    seed: int
    #: Seconds for the looped pipeline to keep products current per batch.
    baseline_seconds: float
    #: Seconds for one monolithic ``synthesize()`` over the whole stream.
    single_pass_seconds: float
    #: Seconds for the engine to ingest the same stream batch by batch.
    engine_seconds: float
    #: Products synthesized (identical for engine and baseline).
    num_products: int
    #: Whether engine and baseline products are byte-identical.
    products_identical: bool
    category_vocabulary: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Baseline seconds per engine second (higher is better)."""
        if self.engine_seconds == 0.0:
            return float("inf")
        return self.baseline_seconds / self.engine_seconds

    @property
    def engine_offers_per_second(self) -> float:
        """Ingest throughput of the engine over the whole stream."""
        if self.engine_seconds == 0.0:
            return float("inf")
        return self.num_offers / self.engine_seconds

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (written to ``BENCH_runtime.json``)."""
        return {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "executor": self.executor,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "single_pass_seconds": round(self.single_pass_seconds, 4),
            "engine_seconds": round(self.engine_seconds, 4),
            "speedup": round(self.speedup, 3),
            "engine_offers_per_second": round(self.engine_offers_per_second, 1),
            "num_products": self.num_products,
            "products_identical": self.products_identical,
            "num_categories": len(self.category_vocabulary),
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [
            "Runtime throughput benchmark (streaming engine vs looped pipeline)",
            f"  stream: {self.num_offers:,} offers in {self.num_batches} micro-batches "
            f"(seed {self.seed})",
            f"  engine: {self.num_shards} shards, {self.executor} executor",
            f"  looped pipeline : {self.baseline_seconds:8.2f}s "
            f"(re-synthesizes the accumulated stream per batch)",
            f"  single pass     : {self.single_pass_seconds:8.2f}s "
            f"(one monolithic synthesize, no per-batch currency)",
            f"  engine          : {self.engine_seconds:8.2f}s "
            f"({self.engine_offers_per_second:,.0f} offers/s)",
            f"  speedup         : {self.speedup:8.2f}x",
            f"  products        : {self.num_products:,} "
            f"(identical: {self.products_identical})",
        ]
        return "\n".join(lines)


def _product_fingerprint(products: List[Product]) -> List[Tuple[object, ...]]:
    return sorted(
        (
            product.product_id,
            product.category_id,
            product.title,
            tuple(pair.as_tuple() for pair in product.specification),
            product.source_offer_ids,
        )
        for product in products
    )


def _batches(items: List, num_batches: int) -> List[List]:
    size = max(1, (len(items) + num_batches - 1) // num_batches)
    return [items[start : start + size] for start in range(0, len(items), size)]


def run(
    num_offers: int = 10_000,
    num_batches: int = 10,
    executor: Union[str, ShardExecutor] = "process",
    num_shards: int = 8,
    seed: int = 2011,
    harness: Optional[ExperimentHarness] = None,
) -> RuntimeBenchResult:
    """Run the throughput benchmark and return its measurements.

    Parameters
    ----------
    num_offers:
        Stream length; the synthetic corpus is scaled until it yields at
        least this many unmatched offers (then truncated to exactly it).
    num_batches:
        Micro-batches the stream is split into.
    executor, num_shards:
        Engine configuration.
    seed:
        Corpus seed.
    harness:
        Pre-built harness to reuse (tests); overrides ``num_offers``'s
        corpus scaling but still truncates the stream.
    """
    if harness is None:
        # SMALL yields ~1.3k unmatched offers at scale 1; overshoot a little
        # so the stream can be truncated to exactly num_offers.
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    batches = _batches(offers, num_batches)

    def build_pipeline() -> ProductSynthesisPipeline:
        return ProductSynthesisPipeline(
            catalog=harness.corpus.catalog,
            correspondences=harness.offline_result.correspondences,
            extractor=harness.extractor,
            category_classifier=harness.category_classifier,
        )

    # -- baseline: keep products current by re-running the one-shot pipeline
    clear_text_caches()
    pipeline = build_pipeline()
    baseline_products: List[Product] = []
    start = time.perf_counter()
    accumulated: List = []
    for batch in batches:
        accumulated.extend(batch)
        baseline_products = pipeline.synthesize(accumulated).products
    baseline_seconds = time.perf_counter() - start

    # -- reference: one monolithic pass (no per-batch product currency)
    clear_text_caches()
    pipeline = build_pipeline()
    start = time.perf_counter()
    single_pass_products = pipeline.synthesize(offers).products
    single_pass_seconds = time.perf_counter() - start

    # -- engine: incremental ingest of the same stream
    clear_text_caches()
    engine = SynthesisEngine(
        catalog=harness.corpus.catalog,
        correspondences=harness.offline_result.correspondences,
        extractor=harness.extractor,
        category_classifier=harness.category_classifier,
        num_shards=num_shards,
        executor=executor,
    )
    start = time.perf_counter()
    for batch in batches:
        engine.ingest(batch)
    engine_products = engine.products()
    engine_seconds = time.perf_counter() - start
    snapshot = engine.snapshot()
    engine.close()

    fingerprint = _product_fingerprint(engine_products)
    identical = (
        fingerprint == _product_fingerprint(baseline_products)
        and fingerprint == _product_fingerprint(single_pass_products)
    )
    executor_name = executor if isinstance(executor, str) else executor.name
    return RuntimeBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        executor=executor_name,
        num_shards=num_shards,
        seed=seed,
        baseline_seconds=baseline_seconds,
        single_pass_seconds=single_pass_seconds,
        engine_seconds=engine_seconds,
        num_products=len(engine_products),
        products_identical=identical,
        category_vocabulary=snapshot.category_vocabulary,
    )
