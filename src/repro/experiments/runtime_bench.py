"""Throughput benchmark: streaming engine vs. looped one-shot pipeline.

The scenario is the paper's production setting: offers arrive as a
continuous merchant-feed stream, and after every micro-batch the system
must have an up-to-date set of synthesized products.

* **Baseline** — the only way to do this with the one-shot
  :class:`~repro.synthesis.pipeline.ProductSynthesisPipeline` is to loop
  ``synthesize()`` over the accumulated stream after each batch,
  recomputing classification, reconciliation, clustering and fusion for
  every offer seen so far (O(total) work per batch, O(n·batches) overall).
* **Engine** — :class:`~repro.runtime.SynthesisEngine` ingests each batch
  incrementally (O(batch) work per batch), re-fusing only the clusters
  the batch touched, with sharded execution and memoised text statistics.

For a process-pool executor the engine run is measured twice: once with
the delta re-fusion protocol (workers keep shard-resident cluster state,
batches ship only new offers) and once with full-state shipping (every
touched cluster re-pickled per batch, the pre-delta behaviour), so the
payload cut is visible in the report (``offers_shipped_*``).

Both sides see identical pre-extracted offers and produce identical
products (asserted), so the comparison is purely about work avoided.
The engine side can run against the durable SQLite catalog store
(``store="sqlite"``), including resuming a previously interrupted run
(``resume=True``), which is what the CI durable-path smoke exercises.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.corpus.config import CorpusPreset
from repro.experiments.harness import ExperimentHarness
from repro.model.products import Product, product_fingerprint
from repro.obs import get_registry
from repro.runtime import MultiNodeEngine, MultiProcessEngine, SynthesisEngine
from repro.runtime.executors import ShardExecutor
from repro.synthesis.pipeline import ProductSynthesisPipeline
from repro.text.memo import clear_text_caches

__all__ = ["RuntimeBenchResult", "MultiNodeBenchResult", "run", "run_multinode"]


@dataclass
class RuntimeBenchResult:
    """Everything measured by one benchmark run."""

    num_offers: int
    num_batches: int
    executor: str
    num_shards: int
    seed: int
    #: Catalog store backend the engine ran against ("memory"/"sqlite").
    store: str
    #: Seconds for the looped pipeline to keep products current per batch.
    baseline_seconds: float
    #: Seconds for one monolithic ``synthesize()`` over the whole stream.
    single_pass_seconds: float
    #: Seconds for the engine to ingest the same stream batch by batch.
    engine_seconds: float
    #: Products synthesized (identical for engine and baseline).
    num_products: int
    #: Whether engine and baseline products are byte-identical.
    products_identical: bool
    category_vocabulary: Dict[str, int] = field(default_factory=dict)
    #: Engine time with delta re-fusion disabled (process executors only).
    full_ship_seconds: Optional[float] = None
    #: Offers shipped to workers with the delta protocol / full shipping.
    offers_shipped_delta: Optional[int] = None
    offers_shipped_full: Optional[int] = None
    #: Clusters process workers resynced from the durable store.
    worker_resyncs: int = 0
    #: Whether the engine resumed a previously persisted stream.
    resumed: bool = False
    #: ``MetricsRegistry.snapshot()`` taken right after the engine run
    #: (counters, gauges, histogram percentiles; see docs/observability.md).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        """Baseline seconds per engine second (higher is better)."""
        if self.engine_seconds == 0.0:
            return float("inf")
        return self.baseline_seconds / self.engine_seconds

    @property
    def engine_offers_per_second(self) -> float:
        """Ingest throughput of the engine over the whole stream."""
        if self.engine_seconds == 0.0:
            return float("inf")
        return self.num_offers / self.engine_seconds

    @property
    def delta_payload_ratio(self) -> Optional[float]:
        """Delta-shipped offers over full-shipped offers (lower is better)."""
        if not self.offers_shipped_full or self.offers_shipped_delta is None:
            return None
        return self.offers_shipped_delta / self.offers_shipped_full

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (written to ``BENCH_runtime.json``)."""
        payload: Dict[str, object] = {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "executor": self.executor,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "store": self.store,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "single_pass_seconds": round(self.single_pass_seconds, 4),
            "engine_seconds": round(self.engine_seconds, 4),
            "speedup": round(self.speedup, 3),
            "engine_offers_per_second": round(self.engine_offers_per_second, 1),
            "num_products": self.num_products,
            "products_identical": self.products_identical,
            "num_categories": len(self.category_vocabulary),
            "worker_resyncs": self.worker_resyncs,
            "resumed": self.resumed,
        }
        if self.full_ship_seconds is not None:
            payload["full_ship_seconds"] = round(self.full_ship_seconds, 4)
        if self.offers_shipped_delta is not None:
            payload["offers_shipped_delta"] = self.offers_shipped_delta
        if self.offers_shipped_full is not None:
            payload["offers_shipped_full"] = self.offers_shipped_full
        ratio = self.delta_payload_ratio
        if ratio is not None:
            payload["delta_payload_ratio"] = round(ratio, 4)
        payload["metrics"] = self.metrics
        return payload

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        lines = [
            "Runtime throughput benchmark (streaming engine vs looped pipeline)",
            f"  stream: {self.num_offers:,} offers in {self.num_batches} micro-batches "
            f"(seed {self.seed})",
            f"  engine: {self.num_shards} shards, {self.executor} executor, "
            f"{self.store} store" + (" (resumed)" if self.resumed else ""),
            f"  looped pipeline : {self.baseline_seconds:8.2f}s "
            f"(re-synthesizes the accumulated stream per batch)",
            f"  single pass     : {self.single_pass_seconds:8.2f}s "
            f"(one monolithic synthesize, no per-batch currency)",
            f"  engine          : {self.engine_seconds:8.2f}s "
            f"({self.engine_offers_per_second:,.0f} offers/s)",
            f"  speedup         : {self.speedup:8.2f}x",
            f"  products        : {self.num_products:,} "
            f"(identical: {self.products_identical})",
        ]
        if self.full_ship_seconds is not None:
            lines.append(
                f"  full shipping   : {self.full_ship_seconds:8.2f}s "
                f"(delta protocol disabled)"
            )
        ratio = self.delta_payload_ratio
        if ratio is not None:
            lines.append(
                f"  delta payloads  : {self.offers_shipped_delta:,} offers shipped "
                f"vs {self.offers_shipped_full:,} full-state "
                f"({100.0 * (1.0 - ratio):.0f}% cut)"
            )
        return "\n".join(lines)


def _product_fingerprint(products: List[Product]) -> List[Tuple[object, ...]]:
    return sorted(product_fingerprint(products))


def _batches(items: List, num_batches: int) -> List[List]:
    size = max(1, (len(items) + num_batches - 1) // num_batches)
    return [items[start : start + size] for start in range(0, len(items), size)]


def _remove_sqlite_files(path: str) -> None:
    for suffix in ("", "-wal", "-shm"):
        try:
            os.remove(path + suffix)
        except FileNotFoundError:
            pass


def run(
    num_offers: int = 10_000,
    num_batches: int = 10,
    executor: Union[str, ShardExecutor] = "process",
    num_shards: int = 8,
    seed: int = 2011,
    harness: Optional[ExperimentHarness] = None,
    store: str = "memory",
    store_path: Optional[str] = None,
    resume: bool = False,
) -> RuntimeBenchResult:
    """Run the throughput benchmark and return its measurements.

    Parameters
    ----------
    num_offers:
        Stream length; the synthetic corpus is scaled until it yields at
        least this many unmatched offers (then truncated to exactly it).
    num_batches:
        Micro-batches the stream is split into.
    executor, num_shards:
        Engine configuration.
    seed:
        Corpus seed.
    harness:
        Pre-built harness to reuse (tests); overrides ``num_offers``'s
        corpus scaling but still truncates the stream.
    store, store_path:
        Catalog store backend for the engine run; ``"sqlite"`` requires
        ``store_path`` and exercises the durable path (per-ingest
        commits, WAL mode).
    resume:
        Reopen an existing SQLite store instead of starting fresh: the
        engine restores the persisted state and deduplicates replayed
        offers, so an interrupted stream continues where it left off.
    """
    if store == "sqlite" and store_path is None:
        raise ValueError("store='sqlite' requires store_path")
    if resume and store != "sqlite":
        raise ValueError("resume=True requires store='sqlite'")
    # The artifact's metrics section should cover this run only, not
    # whatever an earlier bench in the same process accumulated.
    registry = get_registry()
    registry.clear()
    if harness is None:
        # SMALL yields ~1.3k unmatched offers at scale 1; overshoot a little
        # so the stream can be truncated to exactly num_offers.
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    # The corpus generator emits a product's offers adjacently; real
    # streams are *merchant feeds*, so the same product's offers arrive
    # spread across batches.  A stable sort by merchant reproduces that
    # (each batch ≈ a few merchants' feeds) and is what makes clusters
    # grow across batches — the case the re-fusion protocols differ on.
    # Deterministic, and every measured side sees the identical stream.
    offers = sorted(offers, key=lambda offer: offer.merchant_id)
    batches = _batches(offers, num_batches)

    def build_pipeline() -> ProductSynthesisPipeline:
        """A fresh batch pipeline over the harness corpus."""
        return ProductSynthesisPipeline(
            catalog=harness.corpus.catalog,
            correspondences=harness.offline_result.correspondences,
            extractor=harness.extractor,
            category_classifier=harness.category_classifier,
        )

    def run_engine(
        engine_store: str,
        engine_store_path: Optional[str],
        delta_refusion: Optional[bool],
    ) -> Tuple[float, List[Product], SynthesisEngine]:
        """Time one engine configuration over the shared batch stream."""
        clear_text_caches()
        engine = SynthesisEngine(
            catalog=harness.corpus.catalog,
            correspondences=harness.offline_result.correspondences,
            extractor=harness.extractor,
            category_classifier=harness.category_classifier,
            num_shards=num_shards,
            executor=executor,
            store=engine_store,
            store_path=engine_store_path,
            delta_refusion=delta_refusion,
        )
        start = time.perf_counter()
        for batch in batches:
            engine.ingest(batch)
        products = engine.products()
        seconds = time.perf_counter() - start
        return seconds, products, engine

    # -- baseline: keep products current by re-running the one-shot pipeline
    clear_text_caches()
    pipeline = build_pipeline()
    baseline_products: List[Product] = []
    start = time.perf_counter()
    accumulated: List = []
    for batch in batches:
        accumulated.extend(batch)
        baseline_products = pipeline.synthesize(accumulated).products
    baseline_seconds = time.perf_counter() - start

    # -- reference: one monolithic pass (no per-batch product currency)
    clear_text_caches()
    pipeline = build_pipeline()
    start = time.perf_counter()
    single_pass_products = pipeline.synthesize(offers).products
    single_pass_seconds = time.perf_counter() - start

    # -- engine: incremental ingest of the same stream
    if store == "sqlite" and not resume:
        _remove_sqlite_files(store_path)  # type: ignore[arg-type]
    engine_seconds, engine_products, engine = run_engine(store, store_path, None)
    snapshot = engine.snapshot()
    transport = engine.transport_stats()
    # Taken before close() — close detaches the engine's transport
    # bridge, and the comparison run below must not leak in.
    metrics_snapshot = registry.snapshot()
    engine.close()

    # -- comparison: same engine with the delta protocol disabled
    # (full-state shipping), for executors that support delta at all.
    full_ship_seconds: Optional[float] = None
    offers_shipped_delta: Optional[int] = None
    offers_shipped_full: Optional[int] = None
    full_ship_products: Optional[List[Product]] = None
    if getattr(engine._executor, "supports_pinning", False):
        full_store_path = None if store_path is None else store_path + ".fullship"
        if full_store_path is not None:
            _remove_sqlite_files(full_store_path)
        full_ship_seconds, full_ship_products, full_engine = run_engine(
            store, full_store_path, False
        )
        offers_shipped_delta = transport.offers_shipped
        offers_shipped_full = full_engine.transport_stats().offers_shipped
        full_engine.close()
        if full_store_path is not None:
            _remove_sqlite_files(full_store_path)

    fingerprint = _product_fingerprint(engine_products)
    identical = fingerprint == _product_fingerprint(baseline_products) and (
        fingerprint == _product_fingerprint(single_pass_products)
    )
    if full_ship_products is not None:
        identical = identical and fingerprint == _product_fingerprint(full_ship_products)
    executor_name = executor if isinstance(executor, str) else executor.name
    return RuntimeBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        executor=executor_name,
        num_shards=num_shards,
        seed=seed,
        store=store,
        baseline_seconds=baseline_seconds,
        single_pass_seconds=single_pass_seconds,
        engine_seconds=engine_seconds,
        num_products=len(engine_products),
        products_identical=identical,
        category_vocabulary=snapshot.category_vocabulary,
        full_ship_seconds=full_ship_seconds,
        offers_shipped_delta=offers_shipped_delta,
        offers_shipped_full=offers_shipped_full,
        worker_resyncs=transport.worker_resyncs,
        resumed=resume,
        metrics=metrics_snapshot,
    )


# -- multi-node scaling benchmark ----------------------------------------------


@dataclass
class MultiNodeRun:
    """One node count's measurements within the multi-node benchmark."""

    num_nodes: int
    engine_seconds: float
    #: Busiest node's ingest seconds — the critical path of the batch
    #: waves, i.e. the wall-clock a truly parallel deployment pays.
    max_node_seconds: float
    #: Sum of every node's ingest seconds (the total work performed).
    total_node_seconds: float
    #: Coordinator-side serial overhead: dedup + routing plus commit-
    #: barrier waits.  The serial fraction pipelining and hint routing
    #: attack; kept separate from ``max_node_seconds`` so routing cost
    #: is never mistaken for node work.
    coordinator_seconds: float = 0.0
    #: Offers whose routing hint pointed at the wrong node (hint mode).
    misrouted_offers: int = 0
    #: Offers routed by hint at all (the accuracy denominator).
    hinted_offers: int = 0
    #: 1 - misrouted/hinted, or None when hint routing never ran.
    hint_accuracy: Optional[float] = None
    #: Offers routed to each node, in node-id order.
    node_offers: List[int] = field(default_factory=list)
    products_identical: bool = False
    worker_resyncs: int = 0
    #: Single-engine wall seconds over this run's wall seconds (in
    #: ``mode="processes"`` the nodes genuinely run on separate cores,
    #: so this measures realised — not just available — scaling).
    wall_speedup: Optional[float] = None

    @property
    def scaling_bound(self) -> float:
        """Parallel speedup available over one node: total work divided
        by the critical path.  Near ``num_nodes`` when shards balance."""
        if self.max_node_seconds == 0.0:
            return float(self.num_nodes)
        return self.total_node_seconds / self.max_node_seconds

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary."""
        payload: Dict[str, object] = {
            "num_nodes": self.num_nodes,
            "engine_seconds": round(self.engine_seconds, 4),
            "max_node_seconds": round(self.max_node_seconds, 4),
            "total_node_seconds": round(self.total_node_seconds, 4),
            "coordinator_seconds": round(self.coordinator_seconds, 4),
            "misrouted_offers": self.misrouted_offers,
            "hinted_offers": self.hinted_offers,
            "hint_accuracy": (
                round(self.hint_accuracy, 4) if self.hint_accuracy is not None else None
            ),
            "scaling_bound": round(self.scaling_bound, 3),
            "node_offers": list(self.node_offers),
            "products_identical": self.products_identical,
            "worker_resyncs": self.worker_resyncs,
        }
        if self.wall_speedup is not None:
            payload["wall_speedup"] = round(self.wall_speedup, 3)
        return payload


@dataclass
class MultiNodeBenchResult:
    """Measurements of the ``runtime-bench --nodes/--processes`` paths."""

    num_offers: int
    num_batches: int
    executor: str
    num_shards: int
    seed: int
    store: str
    #: Seconds for one single (non-clustered) engine over the stream.
    single_engine_seconds: float
    #: ``"threads"`` (MultiNodeEngine, shared mirror under a lock) or
    #: ``"processes"`` (MultiProcessEngine, one OS process per node).
    mode: str = "threads"
    #: Cluster knobs the clusters ran with (see the engines' docs).
    pipeline_depth: int = 1
    hint_routing: bool = False
    #: ``os.cpu_count()`` of the measuring box — realised wall speedup
    #: is physically bounded by it, so readings travel with it.
    cpu_count: Optional[int] = None
    runs: List[MultiNodeRun] = field(default_factory=list)
    #: ``MetricsRegistry.snapshot()`` taken after the largest cluster's
    #: run (process mode merges the node processes' fragments in).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def products_identical(self) -> bool:
        """Whether every node count reproduced the single engine's catalog."""
        return all(run.products_identical for run in self.runs)

    def run_for(self, num_nodes: int) -> MultiNodeRun:
        """The measurements of one node count."""
        for entry in self.runs:
            if entry.num_nodes == num_nodes:
                return entry
        raise KeyError(f"no run with {num_nodes} nodes")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (``BENCH_runtime_cluster.json``)."""
        return {
            "num_offers": self.num_offers,
            "num_batches": self.num_batches,
            "executor": self.executor,
            "num_shards": self.num_shards,
            "seed": self.seed,
            "store": self.store,
            "mode": self.mode,
            "pipeline_depth": self.pipeline_depth,
            "hint_routing": self.hint_routing,
            "cpu_count": self.cpu_count,
            "single_engine_seconds": round(self.single_engine_seconds, 4),
            "products_identical": self.products_identical,
            "runs": [entry.to_dict() for entry in self.runs],
            "metrics": self.metrics,
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_text(self) -> str:
        """Human-readable report."""
        flavour = "process" if self.mode == "processes" else "thread"
        lines = [
            f"Multi-node runtime benchmark ({flavour} nodes over a shared store)",
            f"  stream: {self.num_offers:,} offers in {self.num_batches} micro-batches "
            f"(seed {self.seed})",
            f"  cluster: {self.num_shards} shards, {self.executor} executor per node, "
            f"{self.store} store, {self.mode} mode",
            f"  single engine   : {self.single_engine_seconds:8.2f}s",
        ]
        if self.pipeline_depth != 1 or self.hint_routing:
            lines.append(
                f"  knobs: pipeline_depth={self.pipeline_depth}, "
                f"hint_routing={self.hint_routing}"
            )
        for entry in self.runs:
            wall = ""
            if entry.wall_speedup is not None:
                wall = f", wall {entry.engine_seconds:6.2f}s ({entry.wall_speedup:4.2f}x)"
            lines.append(
                f"  {entry.num_nodes} node(s)       : busiest {entry.max_node_seconds:6.2f}s "
                f"of {entry.total_node_seconds:6.2f}s total work, "
                f"coordinator {entry.coordinator_seconds:5.2f}s, "
                f"scaling bound {entry.scaling_bound:4.2f}x"
                f"{wall} "
                f"(identical: {entry.products_identical})"
            )
        return "\n".join(lines)


def run_multinode(
    num_offers: int = 10_000,
    num_batches: int = 10,
    executor: Union[str, ShardExecutor, None] = None,
    num_shards: int = 8,
    seed: int = 2011,
    harness: Optional[ExperimentHarness] = None,
    store: str = "memory",
    store_path: Optional[str] = None,
    node_counts: Sequence[int] = (1, 2, 4),
    mode: str = "threads",
    pipeline_depth: int = 1,
    hint_routing: bool = False,
) -> MultiNodeBenchResult:
    """Measure multi-node ingest scaling against a single engine.

    For every entry of ``node_counts`` a fresh cluster absorbs the same
    feed-ordered stream the single-engine benchmark uses.

    ``mode="threads"`` builds :class:`MultiNodeEngine` clusters (shared
    store mirror, per-node ``executor``); sub-batches are dispatched
    sequentially so each node's busy time is measured contention-free,
    and the *scaling bound* — total work over the critical path — is
    the machine-independent headline (wall-clock through one shared
    mirror measures core count, not partitioning quality).

    ``mode="processes"`` builds
    :class:`~repro.runtime.procnode.MultiProcessEngine` clusters: one
    OS process per node over a shared SQLite WAL file (``store_path``
    required; each node count runs against its own ``.procN`` file).
    ``executor`` then selects the engine executor *inside* each node —
    ``None`` defaults to ``"serial"`` there (and to ``"process"`` in
    threads mode); ``"process"`` is rejected, daemonic node processes
    cannot spawn worker pools.  Here the per-run ``wall_speedup``
    against the serial single engine *is* realised multi-core scaling —
    on a multi-core box it approaches the scaling bound; on fewer cores
    the bound still reports the parallelism available.

    After the first micro-batch each cluster rebalances by observed
    load: the deterministic modulo layout ignores category skew, and the
    coordinator's load-aware reassignment (with its epoch re-fencing and
    store resync) is precisely the mechanism a warm production cluster
    would use.  The rebalance cost is inside the measured region.

    ``pipeline_depth`` and ``hint_routing`` are handed to the clusters
    verbatim (both facades accept them): depth 2 overlaps each batch's
    commit barrier with the next batch's routing, and hint routing
    moves per-offer classification from the coordinator onto the nodes.
    Products are byte-identical under every combination (asserted per
    run); the per-run ``coordinator_seconds`` shows the serial overhead
    they remove.
    """
    if mode not in ("threads", "processes"):
        raise ValueError(f"mode must be 'threads' or 'processes', got {mode!r}")
    if mode == "processes" and store_path is None:
        raise ValueError("mode='processes' requires store_path (the shared WAL file)")
    if store == "sqlite" and store_path is None:
        raise ValueError("store='sqlite' requires store_path")
    # The artifact's metrics section should cover this run only.
    registry = get_registry()
    registry.clear()
    if harness is None:
        factor = max(1.0, num_offers / 1200.0)
        harness = ExperimentHarness(CorpusPreset.SMALL.config(seed=seed).scaled(factor))
    offers = harness.unmatched_offers[:num_offers]
    offers = sorted(offers, key=lambda offer: offer.merchant_id)
    batches = _batches(offers, num_batches)

    # Process nodes are the parallelism themselves: their engines run
    # serial executors by default (and never process pools — daemonic
    # nodes cannot spawn workers); the single-engine reference uses the
    # same executor, the honest one-process baseline for realised
    # wall-clock scaling.
    if executor is None:
        executor = "serial" if mode == "processes" else "process"
    if mode == "processes" and (
        executor == "process" or getattr(executor, "supports_pinning", False)
    ):
        raise ValueError(
            "mode='processes' cannot use a process-pool executor inside the "
            "node processes; pass executor='serial' or 'thread'"
        )
    pipeline_kwargs = dict(
        catalog=harness.corpus.catalog,
        correspondences=harness.offline_result.correspondences,
        extractor=harness.extractor,
        category_classifier=harness.category_classifier,
    )
    engine_kwargs = dict(num_shards=num_shards, executor=executor, **pipeline_kwargs)

    clear_text_caches()
    single = SynthesisEngine(**engine_kwargs)
    start = time.perf_counter()
    for batch in batches:
        single.ingest(batch)
    reference_products = single.products()
    single_engine_seconds = time.perf_counter() - start
    single.close()
    reference = _product_fingerprint(reference_products)

    result = MultiNodeBenchResult(
        num_offers=len(offers),
        num_batches=len(batches),
        executor=executor if isinstance(executor, str) else executor.name,
        num_shards=num_shards,
        seed=seed,
        store="sqlite" if mode == "processes" else store,
        mode=mode,
        pipeline_depth=pipeline_depth,
        hint_routing=hint_routing,
        cpu_count=os.cpu_count(),
        single_engine_seconds=single_engine_seconds,
    )
    for num_nodes in node_counts:
        cluster_path = None
        if store_path is not None:
            suffix = f".proc{num_nodes}" if mode == "processes" else f".nodes{num_nodes}"
            cluster_path = f"{store_path}{suffix}"
            _remove_sqlite_files(cluster_path)
        clear_text_caches()
        if mode == "processes":
            cluster = MultiProcessEngine(
                num_nodes=num_nodes,
                num_shards=num_shards,
                node_executor=executor,
                store_path=cluster_path,
                pipeline_depth=pipeline_depth,
                hint_routing=hint_routing,
                **pipeline_kwargs,
            )
        else:
            cluster = MultiNodeEngine(
                num_nodes=num_nodes,
                store=store,
                store_path=cluster_path,
                pipeline_depth=pipeline_depth,
                hint_routing=hint_routing,
                **engine_kwargs,
            )
        start = time.perf_counter()
        for position, batch in enumerate(batches):
            cluster.ingest(batch)
            if position == 0 and num_nodes > 1:
                cluster.rebalance()
        products = cluster.products()
        engine_seconds = time.perf_counter() - start
        node_stats = cluster.node_stats()
        transport = cluster.transport_stats()
        coordinator_seconds = cluster.coordinator_seconds
        # Snapshot before close() — close detaches the cluster's metric
        # providers.  Process mode first pulls every node process's
        # registry over the pipe so the merged view includes node-side
        # engine counters and spans; the last (largest) cluster's
        # snapshot is the one the artifact keeps.
        if mode == "processes":
            cluster.node_metrics()
        result.metrics = registry.snapshot()
        cluster.close()
        if cluster_path is not None:
            _remove_sqlite_files(cluster_path)
        busy = [stats.busy_seconds for stats in node_stats]
        result.runs.append(
            MultiNodeRun(
                num_nodes=num_nodes,
                engine_seconds=engine_seconds,
                max_node_seconds=max(busy) if busy else 0.0,
                total_node_seconds=sum(busy),
                coordinator_seconds=coordinator_seconds,
                misrouted_offers=transport.misrouted_offers,
                hinted_offers=transport.hinted_offers,
                hint_accuracy=transport.hint_accuracy,
                node_offers=[stats.offers_routed for stats in node_stats],
                products_identical=_product_fingerprint(products) == reference,
                worker_resyncs=transport.worker_resyncs,
                # Realised scaling is only meaningful when the nodes
                # genuinely run concurrently (their own processes);
                # thread-mode dispatch here is sequential by design.
                wall_speedup=(
                    single_engine_seconds / engine_seconds
                    if mode == "processes" and engine_seconds > 0
                    else None
                ),
            )
        )
    return result
