"""Shared helpers for the precision-vs-coverage figure experiments (6-9)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.coverage import (
    PrecisionCoveragePoint,
    precision_coverage_curve,
)
from repro.evaluation.oracle import EvaluationOracle
from repro.evaluation.report import format_curve, format_table
from repro.matching.correspondence import ScoredCandidate

__all__ = [
    "FigureSeries",
    "FigureResult",
    "build_series",
    "filter_to_categories",
    "count_correct",
    "reference_coverage_for",
]

#: Number of points reported per curve.
CURVE_POINTS = 20


@dataclass
class FigureSeries:
    """One matcher's precision-vs-coverage behaviour.

    ``labels`` holds the correctness of every retained candidate in
    descending-score order, so precision can be computed exactly at any
    coverage; ``curve`` is the down-sampled rendering used for display.
    """

    name: str
    curve: List[PrecisionCoveragePoint]
    num_candidates: int
    labels: List[bool] = field(default_factory=list)

    def precision_at(self, coverage: int) -> Optional[float]:
        """Exact precision of the top-``coverage`` candidates."""
        if not self.labels:
            return None
        top = self.labels[: min(max(coverage, 1), len(self.labels))]
        return sum(top) / len(top)

    def coverage_at_precision(self, precision: float) -> int:
        """The largest coverage at which the series still reaches ``precision``."""
        best = 0
        correct = 0
        for index, label in enumerate(self.labels, start=1):
            if label:
                correct += 1
            if correct / index >= precision:
                best = index
        return best

    def max_coverage(self) -> int:
        """The largest coverage the matcher reaches."""
        return len(self.labels) if self.labels else 0


@dataclass
class FigureResult:
    """A set of named precision-vs-coverage series."""

    title: str
    series: Dict[str, FigureSeries] = field(default_factory=dict)
    #: Coverage level used for the headline comparison; when unset, the
    #: largest coverage reachable by every series is used.  Experiments set
    #: it to roughly half the number of correct correspondences in scope,
    #: which is the "interesting" region of the paper's figures.
    reference_coverage: Optional[int] = None

    def add(self, series: FigureSeries) -> None:
        """Register a series."""
        self.series[series.name] = series

    def get(self, name: str) -> FigureSeries:
        """The series with the given name.

        Raises
        ------
        KeyError
            If the series does not exist.
        """
        return self.series[name]

    def common_coverage(self) -> int:
        """A coverage level reachable by every series (for fair comparison)."""
        coverages = [series.max_coverage() for series in self.series.values() if series.curve]
        if not coverages:
            return 0
        return min(coverages)

    def comparison_coverage(self) -> int:
        """The coverage level used by :meth:`precision_comparison`."""
        if self.reference_coverage is not None:
            return self.reference_coverage
        return self.common_coverage()

    def precision_comparison(self, coverage: Optional[int] = None) -> Dict[str, float]:
        """Precision of every series at a common coverage level."""
        level = coverage or self.comparison_coverage()
        comparison: Dict[str, float] = {}
        for name, series in self.series.items():
            precision = series.precision_at(level)
            if precision is not None:
                comparison[name] = precision
        return comparison

    def to_text(self) -> str:
        """Human-readable rendering: the comparison table plus the curves."""
        level = self.comparison_coverage()
        comparison_rows = [
            [name, level, precision]
            for name, precision in sorted(
                self.precision_comparison(level).items(), key=lambda item: -item[1]
            )
        ]
        comparison = format_table(
            ["series", "coverage", "precision"], comparison_rows, title=self.title
        )
        curves = format_curve(
            {name: series.curve for name, series in self.series.items()},
            title="precision-vs-coverage points",
        )
        return f"{comparison}\n\n{curves}"


def count_correct(
    scored: Sequence[ScoredCandidate],
    oracle: EvaluationOracle,
    exclude_identity: bool = True,
) -> int:
    """Number of correct (non-identity) candidates in a scored set."""
    return sum(
        1
        for candidate, correct in oracle.correspondence_labels(
            list(scored), exclude_identity=exclude_identity
        )
        if correct
    )


def reference_coverage_for(
    scored: Sequence[ScoredCandidate],
    oracle: EvaluationOracle,
    fraction: float = 0.5,
    minimum: int = 20,
) -> int:
    """A comparison coverage level: a fraction of the correct candidates in scope.

    The paper compares matchers at coverage levels well inside the region
    where a good matcher can still be precise (10K-20K correspondences out
    of 414K candidates).  Scaling with the number of correct
    correspondences keeps the comparison meaningful across corpus sizes.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return max(minimum, int(count_correct(scored, oracle) * fraction))


def filter_to_categories(
    scored: Sequence[ScoredCandidate], category_ids: Sequence[str]
) -> List[ScoredCandidate]:
    """Keep only candidates whose category is in ``category_ids``."""
    allowed = set(category_ids)
    if not allowed:
        return list(scored)
    return [item for item in scored if item.candidate.category_id in allowed]


def build_series(
    name: str,
    scored: Sequence[ScoredCandidate],
    oracle: EvaluationOracle,
    exclude_identity: bool = True,
    num_points: int = CURVE_POINTS,
) -> FigureSeries:
    """Build one precision-vs-coverage series from scored candidates.

    Name-identity candidates are excluded by default, matching the paper's
    evaluation methodology (they seed the training set).
    """
    retained = [
        item
        for item in scored
        if not (exclude_identity and item.is_name_identity())
    ]
    curve = precision_coverage_curve(
        retained, oracle.correspondence_is_correct, num_points=num_points
    )
    ranked = sorted(retained, key=lambda item: -item.score)
    labels = [oracle.correspondence_is_correct(item) for item in ranked]
    return FigureSeries(
        name=name, curve=curve, num_candidates=len(retained), labels=labels
    )
