"""Figure 6 — The classifier vs single-feature baselines.

Paper claim: combining the six distributional features with a classifier
"consistently outperforms the use of individual similarity measures"; at
20K correspondences the paper reports precision 0.87 for the full approach
vs 0.76 (JS-MC alone) and 0.69 (Jaccard-MC alone).  The reproduction runs
all three configurations over the same candidate space (all categories and
merchants) and reports their precision-vs-coverage curves.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.single_feature import SingleFeatureMatcher
from repro.corpus.config import CorpusPreset
from repro.experiments.figures_common import (
    FigureResult,
    build_series,
    reference_coverage_for,
)
from repro.experiments.harness import ExperimentHarness, get_harness

__all__ = ["run", "SERIES_OUR_APPROACH", "SERIES_JS_MC", "SERIES_JACCARD_MC"]

SERIES_OUR_APPROACH = "Our approach"
SERIES_JS_MC = "JS-MC"
SERIES_JACCARD_MC = "Jaccard-MC"


def run(harness: Optional[ExperimentHarness] = None) -> FigureResult:
    """Run the Figure 6 experiment."""
    harness = harness or get_harness(CorpusPreset.SMALL)
    oracle = harness.oracle
    result = FigureResult(title="Figure 6 — classifier vs single-feature baselines")
    result.reference_coverage = reference_coverage_for(
        harness.offline_result.scored_candidates, oracle
    )

    result.add(
        build_series(SERIES_OUR_APPROACH, harness.offline_result.scored_candidates, oracle)
    )

    js_matcher = SingleFeatureMatcher(harness.corpus.catalog, feature_name="JS-MC")
    js_scored = js_matcher.match(harness.historical_offers, harness.corpus.matches)
    result.add(build_series(SERIES_JS_MC, js_scored, oracle))

    jaccard_matcher = SingleFeatureMatcher(harness.corpus.catalog, feature_name="Jaccard-MC")
    jaccard_scored = jaccard_matcher.match(harness.historical_offers, harness.corpus.matches)
    result.add(build_series(SERIES_JACCARD_MC, jaccard_scored, oracle))

    return result
