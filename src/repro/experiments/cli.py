"""Command-line entry point: run the paper's experiments and print their tables.

Installed as ``repro-synthesize``; also runnable as
``python -m repro.experiments.cli``.

Examples
--------
Run every experiment on the small preset::

    repro-synthesize --preset small

Run only Table 2 and Figure 8 on the default (larger) preset::

    repro-synthesize --preset default --experiments table2 figure8

Run the streaming-runtime throughput benchmark (see
:mod:`repro.experiments.runtime_bench`) and write ``BENCH_runtime.json``::

    repro-synthesize runtime-bench --offers 10000 --executor process \
        --json BENCH_runtime.json

Exercise the durable catalog store, then resume the same stream::

    repro-synthesize runtime-bench --store sqlite --store-path catalog.sqlite3
    repro-synthesize runtime-bench --store sqlite --store-path catalog.sqlite3 --resume

Measure multi-node ingest scaling (clusters of 1, 2 and 4 engine nodes
over one shared store, see :mod:`repro.runtime.cluster`)::

    repro-synthesize runtime-bench --nodes 4 --store sqlite \
        --store-path catalog.sqlite3 --json BENCH_runtime_cluster.json

Measure true multi-*process* scaling (one OS process per node over a
shared WAL file, see :mod:`repro.runtime.procnode`)::

    repro-synthesize runtime-bench --processes 4 \
        --store-path catalog.sqlite3 --json BENCH_runtime_cluster.json

Benchmark the serving layer (top-k search throughput and the mixed
ingest+query snapshot-isolation proof, see
:mod:`repro.experiments.serving_bench`)::

    repro-synthesize serving-bench --offers 10000 --json BENCH_serving.json

Stress the replicated serving fleet with concurrent closed-loop HTTP
clients under mixed ingest (see :func:`repro.experiments.serving_bench.run_fleet`)::

    repro-synthesize serving-bench --clients 4 --duration 5 --replicas 2 \
        --json BENCH_serving_fleet.json

Serve a catalog store over HTTP (read-only; queries run concurrently
with whatever engine or cluster is writing the file), optionally as a
replicated fleet with ``/health`` and ``/lag``::

    repro-synthesize runtime-serve --store-path catalog.sqlite3 --port 8080
    repro-synthesize runtime-serve --store-path catalog.sqlite3 --replicas 2

Pretty-print the metrics snapshot of a running server, or the
``metrics`` section embedded in a bench artifact::

    repro-synthesize runtime-obs --url http://127.0.0.1:8080
    repro-synthesize runtime-obs --artifact BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.corpus.config import CorpusPreset
from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    runtime_bench,
    serving_bench,
    table2,
    table3,
    table4,
)
from repro.experiments.harness import ExperimentHarness

__all__ = ["main", "EXPERIMENTS"]

#: Experiment name -> runner taking the shared harness.
EXPERIMENTS: Dict[str, Callable[[ExperimentHarness], object]] = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
}


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize",
        description="Reproduce the evaluation of 'Synthesizing Products for Online Catalogs'",
        epilog=(
            "additional commands: 'repro-synthesize runtime-bench --help' "
            "(streaming-engine throughput benchmark), 'serving-bench --help' "
            "(query-side benchmark), 'runtime-serve --help' (HTTP serving), "
            "'runtime-obs --help' (metrics snapshot viewer)"
        ),
    )
    parser.add_argument(
        "--preset",
        choices=[preset.value for preset in CorpusPreset],
        default=CorpusPreset.SMALL.value,
        help="corpus size preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=2011, help="corpus RNG seed")
    parser.add_argument(
        "--experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS),
        default=sorted(EXPERIMENTS),
        help="experiments to run (default: all)",
    )
    return parser.parse_args(argv)


def _validate_store_path(
    parser: argparse.ArgumentParser,
    path: str,
    must_exist: bool = False,
) -> str:
    """A clear argparse error for unusable store paths.

    SQLite reports a bad path only when the first statement runs, as an
    opaque ``OperationalError`` deep inside the store layer; checking
    up front turns a typo'd directory or a path pointing at a directory
    into a one-line CLI error instead of a traceback.
    """
    resolved = os.path.abspath(path)
    if os.path.isdir(resolved):
        parser.error(f"store path {path!r} is a directory, expected a file path")
    parent = os.path.dirname(resolved)
    if not os.path.isdir(parent):
        parser.error(f"store path {path!r} is in a directory that does not exist")
    if must_exist and not os.path.exists(resolved):
        parser.error(f"store file {path!r} does not exist")
    return path


def _parse_runtime_bench_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize runtime-bench",
        description="Throughput benchmark: streaming SynthesisEngine vs looped pipeline",
    )
    parser.add_argument(
        "--offers", type=int, default=10_000, help="stream length (default: 10000)"
    )
    parser.add_argument(
        "--batches", type=int, default=10, help="micro-batches (default: 10)"
    )
    parser.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default=None,
        help="engine shard executor (default: process; with --processes "
        "it is the executor INSIDE each node process, default serial — "
        "'process' is invalid there, daemonic nodes cannot spawn pools)",
    )
    parser.add_argument(
        "--shards", type=int, default=8, help="category shards (default: 8)"
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=1,
        metavar="N",
        help="run the multi-node scaling benchmark with clusters of "
        "1..N engine nodes over a shared store (default: 1 = the "
        "single-engine throughput benchmark)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="run the multi-PROCESS scaling benchmark with clusters of "
        "1..N node processes over a shared SQLite WAL store "
        "(forces --store sqlite; mutually exclusive with --nodes)",
    )
    parser.add_argument("--seed", type=int, default=2011, help="corpus RNG seed")
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        choices=[1, 2],
        default=1,
        metavar="D",
        help="cluster commit pipelining (with --nodes/--processes): 2 "
        "overlaps each batch's commit barrier with the next batch's "
        "routing; 1 (default) commits synchronously",
    )
    parser.add_argument(
        "--hint-routing",
        action="store_true",
        help="route cluster batches on cheap category hints and run the "
        "real classifier on the nodes in parallel (with --nodes/"
        "--processes); products stay byte-identical",
    )
    parser.add_argument(
        "--store",
        choices=["memory", "sqlite"],
        default=None,
        help="engine catalog store backend (default: memory; --processes "
        "implies sqlite and rejects an explicit --store memory)",
    )
    parser.add_argument(
        "--store-path",
        metavar="PATH",
        default=None,
        help="SQLite store file (default: BENCH_catalog.sqlite3 with --store sqlite)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reopen an existing SQLite store and continue the stream "
        "instead of starting fresh (requires --store sqlite)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result as JSON (e.g. BENCH_runtime.json)",
    )
    args = parser.parse_args(argv)
    if args.nodes < 1:
        parser.error("--nodes must be >= 1")
    if args.processes < 1:
        parser.error("--processes must be >= 1")
    if args.nodes > 1 and args.processes > 1:
        parser.error("--nodes and --processes are mutually exclusive")
    if args.resume and (args.nodes > 1 or args.processes > 1):
        parser.error("--resume is a single-engine path; drop --nodes/--processes")
    if (args.pipeline_depth != 1 or args.hint_routing) and (
        args.nodes == 1 and args.processes == 1
    ):
        parser.error(
            "--pipeline-depth/--hint-routing are cluster knobs; "
            "combine them with --nodes or --processes"
        )
    if args.processes > 1:
        if args.store == "memory":
            parser.error(
                "--processes shares state through the SQLite WAL file; "
                "--store memory cannot back a multi-process cluster"
            )
        if args.executor == "process":
            parser.error(
                "--executor process cannot run inside node processes "
                "(daemonic nodes cannot spawn worker pools); with "
                "--processes use --executor serial or thread"
            )
        # Process nodes share state through the WAL file only.
        args.store = "sqlite"
    if args.store is None:
        args.store = "memory"
    if args.resume and args.store != "sqlite":
        parser.error("--resume requires --store sqlite")
    if args.store_path is not None and args.store != "sqlite":
        parser.error("--store-path requires --store sqlite (or --processes)")
    if args.executor is None:
        args.executor = "serial" if args.processes > 1 else "process"
    if args.store == "sqlite" and args.store_path is None:
        args.store_path = "BENCH_catalog.sqlite3"
    if args.store_path is not None:
        _validate_store_path(parser, args.store_path, must_exist=args.resume)
    return args


def _multinode_counts(max_nodes: int) -> "list[int]":
    """1, then doubling up to ``max_nodes`` (e.g. 4 -> [1, 2, 4])."""
    counts = [1]
    while counts[-1] * 2 < max_nodes:
        counts.append(counts[-1] * 2)
    if counts[-1] != max_nodes:
        counts.append(max_nodes)
    return counts


def _run_runtime_bench(argv: Sequence[str]) -> int:
    """Dispatch the ``runtime-bench`` subcommand (all of its modes)."""
    args = _parse_runtime_bench_args(argv)
    if args.nodes > 1 or args.processes > 1:
        mode = "processes" if args.processes > 1 else "threads"
        max_nodes = args.processes if mode == "processes" else args.nodes
        result = runtime_bench.run_multinode(
            num_offers=args.offers,
            num_batches=args.batches,
            executor=args.executor,
            num_shards=args.shards,
            seed=args.seed,
            store=args.store,
            store_path=args.store_path,
            node_counts=_multinode_counts(max_nodes),
            mode=mode,
            pipeline_depth=args.pipeline_depth,
            hint_routing=args.hint_routing,
        )
        print(result.to_text())
        if args.json:
            result.write_json(args.json)
            print(f"[wrote {args.json}]")
        return 0 if result.products_identical else 1
    result = runtime_bench.run(
        num_offers=args.offers,
        num_batches=args.batches,
        executor=args.executor,
        num_shards=args.shards,
        seed=args.seed,
        store=args.store,
        store_path=args.store_path,
        resume=args.resume,
    )
    print(result.to_text())
    if args.json:
        result.write_json(args.json)
        print(f"[wrote {args.json}]")
    return 0 if result.products_identical else 1


def _parse_serving_bench_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize serving-bench",
        description="Serving-layer benchmark: top-k search throughput, latency "
        "percentiles, and the mixed ingest+query snapshot-isolation proof",
    )
    parser.add_argument(
        "--offers", type=int, default=10_000, help="stream length (default: 10000)"
    )
    parser.add_argument(
        "--batches", type=int, default=10, help="micro-batches (default: 10)"
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=5_000,
        help="searches in the throughput phase (default: 5000)",
    )
    parser.add_argument(
        "--top-k", type=int, default=10, help="results per search (default: 10)"
    )
    parser.add_argument("--seed", type=int, default=2011, help="corpus RNG seed")
    parser.add_argument(
        "--store",
        choices=["memory", "sqlite"],
        default="sqlite",
        help="store backend of the throughput phase (default: sqlite; the "
        "mixed phase always runs both backends)",
    )
    parser.add_argument(
        "--store-path",
        metavar="PATH",
        default=None,
        help="SQLite store file (default: BENCH_serving_catalog.sqlite3)",
    )
    parser.add_argument(
        "--index-backend",
        choices=["memory", "fts"],
        default="memory",
        help="serving index implementation: in-process inverted index or "
        "SQLite FTS5 (default: memory; rankings are identical either way)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=0,
        metavar="N",
        help="run the CLOSED-LOOP fleet benchmark instead: N concurrent "
        "HTTP client threads stress a replica fleet (and a single-replica "
        "baseline) under mixed ingest (default: 0 = the classic benchmark)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="S",
        help="seconds per closed-loop measurement window (with --clients; "
        "default: 5)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        metavar="N",
        help="fleet size of the closed-loop benchmark (with --clients; "
        "default: 2)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="HTTP worker-pool size of the closed-loop benchmark (with "
        "--clients; default: max(clients, 2*replicas))",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the result as JSON (e.g. BENCH_serving.json, "
        "or BENCH_serving_fleet.json with --clients)",
    )
    args = parser.parse_args(argv)
    if args.offers < 1:
        parser.error("--offers must be >= 1")
    if args.queries < 1:
        parser.error("--queries must be >= 1")
    if args.top_k < 1:
        parser.error("--top-k must be >= 1")
    if args.clients < 0:
        parser.error("--clients must be >= 0")
    if args.clients:
        if args.duration <= 0:
            parser.error("--duration must be > 0")
        if args.replicas < 1:
            parser.error("--replicas must be >= 1")
        if args.threads is not None and args.threads < 1:
            parser.error("--threads must be >= 1")
        if args.store == "memory":
            parser.error(
                "the closed-loop fleet benchmark shares the store file "
                "between writer and replicas; --store memory cannot back it"
            )
    if args.store_path is not None and args.store != "sqlite":
        parser.error("--store-path requires --store sqlite")
    if args.store == "sqlite" and args.store_path is None:
        args.store_path = "BENCH_serving_catalog.sqlite3"
    if args.store_path is not None:
        _validate_store_path(parser, args.store_path)
    return args


def _fts5_available() -> bool:
    """Whether this interpreter's SQLite can back ``--index-backend fts``."""
    # Imported here: the tables/figures paths must not drag serving in.
    from repro.serving.fts import fts5_available

    return fts5_available()


def _run_serving_bench(argv: Sequence[str]) -> int:
    """Dispatch the ``serving-bench`` subcommand (classic or closed-loop)."""
    args = _parse_serving_bench_args(argv)
    if args.index_backend == "fts" and not _fts5_available():
        print("serving-bench: this SQLite build lacks FTS5; --index-backend fts "
              "is unavailable")
        return 2
    if args.clients:
        fleet_result = serving_bench.run_fleet(
            num_offers=args.offers,
            num_batches=args.batches,
            top_k=args.top_k,
            seed=args.seed,
            store_path=args.store_path,
            clients=args.clients,
            duration=args.duration,
            replicas=args.replicas,
            threads=args.threads,
            index_backend=args.index_backend,
        )
        print(fleet_result.to_text())
        if args.json:
            fleet_result.write_json(args.json)
            print(f"[wrote {args.json}]")
        errors = fleet_result.single.errors + fleet_result.fleet.errors
        return 0 if errors == 0 else 1
    result = serving_bench.run(
        num_offers=args.offers,
        num_batches=args.batches,
        num_queries=args.queries,
        top_k=args.top_k,
        seed=args.seed,
        store=args.store,
        store_path=args.store_path,
        index_backend=args.index_backend,
    )
    print(result.to_text())
    if args.json:
        result.write_json(args.json)
        print(f"[wrote {args.json}]")
    return 0 if result.snapshot_isolation_proven else 1


def _parse_runtime_serve_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize runtime-serve",
        description="Serve a catalog store file over HTTP (read-only JSON "
        "endpoints: /search, /product/<id>, /stats); safe to run against "
        "a file a live engine or cluster is still writing",
    )
    parser.add_argument(
        "--store-path",
        metavar="PATH",
        required=True,
        help="SQLite catalog store file to serve (must exist)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--page-size",
        type=int,
        default=256,
        help="products per disk page of the reader (default: 256)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="serve a replicated fleet of N snapshot-pinned readers with "
        "load balancing, /health and /lag (default: 1 = single service)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="bounded HTTP worker pool size (default: one thread per "
        "connection; with --replicas > 1 defaults to 2*replicas)",
    )
    parser.add_argument(
        "--max-lag-commits",
        type=int,
        default=2,
        metavar="N",
        help="fleet divergence bound: replicas may trail the store head "
        "by up to N commits between refreshes (default: 2)",
    )
    parser.add_argument(
        "--index-backend",
        choices=["memory", "fts"],
        default="memory",
        help="serving index implementation: in-process inverted index or "
        "SQLite FTS5 (default: memory; rankings are identical either way)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.port <= 65_535:
        parser.error(f"--port must be in [0, 65535], got {args.port}")
    if args.page_size < 1:
        parser.error("--page-size must be >= 1")
    if args.replicas < 1:
        parser.error("--replicas must be >= 1")
    if args.threads is not None and args.threads < 1:
        parser.error("--threads must be >= 1")
    if args.max_lag_commits < 0:
        parser.error("--max-lag-commits must be >= 0")
    if args.threads is None and args.replicas > 1:
        args.threads = 2 * args.replicas
    _validate_store_path(parser, args.store_path, must_exist=True)
    return args


def _run_runtime_serve(argv: Sequence[str]) -> int:
    """Dispatch the ``runtime-serve`` subcommand (blocks until ^C)."""
    # Imported here: the experiments CLI must not drag the HTTP serving
    # stack in for the tables/figures paths.
    from repro.serving.fleet import ServingFleet
    from repro.serving.http import serve
    from repro.serving.service import CatalogSearchService

    args = _parse_runtime_serve_args(argv)
    if args.index_backend == "fts" and not _fts5_available():
        print("runtime-serve: this SQLite build lacks FTS5; --index-backend fts "
              "is unavailable")
        return 2
    if args.replicas > 1:
        fleet = ServingFleet.from_store_path(
            args.store_path,
            num_replicas=args.replicas,
            page_size=args.page_size,
            max_lag_commits=args.max_lag_commits,
            refresh_interval=0.1,
            index_backend=args.index_backend,
        )
        lag = fleet.lag()
        print(
            f"runtime-serve: fleet of {args.replicas} replicas over "
            f"{args.store_path} (snapshot {lag['head_commit_count']}, "
            f"lag bound {args.max_lag_commits}, {args.index_backend} index)"
        )
        serve(fleet, host=args.host, port=args.port, max_workers=args.threads)
        return 0
    service = CatalogSearchService.from_store_path(
        args.store_path, page_size=args.page_size, index_backend=args.index_backend
    )
    print(
        f"runtime-serve: {service.num_products:,} products from "
        f"{args.store_path} (snapshot {service.snapshot_commit_count}, "
        f"{args.index_backend} index)"
    )
    serve(service, host=args.host, port=args.port, max_workers=args.threads)
    return 0


def _parse_runtime_obs_args(argv: Sequence[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro-synthesize runtime-obs",
        description="Pretty-print a metrics snapshot: counters, gauges, and "
        "histogram latency percentiles from a running runtime-serve "
        "(its /metrics.json endpoint) or from the 'metrics' section "
        "embedded in a bench JSON artifact",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--url",
        metavar="URL",
        help="base URL of a running runtime-serve (e.g. http://127.0.0.1:8080)",
    )
    source.add_argument(
        "--artifact",
        metavar="PATH",
        help="bench JSON artifact with an embedded metrics section "
        "(e.g. BENCH_runtime.json)",
    )
    args = parser.parse_args(argv)
    if args.url is not None and not args.url.startswith(("http://", "https://")):
        parser.error(f"--url must start with http:// or https://, got {args.url!r}")
    return args


def _run_runtime_obs(argv: Sequence[str]) -> int:
    """Dispatch the ``runtime-obs`` subcommand (snapshot pretty-printer)."""
    # Imported here: the tables/figures paths must not drag the obs
    # rendering helpers in.
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    from repro.obs import format_snapshot

    args = _parse_runtime_obs_args(argv)
    if args.url is not None:
        url = args.url.rstrip("/") + "/metrics.json"
        try:
            with urlopen(url, timeout=10) as response:
                snapshot = json.load(response)
        except (URLError, OSError, ValueError) as exc:
            print(f"runtime-obs: cannot fetch {url}: {exc}")
            return 2
        print(f"metrics snapshot from {url}")
    else:
        try:
            with open(args.artifact, "r", encoding="utf-8") as handle:
                artifact = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"runtime-obs: cannot read {args.artifact!r}: {exc}")
            return 2
        snapshot = artifact.get("metrics") if isinstance(artifact, dict) else None
        if not isinstance(snapshot, dict):
            print(
                f"runtime-obs: {args.artifact!r} has no 'metrics' section "
                "(regenerate it with a current runtime-bench/serving-bench)"
            )
            return 2
        print(f"metrics snapshot from {args.artifact}")
    print(format_snapshot(snapshot), end="")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the selected experiments (or one of the runtime subcommands)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "runtime-bench":
        return _run_runtime_bench(list(argv[1:]))
    if argv and argv[0] == "serving-bench":
        return _run_serving_bench(list(argv[1:]))
    if argv and argv[0] == "runtime-serve":
        return _run_runtime_serve(list(argv[1:]))
    if argv and argv[0] == "runtime-obs":
        return _run_runtime_obs(list(argv[1:]))
    args = _parse_args(argv)
    preset = CorpusPreset(args.preset)
    harness = ExperimentHarness(preset.config(seed=args.seed))

    print(f"corpus preset: {preset.value} (seed {args.seed})")
    start = time.time()
    summary = harness.corpus.summary()
    print(
        "corpus: "
        + ", ".join(f"{key}={value:,}" for key, value in summary.items())
        + f"  [generated in {time.time() - start:.1f}s]"
    )
    print()

    for name in args.experiments:
        runner = EXPERIMENTS[name]
        start = time.time()
        result = runner(harness)
        elapsed = time.time() - start
        print(result.to_text())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
