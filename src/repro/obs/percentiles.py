"""Nearest-rank percentile selection, shared by benches and histograms.

One implementation for every latency summary in the repo: the serving
benches summarise raw latency samples with :func:`percentile`, and
:meth:`repro.obs.metrics.Histogram.percentile` maps the same rank rule
onto its bucket counts — so a ``p95`` printed by a bench and a ``p95``
scraped from ``/metrics`` mean the same thing.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["nearest_rank", "percentile"]


def nearest_rank(num_samples: int, fraction: float) -> int:
    """Index of the nearest-rank percentile in a sorted sample.

    ``fraction`` is in ``[0, 1]``; the result is clamped into
    ``[0, num_samples - 1]`` so edge fractions (0.0, 1.0) stay valid.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    return min(num_samples - 1, max(0, int(fraction * num_samples)))


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted sample (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    return sorted_values[nearest_rank(len(sorted_values), fraction)]
