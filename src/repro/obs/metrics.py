"""Dependency-free, thread-safe metrics core for the whole runtime.

One :class:`MetricsRegistry` per process (the module-global default, or
an injected instance) holds every counter, gauge and histogram the
engine, cluster, store and serving layers publish.  Three design rules
keep the hot path honest:

* **Metric handles are cheap.**  ``registry.counter(...)`` get-or-creates
  once; callers cache the returned handle and pay one lock + one float
  add per increment.  Nothing on the per-offer path touches the
  registry — instrumentation is per batch, per request, per commit.
* **The registry is the read path, not only the write path.**  Ad-hoc
  stat objects that predate this module (``TransportStats``,
  ``pipe_stats``, serving resync counters) are exposed through
  *providers*: callables that contribute snapshot fragments at
  collection time, so ``/metrics`` and ``registry.snapshot()`` see one
  merged truth without double-counting.
* **Snapshots are plain dicts.**  ``snapshot()`` output is
  JSON-serialisable (bench artifacts embed it verbatim), mergeable
  (:func:`merge_snapshot` folds node-process fragments in), and
  renderable to Prometheus text exposition format
  (:func:`render_snapshot`).

Histograms use fixed log-scale latency buckets (1-2.5-5 per decade from
10µs to 60s) so every latency metric in the system shares one bucket
vocabulary; percentiles come from the same nearest-rank rule the
benches use (:mod:`repro.obs.percentiles`).
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.percentiles import nearest_rank

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "merge_snapshot",
    "render_snapshot",
    "series_key",
    "set_registry",
]

#: Fixed log-scale latency buckets (seconds): 1-2.5-5 per decade, 10µs
#: to 60s.  Shared by every latency histogram so cross-layer comparisons
#: (span vs HTTP endpoint vs barrier) line up bucket-for-bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def series_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """The canonical series identity: ``name`` or ``name{a="v",b="w"}``.

    Labels are sorted by name and values escaped, so the key doubles as
    the exposition-line prefix and as a deterministic dict key in
    snapshots.
    """
    if not labels:
        return name
    body = ",".join(
        f'{label}="{_escape_label_value(str(value))}"'
        for label, value in sorted(labels.items())
    )
    return f"{name}{{{body}}}"


def split_series_key(key: str) -> Tuple[str, str]:
    """Split a series key into ``(family name, label body)`` (body may be '')."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace + 1 : -1]


def _format_le(bound: float) -> str:
    """Bucket upper bound as an exposition-format ``le`` value."""
    if math.isinf(bound):
        return "+Inf"
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def _format_value(value: float) -> str:
    """A sample value in exposition format (integers without the '.0')."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing value (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A value that can go up and down, or track a callback (thread-safe).

    A callback gauge reads its value at collection time — the natural
    shape for derived quantities like journal floors or replica lag,
    which already live somewhere authoritative.
    """

    __slots__ = ("_lock", "_value", "_callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value (drops any callback)."""
        with self._lock:
            self._callback = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._callback = None
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def set_callback(self, callback: Optional[Callable[[], float]]) -> None:
        """Replace the collection-time callback (last registration wins)."""
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        """The current value (evaluates the callback, 0.0 if it fails)."""
        callback = self._callback
        if callback is None:
            return self._value
        try:
            return float(callback())
        except Exception:  # noqa: BLE001 - a scrape must never take the server down
            return 0.0


class Histogram:
    """Cumulative-bucket histogram over fixed upper bounds (thread-safe).

    Defaults to :data:`DEFAULT_LATENCY_BUCKETS`; an implicit ``+Inf``
    bucket always exists.  ``observe`` is one lock, one linear bucket
    scan (21 comparisons) and two float adds — cheap enough for every
    request/batch/commit in the system.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one finite bucket bound")
        if any(math.isinf(bound) for bound in bounds):
            raise ValueError("the +Inf bucket is implicit; pass finite bounds only")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing slot = +Inf
        self._sum = 0.0
        self._count = 0

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The finite bucket upper bounds, ascending."""
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one sample."""
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self._bounds):
                if value <= bound:
                    self._counts[index] += 1
                    return
            self._counts[-1] += 1

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile, resolved to a bucket upper bound.

        Uses the same rank rule as the benches
        (:func:`repro.obs.percentiles.nearest_rank`); the answer is the
        upper bound of the bucket holding that rank (the highest finite
        bound when the rank falls into ``+Inf``), i.e. an upper estimate
        with bucket resolution.  Returns 0.0 for an empty histogram.
        """
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = nearest_rank(total, fraction)
            cumulative = 0
            for index, bound in enumerate(self._bounds):
                cumulative += self._counts[index]
                if rank < cumulative:
                    return bound
            return self._bounds[-1]

    def snapshot(self) -> Dict[str, object]:
        """A JSON-friendly summary with *cumulative* bucket counts."""
        with self._lock:
            cumulative = 0
            buckets: Dict[str, int] = {}
            for index, bound in enumerate(self._bounds):
                cumulative += self._counts[index]
                buckets[_format_le(bound)] = cumulative
            buckets["+Inf"] = cumulative + self._counts[-1]
            summary: Dict[str, object] = {
                "count": self._count,
                "sum": self._sum,
                "buckets": buckets,
            }
        for quantile in (0.5, 0.95, 0.99):
            summary[f"p{int(quantile * 100)}"] = self.percentile(quantile)
        return summary


class _SpanTimer:
    """Context manager that times a block into a span histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class _Family:
    """One metric family: a type, a help string, and labelled children."""

    __slots__ = ("name", "type", "help", "children")

    def __init__(self, name: str, metric_type: str, help_text: str) -> None:
        self.name = name
        self.type = metric_type
        self.help = help_text
        self.children: Dict[str, object] = {}


#: Providers contribute snapshot fragments (the ad-hoc stats bridges).
SnapshotProvider = Callable[[], Dict[str, object]]


class MetricsRegistry:
    """Process-wide (but injectable) home of every metric family.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create and return the
    handle for one ``(name, labels)`` series; re-registration with a
    conflicting type raises.  ``span(name)`` times a ``with`` block into
    the shared ``span_seconds`` histogram family, labelled by span name.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._providers: List[SnapshotProvider] = []

    # -- registration ----------------------------------------------------------

    def _family(self, name: str, metric_type: str, help_text: str) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, metric_type, help_text)
                self._families[name] = family
            elif family.type != metric_type:
                raise ValueError(
                    f"metric {name!r} is already registered as a {family.type}, "
                    f"cannot re-register as a {metric_type}"
                )
            if help_text and not family.help:
                family.help = help_text
            return family

    def _child(
        self,
        name: str,
        metric_type: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
        factory: Callable[[], object],
    ) -> object:
        if labels:
            for label in labels:
                if not _LABEL_NAME_RE.match(label):
                    raise ValueError(f"invalid label name {label!r}")
        family = self._family(name, metric_type, help_text)
        key = series_key(name, labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                child = factory()
                family.children[key] = child
            return child

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get-or-create a counter series."""
        return self._child(name, "counter", help, labels, Counter)  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get-or-create a gauge series (optionally callback-backed).

        Passing ``callback`` (re)binds the collection-time callback —
        last registration wins, so a recreated component (test engines,
        restarted replicas) simply takes the series over.
        """
        gauge = self._child(name, "gauge", help, labels, Gauge)
        if callback is not None:
            gauge.set_callback(callback)  # type: ignore[union-attr]
        return gauge  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get-or-create a histogram series (default latency buckets)."""
        return self._child(  # type: ignore[return-value]
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    def span(self, name: str) -> _SpanTimer:
        """Time a ``with`` block into ``span_seconds{span=name}``.

        Span names are dotted stage paths (``"ingest.commit_barrier"``);
        see docs/observability.md for the span map.
        """
        histogram = self.histogram(
            "span_seconds",
            help="Duration of instrumented pipeline stages, by span name.",
            labels={"span": name},
        )
        return _SpanTimer(histogram)

    # -- providers (bridges from pre-existing stat objects) --------------------

    def add_provider(self, provider: SnapshotProvider) -> SnapshotProvider:
        """Register a snapshot-fragment provider; returns it for removal."""
        with self._lock:
            if provider not in self._providers:
                self._providers.append(provider)
        return provider

    def remove_provider(self, provider: SnapshotProvider) -> None:
        """Unregister a provider (no-op when unknown)."""
        with self._lock:
            try:
                self._providers.remove(provider)
            except ValueError:
                pass

    # -- collection ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything, as one JSON-serialisable dict.

        Shape::

            {"counters":   {series_key: value},
             "gauges":     {series_key: value},
             "histograms": {series_key: {count, sum, p50, p95, p99,
                                         buckets: {le: cumulative}}},
             "families":   {name: {"type": ..., "help": ...}}}

        Provider fragments are merged in (counters and histogram buckets
        sum, gauges overwrite), so the registry's own series and the
        bridged ad-hoc stats come out as one coherent view.
        """
        with self._lock:
            families = list(self._families.values())
            providers = list(self._providers)
        result: Dict[str, object] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "families": {},
        }
        for family in families:
            result["families"][family.name] = {
                "type": family.type,
                "help": family.help,
            }
            section = result[
                {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}[
                    family.type
                ]
            ]
            for key, child in list(family.children.items()):
                if isinstance(child, Histogram):
                    section[key] = child.snapshot()
                else:
                    section[key] = child.value  # type: ignore[union-attr]
        for provider in providers:
            try:
                fragment = provider()
            except Exception:  # noqa: BLE001 - a scrape must never fail
                continue
            merge_snapshot(result, fragment)
        return result

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        return render_snapshot(self.snapshot())

    def clear(self) -> None:
        """Drop every family and provider (tests and bench isolation)."""
        with self._lock:
            self._families = {}
            self._providers = []


def snapshot_fragment(
    counters: Optional[Mapping[str, float]] = None,
    gauges: Optional[Mapping[str, float]] = None,
    families: Optional[Mapping[str, Dict[str, str]]] = None,
) -> Dict[str, object]:
    """Build a provider return value from plain ``{series_key: value}`` maps."""
    return {
        "counters": dict(counters or {}),
        "gauges": dict(gauges or {}),
        "histograms": {},
        "families": dict(families or {}),
    }


def merge_snapshot(base: Dict[str, object], extra: Mapping[str, object]) -> Dict[str, object]:
    """Fold ``extra`` into ``base`` (in place; returns ``base``).

    Counters sum, gauges overwrite (last writer wins), histograms sum
    count/sum/cumulative-buckets and recompute their percentiles from
    the merged buckets.  Family metadata fills gaps only.  This is how
    node-process fragments (the ``stats`` pipe round) and provider
    bridges land in one view.
    """
    for key, value in (extra.get("counters") or {}).items():
        counters = base.setdefault("counters", {})
        counters[key] = counters.get(key, 0) + value
    gauges = base.setdefault("gauges", {})
    gauges.update(extra.get("gauges") or {})
    histograms = base.setdefault("histograms", {})
    for key, summary in (extra.get("histograms") or {}).items():
        merged = histograms.get(key)
        if merged is None:
            histograms[key] = {
                "count": summary.get("count", 0),
                "sum": summary.get("sum", 0.0),
                "buckets": dict(summary.get("buckets", {})),
                **{
                    quantile: summary.get(quantile, 0.0)
                    for quantile in ("p50", "p95", "p99")
                },
            }
            continue
        merged["count"] = merged.get("count", 0) + summary.get("count", 0)
        merged["sum"] = merged.get("sum", 0.0) + summary.get("sum", 0.0)
        buckets = merged.setdefault("buckets", {})
        for bound, cumulative in (summary.get("buckets") or {}).items():
            buckets[bound] = buckets.get(bound, 0) + cumulative
        for quantile, fraction in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            merged[quantile] = _bucket_percentile(
                buckets, merged.get("count", 0), fraction
            )
    meta = base.setdefault("families", {})
    for name, info in (extra.get("families") or {}).items():
        meta.setdefault(name, info)
    return base


def _sorted_buckets(buckets: Mapping[str, int]) -> List[Tuple[float, int]]:
    """Bucket (bound, cumulative) pairs, ascending, +Inf last."""
    return sorted(
        ((math.inf if le == "+Inf" else float(le), count) for le, count in buckets.items()),
        key=lambda item: item[0],
    )


def _bucket_percentile(buckets: Mapping[str, int], count: int, fraction: float) -> float:
    """Nearest-rank percentile from cumulative bucket counts."""
    if count <= 0 or not buckets:
        return 0.0
    rank = nearest_rank(count, fraction)
    ordered = _sorted_buckets(buckets)
    highest_finite = 0.0
    for bound, cumulative in ordered:
        if not math.isinf(bound):
            highest_finite = bound
        if rank < cumulative:
            return highest_finite if math.isinf(bound) else bound
    return highest_finite


def render_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a snapshot dict to Prometheus text exposition format."""
    families_meta: Mapping[str, Mapping[str, str]] = snapshot.get("families") or {}
    by_family: Dict[str, Tuple[str, List[Tuple[str, object]]]] = {}
    for section, default_type in (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("histograms", "histogram"),
    ):
        for key, value in (snapshot.get(section) or {}).items():
            name, _ = split_series_key(key)
            meta_type = families_meta.get(name, {}).get("type", default_type)
            family = by_family.setdefault(name, (meta_type, []))
            family[1].append((key, value))
    lines: List[str] = []
    for name in sorted(by_family):
        metric_type, series = by_family[name]
        help_text = families_meta.get(name, {}).get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {metric_type}")
        for key, value in sorted(series):
            if metric_type == "histogram":
                lines.extend(_render_histogram_series(name, key, value))
            else:
                lines.append(f"{key} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram_series(name: str, key: str, summary: Mapping[str, object]) -> List[str]:
    """The ``_bucket`` / ``_sum`` / ``_count`` lines of one histogram series."""
    _, label_body = split_series_key(key)
    prefix = f"{label_body}," if label_body else ""
    lines: List[str] = []
    buckets: Mapping[str, int] = summary.get("buckets") or {}
    cumulative = 0
    for bound, count in _sorted_buckets(buckets):
        cumulative = count
        lines.append(
            f'{name}_bucket{{{prefix}le="{_format_le(bound)}"}} {_format_value(count)}'
        )
    total = summary.get("count", cumulative)
    suffix = f"{{{label_body}}}" if label_body else ""
    lines.append(f"{name}_sum{suffix} {_format_value(summary.get('sum', 0.0))}")
    lines.append(f"{name}_count{suffix} {_format_value(total)}")
    return lines


def format_snapshot(snapshot: Mapping[str, object]) -> str:
    """Human-readable rendering of a snapshot (the ``runtime-obs`` CLI).

    Counters and gauges print one aligned ``series value`` line each;
    histograms print count/sum and the nearest-rank p50/p95/p99.
    """
    lines: List[str] = []
    for section, title in (("counters", "counters"), ("gauges", "gauges")):
        values: Mapping[str, float] = snapshot.get(section) or {}
        if not values:
            continue
        lines.append(f"{title}:")
        width = max(len(key) for key in values)
        for key in sorted(values):
            lines.append(f"  {key:<{width}}  {_format_value(values[key])}")
    histograms: Mapping[str, Mapping[str, object]] = snapshot.get("histograms") or {}
    if histograms:
        lines.append("histograms:")
        for key in sorted(histograms):
            summary = histograms[key]
            lines.append(f"  {key}")
            lines.append(
                "    count={count}  sum={total:.6g}s  "
                "p50={p50:.6g}s  p95={p95:.6g}s  p99={p99:.6g}s".format(
                    count=summary.get("count", 0),
                    total=float(summary.get("sum", 0.0)),
                    p50=float(summary.get("p50", 0.0)),
                    p95=float(summary.get("p95", 0.0)),
                    p99=float(summary.get("p99", 0.0)),
                )
            )
    if not lines:
        return "(empty metrics snapshot)\n"
    return "\n".join(lines) + "\n"


class _NullCounter(Counter):
    """A counter that forgets everything (instrumentation-off baseline)."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """A gauge that forgets everything."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the change."""

    def set_callback(self, callback: Optional[Callable[[], float]]) -> None:
        """Discard the callback."""


class _NullHistogram(Histogram):
    """A histogram that forgets everything."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the sample."""


class _NullSpan:
    """A span timer that measures nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, traceback: object) -> None:
        pass


class _NullRegistry(MetricsRegistry):
    """A registry whose metrics are all no-ops.

    Inject via :func:`set_registry` to measure the cost of
    instrumentation itself (the bench overhead guard) or to silence
    metrics entirely; handles stay valid, nothing is recorded.
    """

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._histogram = _NullHistogram()
        self._span = _NullSpan()

    def counter(self, name, help="", labels=None):  # noqa: ANN001, A002
        """The shared no-op counter."""
        return self._counter

    def gauge(self, name, help="", labels=None, callback=None):  # noqa: ANN001, A002
        """The shared no-op gauge."""
        return self._gauge

    def histogram(self, name, help="", labels=None, buckets=None):  # noqa: ANN001, A002
        """The shared no-op histogram."""
        return self._histogram

    def span(self, name):  # noqa: ANN001
        """The shared no-op span timer."""
        return self._span

    def add_provider(self, provider):  # noqa: ANN001
        """Discard the provider."""
        return provider


#: Shared no-op registry (see :class:`_NullRegistry`).
NULL_REGISTRY = _NullRegistry()

_global_registry = MetricsRegistry()
_global_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-global registry (unless a component was injected one)."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _global_registry
    with _global_lock:
        previous = _global_registry
        _global_registry = registry
    return previous
