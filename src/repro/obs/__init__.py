"""Unified observability layer: metrics registry, spans, exposition.

See :mod:`repro.obs.metrics` for the core and docs/observability.md for
the metric catalog and span map.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_snapshot,
    get_registry,
    merge_snapshot,
    render_snapshot,
    series_key,
    set_registry,
    snapshot_fragment,
)
from repro.obs.percentiles import nearest_rank, percentile

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "format_snapshot",
    "get_registry",
    "merge_snapshot",
    "nearest_rank",
    "percentile",
    "render_snapshot",
    "series_key",
    "set_registry",
    "snapshot_fragment",
]
