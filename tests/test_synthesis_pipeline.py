"""Integration tests for the end-to-end run-time synthesis pipeline."""

import pytest

from repro.synthesis.pipeline import ProductSynthesisPipeline


class TestPipelineOnTinyCorpus:
    def test_produces_products_with_schema_attributes(self, tiny_harness):
        result = tiny_harness.synthesis_result
        assert result.num_products() > 10
        assert result.num_attributes() > result.num_products()
        catalog = tiny_harness.corpus.catalog
        for product in result.products[:50]:
            schema = catalog.schema_for(product.category_id)
            for name in product.attribute_names():
                assert schema.has_attribute(name), (product.category_id, name)

    def test_products_record_source_offers(self, tiny_harness):
        for product in tiny_harness.synthesis_result.products:
            assert product.num_source_offers() >= 1
            assert product.product_id.startswith("synth-")

    def test_junk_attributes_filtered_out(self, tiny_harness):
        """Merchant junk attributes (Warranty, Shipping, SKU...) never survive."""
        junk_names = {"warranty", "shipping", "condition", "availability", "sku", "rebate"}
        for product in tiny_harness.synthesis_result.products:
            for name in product.attribute_names():
                assert name.lower() not in junk_names

    def test_pricing_noise_filtered_out(self, tiny_harness):
        """Pairs wrongly extracted from the pricing table are dropped by reconciliation."""
        noise_names = {"our price", "list price", "you save"}
        for product in tiny_harness.synthesis_result.products:
            for name in product.attribute_names():
                assert name.lower() not in noise_names

    def test_one_cluster_per_true_product_mostly(self, tiny_harness, tiny_corpus):
        """Clusters map 1:1 to true products for the overwhelming majority."""
        truth = tiny_corpus.ground_truth
        pure_clusters = 0
        clusters = tiny_harness.synthesis_result.clusters
        for cluster in clusters:
            true_products = {
                truth.offer_to_product.get(offer_id) for offer_id in cluster.offer_ids()
            }
            if len(true_products) == 1:
                pure_clusters += 1
        assert pure_clusters / len(clusters) > 0.95

    def test_reconciliation_stats_recorded(self, tiny_harness):
        stats = tiny_harness.synthesis_result.reconciliation_stats
        assert stats.offers_processed == len(tiny_harness.unmatched_offers)
        assert stats.pairs_seen > 0
        assert 0.0 < stats.mapping_rate() < 1.0

    def test_average_attributes_reasonable(self, tiny_harness):
        average = tiny_harness.synthesis_result.average_attributes_per_product()
        assert 2.0 < average < 15.0

    def test_products_by_category_partition(self, tiny_harness):
        result = tiny_harness.synthesis_result
        grouped = result.products_by_category()
        assert sum(len(products) for products in grouped.values()) == result.num_products()

    def test_oracle_quality(self, tiny_harness):
        evaluation = tiny_harness.evaluate_synthesis()
        assert evaluation.attribute_precision > 0.8
        assert evaluation.product_precision > 0.5
        assert evaluation.attribute_recall > 0.5


class TestPipelineConfiguration:
    def test_missing_category_classifier_raises(self, tiny_harness):
        pipeline = ProductSynthesisPipeline(
            catalog=tiny_harness.corpus.catalog,
            correspondences=tiny_harness.offline_result.correspondences,
            extractor=tiny_harness.extractor,
            category_classifier=None,
        )
        with pytest.raises(ValueError):
            pipeline.synthesize(tiny_harness.corpus.unmatched_offers()[:5])

    def test_pre_categorised_offers_bypass_classifier(self, tiny_harness, tiny_corpus):
        truth = tiny_corpus.ground_truth
        offers = [
            offer.with_category(truth.offer_true_category[offer.offer_id])
            for offer in tiny_harness.unmatched_offers[:100]
        ]
        pipeline = ProductSynthesisPipeline(
            catalog=tiny_corpus.catalog,
            correspondences=tiny_harness.offline_result.correspondences,
            extractor=tiny_harness.extractor,
            category_classifier=None,
        )
        result = pipeline.synthesize(offers)
        assert result.num_products() > 0

    def test_min_cluster_size_reduces_products(self, tiny_harness):
        base = tiny_harness.synthesis_result
        pipeline = ProductSynthesisPipeline(
            catalog=tiny_harness.corpus.catalog,
            correspondences=tiny_harness.offline_result.correspondences,
            extractor=tiny_harness.extractor,
            category_classifier=tiny_harness.category_classifier,
            min_cluster_size=2,
        )
        strict = pipeline.synthesize(tiny_harness.unmatched_offers)
        assert strict.num_products() < base.num_products()

    def test_empty_offer_list(self, tiny_harness):
        pipeline = ProductSynthesisPipeline(
            catalog=tiny_harness.corpus.catalog,
            correspondences=tiny_harness.offline_result.correspondences,
            extractor=tiny_harness.extractor,
            category_classifier=tiny_harness.category_classifier,
        )
        result = pipeline.synthesize([])
        assert result.num_products() == 0
        assert result.num_attributes() == 0
        assert result.average_attributes_per_product() == 0.0
